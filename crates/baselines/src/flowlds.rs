//! Flow-only locally densest subgraph baselines.
//!
//! [`FlowLds`] reproduces the *shape* of the algorithms the paper
//! compares against: **LDSflow** (Qin et al., KDD 2015 — the `h = 2`
//! comparator of Figure 12) and **LTDS** (Samusevich et al., ASONAM
//! 2016 — the `h = 3` comparator of Table 3). Both are exact max-flow
//! algorithms whose documented bottlenecks IPPV removes:
//!
//! * they rely only on loose `(k, ψh)`-core bounds (no convex-program
//!   tightening), so candidate regions stay large, and
//! * they verify with full-graph flow networks (no reduced network),
//!   so every verification pays for the whole graph.
//!
//! Implementation-wise this is the IPPV driver with the CP proposal,
//! pruning, and fast verification all disabled — the remaining skeleton
//! (exact local densest decomposition + basic full-graph verification)
//! is precisely the flow-based approach of those papers, generalized to
//! any `h`. Results are identical to IPPV (both are exact); only cost
//! differs, which is what the benchmarks measure.

use lhcds_core::pipeline::{top_k_lhcds, IppvConfig, IppvResult};
use lhcds_graph::CsrGraph;

/// A flow-only exact top-k locally h-clique densest subgraph algorithm.
#[derive(Debug, Clone, Copy)]
pub struct FlowLds {
    /// Clique size (2 for the LDSflow comparator, 3 for LTDS).
    pub h: usize,
}

impl FlowLds {
    /// The LDSflow stand-in (`h = 2`).
    pub fn ldsflow() -> Self {
        FlowLds { h: 2 }
    }

    /// The LTDS stand-in (`h = 3`).
    pub fn ltds() -> Self {
        FlowLds { h: 3 }
    }

    /// Configuration used by the baseline.
    pub fn config() -> IppvConfig {
        IppvConfig {
            use_cp: false,
            use_prune: false,
            fast_verify: false,
            ..IppvConfig::default()
        }
    }

    /// Runs the baseline.
    pub fn top_k(&self, g: &CsrGraph, k: usize) -> IppvResult {
        top_k_lhcds(g, self.h, k, &Self::config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_core::pipeline::top_k_lhcds;
    use lhcds_graph::GraphBuilder;

    fn two_regions() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 6] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(4, 5).add_edge(5, 6); // path connector, no triangles
        b.build()
    }

    #[test]
    fn matches_ippv_results_h3() {
        let g = two_regions();
        let baseline = FlowLds::ltds().top_k(&g, 5);
        let ippv = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
        assert_eq!(baseline.subgraphs, ippv.subgraphs);
        assert_eq!(baseline.subgraphs.len(), 2);
    }

    #[test]
    fn matches_ippv_results_h2() {
        let g = two_regions();
        let baseline = FlowLds::ldsflow().top_k(&g, 5);
        let ippv = top_k_lhcds(&g, 2, 5, &IppvConfig::default());
        assert_eq!(baseline.subgraphs, ippv.subgraphs);
    }

    #[test]
    fn baseline_skips_cp_and_prune() {
        let g = two_regions();
        let res = FlowLds::ltds().top_k(&g, 2);
        assert_eq!(res.stats.cp_ms, 0.0);
        // rule-based pruning is off; only the universal zero-clique-
        // degree clearing may fire (vertex 5 of the path connector)
        assert!(res.stats.pruned_vertices <= 1);
        assert_eq!(res.stats.initial_candidates, 1);
        // every verification went through the full flow network
        assert_eq!(res.stats.shortcut_accepts, 0);
    }
}
