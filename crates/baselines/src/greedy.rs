//! The paper's **Greedy** comparator (Figure 14): top-k h-clique
//! densest subgraphs via kClist++ without the locally-densest guarantee.
//!
//! Each round runs SEQ-kClist++ on the remaining graph, orders vertices
//! by weight, and extracts the densest prefix (the kClist++ rounding
//! step). The rounding is only a lower bound after finitely many CP
//! iterations, so the prefix is then checked against the exact max-flow
//! densest decomposition; when the flow certifies the prefix optimal it
//! is kept, otherwise the flow's maximal densest set replaces it. The
//! round reports the largest connected component of the chosen set,
//! removes it, and repeats. Nothing enforces `ρ`-compactness or
//! maximality, so — as the paper's Figure 14 shows — consecutive
//! extractions can be adjacent shavings of one dense region instead of
//! genuinely distinct communities.

use lhcds_clique::CliqueSet;
use lhcds_core::compact::{local_instance, InstanceSolver};
use lhcds_core::cp::seq_kclist_pp;
use lhcds_core::Ratio;
use lhcds_graph::traversal::components_within;
use lhcds_graph::{CsrGraph, InducedSubgraph, VertexId};

/// One extracted dense subgraph.
#[derive(Debug, Clone)]
pub struct GreedyDense {
    /// Member vertices (original graph ids), ascending.
    pub vertices: Vec<VertexId>,
    /// Exact h-clique density of the extracted subgraph.
    pub density: Ratio,
}

/// Extracts up to `k` dense subgraphs greedily. `iterations` is the
/// SEQ-kClist++ round count per extraction (the paper uses `T = 20`).
pub fn greedy_top_k_cds(g: &CsrGraph, h: usize, k: usize, iterations: usize) -> Vec<GreedyDense> {
    let mut results = Vec::new();
    let mut remaining: Vec<VertexId> = g.vertices().collect();
    for _ in 0..k {
        if remaining.len() < h {
            break;
        }
        let sub = InducedSubgraph::new(g, &remaining);
        let cliques = CliqueSet::enumerate(&sub.graph, h);
        if cliques.is_empty() {
            break;
        }
        let state = seq_kclist_pp(&cliques, iterations);
        // order by weight descending, then take the exact densest prefix
        let mut order: Vec<VertexId> = (0..sub.n() as VertexId).collect();
        order.sort_by(|&a, &b| {
            state.r[b as usize]
                .partial_cmp(&state.r[a as usize])
                .expect("finite r")
                .then(a.cmp(&b))
        });
        let mut rank = vec![0u32; sub.n()];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        let mut ending_at = vec![0u64; sub.n()];
        for i in 0..cliques.len() {
            let mx = cliques
                .members(i)
                .iter()
                .map(|&v| rank[v as usize])
                .max()
                .expect("non-empty clique");
            ending_at[mx as usize] += 1;
        }
        let mut best_q = 0usize;
        let mut best = Ratio::zero();
        let mut acc = 0u64;
        for q in 1..=sub.n() {
            acc += ending_at[q - 1];
            if acc == 0 {
                continue;
            }
            let d = Ratio::new(acc as i128, q as i128);
            if d > best {
                best = d;
                best_q = q;
            }
        }
        if best_q == 0 {
            break;
        }
        let mut chosen: Vec<VertexId> = order[..best_q].to_vec();
        // Exact flow refinement: the rounding prefix is only a lower
        // bound after `iterations` CP rounds, so certify it against the
        // exact densest decomposition and replace it when it falls short.
        let local: Vec<VertexId> = (0..sub.n() as VertexId).collect();
        let (inst, map) = local_instance(&cliques, &local);
        if let Some((rho, members)) = InstanceSolver::new(inst).densest_decomposition() {
            if rho > best {
                chosen = map
                    .iter()
                    .zip(&members)
                    .filter(|&(_, &m)| m)
                    .map(|(&v, _)| v)
                    .collect();
            }
        }
        // report the largest connected piece of the chosen set
        let comps = components_within(&sub.graph, &chosen);
        let piece = comps
            .into_iter()
            .max_by_key(|c| c.len())
            .expect("non-empty prefix");
        let mut in_piece = vec![false; sub.n()];
        for &v in &piece {
            in_piece[v as usize] = true;
        }
        let count = cliques.cliques_inside(&in_piece);
        let density = Ratio::new(count as i128, piece.len() as i128);
        let original = sub.parents_of(&piece);
        // remove the extracted vertices and continue
        let mut extracted = vec![false; g.n()];
        for &v in &original {
            extracted[v as usize] = true;
        }
        remaining.retain(|&v| !extracted[v as usize]);
        results.push(GreedyDense {
            vertices: {
                let mut o = original;
                o.sort_unstable();
                o
            },
            density,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn k5_and_k4() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        for u in 5..9u32 {
            for v in u + 1..9 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn finds_k5_first_then_k4() {
        let g = k5_and_k4();
        let out = greedy_top_k_cds(&g, 3, 2, 30);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(out[0].density, Ratio::from_int(2));
        assert_eq!(out[1].vertices, vec![5, 6, 7, 8]);
        assert_eq!(out[1].density, Ratio::from_int(1));
    }

    #[test]
    fn top1_density_matches_cds_optimum() {
        // greedy's first extraction of the densest prefix is the exact
        // CDS on this simple instance
        let g = k5_and_k4();
        let out = greedy_top_k_cds(&g, 3, 1, 50);
        assert_eq!(out[0].density, Ratio::from_int(2));
    }

    #[test]
    fn may_shave_single_region() {
        // K7: greedy extracts the whole clique first; a second round has
        // nothing left.
        let mut b = GraphBuilder::new();
        for u in 0..7u32 {
            for v in u + 1..7 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let out = greedy_top_k_cds(&g, 3, 3, 30);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vertices.len(), 7);
    }

    #[test]
    fn empty_and_clique_free_inputs() {
        let g = CsrGraph::from_edges(0, []);
        assert!(greedy_top_k_cds(&g, 3, 2, 10).is_empty());
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(greedy_top_k_cds(&g, 3, 2, 10).is_empty());
    }
}
