//! # lhcds-baselines
//!
//! Comparison algorithms from the paper's evaluation (§6):
//!
//! * [`flowlds::FlowLds`] — a flow-based top-k locally densest subgraph
//!   algorithm in the style of **LDSflow** (Qin et al., KDD 2015; the
//!   `h = 2` comparator of Figure 12) and **LTDS** (Samusevich et al.,
//!   ASONAM 2016; the `h = 3` comparator of Table 3), generalized to any
//!   `h`. It shares the exact verification machinery but — like the
//!   originals — relies only on loose core-based bounds and the basic
//!   full-graph flow verification, which is precisely the inefficiency
//!   IPPV removes.
//! * [`greedy::greedy_top_k_cds`] — the **Greedy** comparator of
//!   Figure 14: repeated h-clique densest subgraph extraction via the
//!   kClist++ convex program with exact flow refinement, but *without*
//!   the locally-densest guarantee (returned regions may be adjacent
//!   fragments of one dense area).
//! * [`peel::peel_densest`] — Charikar-style greedy peeling for the
//!   h-clique densest subgraph (the classic `1/h`-approximation), used
//!   as a cheap seed and as a sanity baseline in benches.
//!
//! In the workspace DAG this crate sits above `lhcds-core` (as
//! `lhcds-patterns`' sibling); the bench harness compares it against
//! IPPV in Figures 12/14/15 and Table 3.
//!
//! # Example
//!
//! ```
//! use lhcds_baselines::FlowLds;
//! use lhcds_core::pipeline::{top_k_lhcds, IppvConfig};
//! use lhcds_graph::CsrGraph;
//!
//! // Two triangles joined by a path: both algorithms must agree.
//! let g = CsrGraph::from_edges(
//!     8,
//!     [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 5)],
//! );
//! let baseline = FlowLds::ltds().top_k(&g, 2);
//! let ippv = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
//! assert_eq!(baseline.subgraphs, ippv.subgraphs);
//! ```

#![warn(missing_docs)]

pub mod flowlds;
pub mod greedy;
pub mod peel;

pub use flowlds::FlowLds;
pub use greedy::greedy_top_k_cds;
pub use peel::peel_densest;
