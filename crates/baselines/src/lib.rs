//! # lhcds-baselines
//!
//! Comparison algorithms from the paper's evaluation (§6):
//!
//! * [`flowlds::FlowLds`] — a flow-based top-k locally densest subgraph
//!   algorithm in the style of **LDSflow** (Qin et al., KDD 2015; the
//!   `h = 2` comparator of Figure 12) and **LTDS** (Samusevich et al.,
//!   ASONAM 2016; the `h = 3` comparator of Table 3), generalized to any
//!   `h`. It shares the exact verification machinery but — like the
//!   originals — relies only on loose core-based bounds and the basic
//!   full-graph flow verification, which is precisely the inefficiency
//!   IPPV removes.
//! * [`greedy::greedy_top_k_cds`] — the **Greedy** comparator of
//!   Figure 14: repeated h-clique densest subgraph extraction via the
//!   kClist++ convex program with exact flow refinement, but *without*
//!   the locally-densest guarantee (returned regions may be adjacent
//!   fragments of one dense area).
//! * [`peel::peel_densest`] — Charikar-style greedy peeling for the
//!   h-clique densest subgraph (the classic `1/h`-approximation), used
//!   as a cheap seed and as a sanity baseline in benches.

pub mod flowlds;
pub mod greedy;
pub mod peel;

pub use flowlds::FlowLds;
pub use greedy::greedy_top_k_cds;
pub use peel::peel_densest;
