//! Charikar-style greedy peeling for the h-clique densest subgraph.
//!
//! Repeatedly removes the vertex of minimum h-clique degree and reports
//! the prefix (in reverse removal order) with the highest h-clique
//! density. For `h = 2` this is Charikar's classic 2-approximation; for
//! general `h` it is the `1/h`-approximation used throughout the CDS
//! literature. It serves as a cheap seed/baseline in the benchmarks.

use lhcds_clique::CliqueSet;
use lhcds_core::Ratio;
use lhcds_graph::{CsrGraph, VertexId};

/// Result of a peeling run.
#[derive(Debug, Clone)]
pub struct PeelResult {
    /// Vertices of the best suffix subgraph, ascending.
    pub vertices: Vec<VertexId>,
    /// Exact h-clique density of that subgraph.
    pub density: Ratio,
}

/// Peels `g` by minimum h-clique degree and returns the densest suffix.
/// Returns `None` when the graph holds no h-clique.
pub fn peel_densest(g: &CsrGraph, h: usize) -> Option<PeelResult> {
    let cliques = CliqueSet::enumerate(g, h);
    peel_densest_with(&cliques)
}

/// Peeling on a pre-enumerated clique store.
pub fn peel_densest_with(cliques: &CliqueSet) -> Option<PeelResult> {
    let n = cliques.n();
    if cliques.is_empty() || n == 0 {
        return None;
    }
    let mut degree: Vec<usize> = (0..n).map(|v| cliques.degree(v as VertexId)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut bucket: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        bucket[d].push(v as VertexId);
    }

    let mut removed = vec![false; n];
    let mut clique_dead = vec![false; cliques.len()];
    let mut remaining_cliques = cliques.len() as u64;
    let mut order = Vec::with_capacity(n);
    let mut cur = 0usize;

    // density before any removal
    let mut best = Ratio::new(remaining_cliques as i128, n as i128);
    let mut best_removed = 0usize;

    for step in 0..n {
        let v = loop {
            while cur <= max_deg && bucket[cur].is_empty() {
                cur += 1;
            }
            let v = bucket[cur].pop().expect("peeling invariant");
            if !removed[v as usize] && degree[v as usize] == cur {
                break v;
            }
        };
        removed[v as usize] = true;
        order.push(v);
        for &ci in cliques.cliques_of(v) {
            let ci = ci as usize;
            if clique_dead[ci] {
                continue;
            }
            clique_dead[ci] = true;
            remaining_cliques -= 1;
            for &w in cliques.members(ci) {
                let wi = w as usize;
                if !removed[wi] {
                    degree[wi] -= 1;
                    bucket[degree[wi]].push(w);
                    if degree[wi] < cur {
                        cur = degree[wi];
                    }
                }
            }
        }
        let left = n - step - 1;
        if left > 0 && remaining_cliques > 0 {
            let d = Ratio::new(remaining_cliques as i128, left as i128);
            if d > best {
                best = d;
                best_removed = step + 1;
            }
        }
    }

    let mut keep = vec![true; n];
    for &v in &order[..best_removed] {
        keep[v as usize] = false;
    }
    let vertices: Vec<VertexId> = (0..n as VertexId).filter(|&v| keep[v as usize]).collect();
    Some(PeelResult {
        vertices,
        density: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    #[test]
    fn finds_planted_k6() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        // sparse tail
        b.add_edge(5, 6).add_edge(6, 7).add_edge(7, 8);
        let g = b.build();
        let r = peel_densest(&g, 3).unwrap();
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.density, Ratio::new(20, 6));
    }

    #[test]
    fn approximation_bound_holds() {
        // peel density ≥ optimum / h on a graph whose optimum we know:
        // K5 (density 2 at h = 3)
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5).add_edge(5, 6);
        let g = b.build();
        let r = peel_densest(&g, 3).unwrap();
        assert!(r.density >= Ratio::new(2, 3));
    }

    #[test]
    fn clique_free_graph_returns_none() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(peel_densest(&g, 3).is_none());
    }

    #[test]
    fn whole_graph_best_when_uniform() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let r = peel_densest(&g, 3).unwrap();
        assert_eq!(r.vertices.len(), 5);
        assert_eq!(r.density, Ratio::from_int(2));
    }
}
