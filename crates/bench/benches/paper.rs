//! Criterion benches — one group per table/figure of the paper
//! (reduced dataset scale so `cargo bench` stays in budget; the
//! `harness` binary runs the full-size sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lhcds::baselines::{greedy_top_k_cds, FlowLds};
use lhcds::clique::count_cliques;
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::datasets::by_abbr;
use lhcds::data::gen::sample_edges;
use lhcds::data::polbooks_like;
use lhcds::graph::CsrGraph;
use lhcds::patterns::{top_k_lhxpds, Pattern};

const SCALE: f64 = 0.02;

fn graph(abbr: &str) -> CsrGraph {
    by_abbr(abbr)
        .expect("known abbr")
        .generate_scaled(SCALE)
        .graph
}

fn cfg(fast: bool) -> IppvConfig {
    IppvConfig {
        fast_verify: fast,
        ..IppvConfig::default()
    }
}

/// Table 2: dataset statistics (clique counting cost).
fn table2_stats(c: &mut Criterion) {
    let g = graph("HA");
    let mut group = c.benchmark_group("table2_stats");
    group.sample_size(10);
    for h in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("count_cliques", h), &h, |b, &h| {
            b.iter(|| count_cliques(&g, h))
        });
    }
    group.finish();
}

/// Figure 9: basic vs fast verification across h and k.
fn fig9_verify(c: &mut Criterion) {
    let g = graph("HA");
    let mut group = c.benchmark_group("fig9_verify");
    group.sample_size(10);
    for h in [3usize, 4] {
        for k in [5usize, 20] {
            group.bench_with_input(BenchmarkId::new(format!("basic_h{h}"), k), &k, |b, &k| {
                b.iter(|| top_k_lhcds(&g, h, k, &cfg(false)))
            });
            group.bench_with_input(BenchmarkId::new(format!("fast_h{h}"), k), &k, |b, &k| {
                b.iter(|| top_k_lhcds(&g, h, k, &cfg(true)))
            });
        }
    }
    group.finish();
}

/// Figure 10: full pipeline at h=3, k=20 (stage breakdown is reported
/// by the harness; the bench tracks the end-to-end cost).
fn fig10_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_breakdown");
    group.sample_size(10);
    for abbr in ["CM", "GQ", "PC", "HA"] {
        let g = graph(abbr);
        group.bench_function(BenchmarkId::new("ippv_h3_k20", abbr), |b| {
            b.iter(|| top_k_lhcds(&g, 3, 20, &cfg(true)))
        });
    }
    group.finish();
}

/// Figure 11: runtime vs edge-sampling density.
fn fig11_density(c: &mut Criterion) {
    let g = graph("EN");
    let mut group = c.benchmark_group("fig11_density");
    group.sample_size(10);
    for pct in [20u32, 60, 100] {
        let sampled = sample_edges(&g, pct as f64 / 100.0, pct as u64);
        group.bench_with_input(BenchmarkId::new("ippv_h3_k5", pct), &sampled, |b, s| {
            b.iter(|| top_k_lhcds(s, 3, 5, &cfg(true)))
        });
    }
    group.finish();
}

/// Figure 12: IPPV (h=2) vs LDSflow.
fn fig12_ldsflow(c: &mut Criterion) {
    let g = graph("EP");
    let mut group = c.benchmark_group("fig12_ldsflow");
    group.sample_size(10);
    group.bench_function("ippv_h2_k5", |b| {
        b.iter(|| top_k_lhcds(&g, 2, 5, &cfg(true)))
    });
    group.bench_function("ldsflow_k5", |b| b.iter(|| FlowLds::ldsflow().top_k(&g, 5)));
    group.finish();
}

/// Table 3: IPPV (h=3) vs LTDS.
fn table3_ltds(c: &mut Criterion) {
    let g = graph("CM");
    let mut group = c.benchmark_group("table3_ltds");
    group.sample_size(10);
    group.bench_function("ippv_h3_k5", |b| {
        b.iter(|| top_k_lhcds(&g, 3, 5, &cfg(true)))
    });
    group.bench_function("ltds_k5", |b| b.iter(|| FlowLds::ltds().top_k(&g, 5)));
    group.finish();
}

/// Figures 13 / Table 4 / Table 5: quality sweeps over h on the case
/// study network.
fn table4_quality(c: &mut Criterion) {
    let pb = polbooks_like();
    let mut group = c.benchmark_group("table4_quality");
    group.sample_size(10);
    for h in [2usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("polbooks_top5", h), &h, |b, &h| {
            b.iter(|| top_k_lhcds(&pb.graph, h, 5, &cfg(true)))
        });
    }
    group.finish();
}

/// Figure 14: IPPV vs Greedy.
fn fig14_greedy(c: &mut Criterion) {
    let g = graph("PC");
    let mut group = c.benchmark_group("fig14_greedy");
    group.sample_size(10);
    group.bench_function("ippv_h3_k5", |b| {
        b.iter(|| top_k_lhcds(&g, 3, 5, &cfg(true)))
    });
    group.bench_function("greedy_h3_k5", |b| {
        b.iter(|| greedy_top_k_cds(&g, 3, 5, 20))
    });
    group.finish();
}

/// Figure 16: CP iteration count sweep.
fn fig16_iters(c: &mut Criterion) {
    let g = graph("HA");
    let mut group = c.benchmark_group("fig16_iters");
    group.sample_size(10);
    for t in [5usize, 20, 100] {
        let config = IppvConfig {
            cp_iterations: t,
            ..IppvConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("ippv_h3_k20", t), &config, |b, config| {
            b.iter(|| top_k_lhcds(&g, 3, 20, config))
        });
    }
    group.finish();
}

/// Figure 17: pattern pipelines on the case study network.
fn fig17_patterns(c: &mut Criterion) {
    let pb = polbooks_like();
    let mut group = c.benchmark_group("fig17_patterns");
    group.sample_size(10);
    for p in Pattern::all_four_vertex() {
        group.bench_function(BenchmarkId::new("lhxpds_top2", p.name()), |b| {
            b.iter(|| top_k_lhxpds(&pb.graph, p, 2, &IppvConfig::default()))
        });
    }
    group.finish();
}

/// Ablation: verifier configurations (DESIGN.md §4).
fn ablation_verify(c: &mut Criterion) {
    let g = graph("HA");
    let mut group = c.benchmark_group("ablation_verify");
    group.sample_size(10);
    let variants: [(&str, IppvConfig); 3] = [
        ("fast", IppvConfig::default()),
        (
            "basic",
            IppvConfig {
                fast_verify: false,
                ..IppvConfig::default()
            },
        ),
        (
            "flow_only",
            IppvConfig {
                use_cp: false,
                use_prune: false,
                fast_verify: false,
                ..IppvConfig::default()
            },
        ),
    ];
    for (name, config) in variants {
        group.bench_function(BenchmarkId::new("h3_k10", name), |b| {
            b.iter(|| top_k_lhcds(&g, 3, 10, &config))
        });
    }
    group.finish();
}

criterion_group!(
    paper,
    table2_stats,
    fig9_verify,
    fig10_breakdown,
    fig11_density,
    fig12_ldsflow,
    table3_ltds,
    table4_quality,
    fig14_greedy,
    fig16_iters,
    fig17_patterns,
    ablation_verify
);
criterion_main!(paper);
