//! Microbenchmarks of the substrate crates: clique enumeration,
//! clique-core decomposition, the convex-program iterations, and the
//! max-flow verification primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lhcds::clique::{clique_core, par_count_per_vertex, CliqueSet, Parallelism};
use lhcds::core::compact::{densest_decomposition, local_instance};
use lhcds::core::cp::seq_kclist_pp;
use lhcds::data::gen::{gnp, planted_communities};
use lhcds::flow::Dinic;
use lhcds::graph::core_decomp::degeneracy_order;
use lhcds::graph::{CsrGraph, VertexId};

fn bench_graph() -> CsrGraph {
    planted_communities(2000, 4, &[(20, 0.9), (16, 0.85), (12, 0.9)], 0xBEEF)
}

fn clique_enumeration(c: &mut Criterion) {
    let g = bench_graph();
    let mut group = c.benchmark_group("sub_kclist");
    group.sample_size(10);
    for h in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::new("enumerate", h), &h, |b, &h| {
            b.iter(|| CliqueSet::enumerate(&g, h).len())
        });
    }
    group.finish();
}

/// Serial vs node-parallel enumeration at 1/2/4 threads: same store,
/// same degree vectors — only the wall time may differ.
fn parallel_clique_enumeration(c: &mut Criterion) {
    let g = bench_graph();
    let mut group = c.benchmark_group("sub_kclist_par");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let par = Parallelism::threads(threads);
        group.bench_with_input(
            BenchmarkId::new("enumerate_h4", threads),
            &threads,
            |b, _| b.iter(|| CliqueSet::enumerate_with(&g, 4, &par).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("count_per_vertex_h4", threads),
            &threads,
            |b, _| b.iter(|| par_count_per_vertex(&g, 4, &par)),
        );
    }
    group.finish();
}

fn core_decompositions(c: &mut Criterion) {
    let g = bench_graph();
    let cs = CliqueSet::enumerate(&g, 3);
    let mut group = c.benchmark_group("sub_cores");
    group.sample_size(10);
    group.bench_function("edge_degeneracy", |b| b.iter(|| degeneracy_order(&g)));
    group.bench_function("clique_core_h3", |b| b.iter(|| clique_core(&cs)));
    group.finish();
}

fn cp_iterations(c: &mut Criterion) {
    let g = bench_graph();
    let cs = CliqueSet::enumerate(&g, 3);
    let mut group = c.benchmark_group("sub_cp");
    group.sample_size(10);
    for t in [1usize, 20] {
        group.bench_with_input(BenchmarkId::new("seq_kclist_pp", t), &t, |b, &t| {
            b.iter(|| seq_kclist_pp(&cs, t))
        });
    }
    group.finish();
}

fn flow_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sub_flow");
    group.sample_size(10);
    // raw Dinic on a layered random network
    group.bench_function("dinic_grid", |b| {
        b.iter(|| {
            let n = 40u32;
            let mut d = Dinic::new((n * n + 2) as usize);
            let id = |r: u32, col: u32| 1 + r * n + col;
            for r in 0..n {
                d.add_edge(0, id(r, 0), 1000);
                d.add_edge(id(r, n - 1), n * n + 1, 1000);
                for col in 0..n - 1 {
                    d.add_edge(id(r, col), id(r, col + 1), ((r + col) % 7 + 1) as i128);
                    if r + 1 < n {
                        d.add_edge(id(r, col), id(r + 1, col), ((r * col) % 5 + 1) as i128);
                    }
                }
            }
            d.max_flow(0, n * n + 1)
        })
    });
    // densest decomposition network on a dense pocket
    let g = gnp(160, 0.35, 0x5EED);
    let cs = CliqueSet::enumerate(&g, 3);
    let all: Vec<VertexId> = g.vertices().collect();
    group.bench_function("densest_decomposition_h3", |b| {
        b.iter(|| {
            let (inst, _) = local_instance(&cs, &all);
            densest_decomposition(&inst)
        })
    });
    group.finish();
}

criterion_group!(
    substrates,
    clique_enumeration,
    parallel_clique_enumeration,
    core_decompositions,
    cp_iterations,
    flow_primitives
);
criterion_main!(substrates);
