//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation on the synthetic stand-in datasets.
//!
//! ```text
//! cargo run --release -p lhcds-bench --bin harness -- all
//! cargo run --release -p lhcds-bench --bin harness -- fig9 table3 --scale 0.2
//! cargo run --release -p lhcds-bench --bin harness -- --list
//! ```
//!
//! Output is GitHub-flavored markdown on stdout (tee it into a file to
//! update `EXPERIMENTS.md`). `--scale` multiplies the background size
//! of every dataset stand-in (default 0.08; 1.0 = full stand-in size).
//! `--threads N` adds `N` to the thread sweep of the `kclist`
//! experiment.
//!
//! Five experiments record committed `BENCH_*.json` baselines
//! (directory override: `LHCDS_BENCH_DIR`), each stamped with the
//! recording host's parallelism (`host_parallelism`,
//! `recorded_on_single_cpu`):
//!
//! * `kclist` → `BENCH_kclist.json` — serial vs node-parallel
//!   enumeration;
//! * `table2real` → `BENCH_table2.json` — statistics of any real SNAP
//!   graphs present via the `datasets.toml` manifest (skips gracefully
//!   when none are downloaded, so CI stays hermetic);
//! * `serve_qps` → `BENCH_serve.json` — query-daemon throughput plus
//!   server-side histogram p50/p99/p999 tail latency (`lhcds-service`),
//!   and a 2× overload burst against a starved daemon recording the
//!   shed rate and admitted-request p99;
//! * `obs` → `BENCH_obs.json` — `lhcds_obs` tracing cost, off vs on:
//!   asserts traced and untraced pipelines agree byte-for-byte and
//!   that disabled instrumentation — span guards and disarmed
//!   fault-injection checks alike — stays under 1% of wall;
//! * `flowreuse` → `BENCH_flow.json` — parametric flow-network reuse
//!   vs rebuild-per-probe on the decomposition ladder and the full
//!   pipeline (wall time + networks/arcs built, max-flow invocations,
//!   warm-start hit rate); also asserts reuse/scratch bit-identity and
//!   the fewer-networks-than-probes contract on every run.

use lhcds_bench::experiments::{all_experiments, run_experiment, ExpOptions};
use lhcds_bench::measure::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOptions::default();
    let mut chosen: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for e in all_experiments() {
                    println!("{e}");
                }
                return;
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage("--scale needs a value"));
                opts.scale = v
                    .parse()
                    .unwrap_or_else(|_| usage("--scale expects a float in (0, 1]"));
                if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                    usage("--scale expects a float in (0, 1]");
                }
            }
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                opts.threads = v
                    .parse()
                    .unwrap_or_else(|_| usage("--threads expects a non-negative integer"));
            }
            "--help" | "-h" => usage(""),
            "all" => chosen.extend(all_experiments().iter().map(|s| s.to_string())),
            other => chosen.push(other.to_string()),
        }
    }
    if chosen.is_empty() {
        usage("no experiments selected");
    }
    chosen.dedup();

    println!("# LhCDS experiment harness (scale = {})\n", opts.scale);
    let t0 = std::time::Instant::now();
    for name in &chosen {
        let started = std::time::Instant::now();
        match run_experiment(name, &opts) {
            Some(section) => {
                println!("{section}");
                println!(
                    "_({name} completed in {:.1} s)_\n",
                    started.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment '{name}' — use --list");
                std::process::exit(2);
            }
        }
    }
    println!("_total harness time: {:.1} s_", t0.elapsed().as_secs_f64());
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: harness [all | <experiment>...] [--scale F] [--threads N] [--list]\n\
         experiments: {}",
        all_experiments().join(", ")
    );
    std::process::exit(2);
}
