//! One runner per table/figure of the paper's evaluation (§6).
//!
//! Every runner prints a markdown section comparable to the paper's
//! artifact and returns it as a string (the `harness` binary collects
//! them into `EXPERIMENTS.md` material). Dataset sizes are controlled
//! by [`ExpOptions::scale`]; the defaults keep the full sweep in a
//! minutes-scale budget (the paper's originals ran up to 48 h).

use crate::measure::{fmt_kb, peak_bytes, reset_peak, time_ms, BenchProvenance, MdTable};
use lhcds::baselines::{greedy_top_k_cds, FlowLds};
use lhcds::clique::{count_cliques, par_count_cliques, par_count_per_vertex, Parallelism};
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig, IppvResult};
use lhcds::data::datasets::by_abbr;
use lhcds::data::manifest::DatasetRegistry;
use lhcds::data::{polbooks_like, registry, Dataset, LabeledGraph};
use lhcds::graph::properties::{average_clustering, diameter, edge_density};
use lhcds::graph::{CsrGraph, InducedSubgraph};
use lhcds::patterns::{enumerate_pattern_with, top_k_lhxpds, Pattern};

/// Experiment options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Dataset scale factor in `(0, 1]` (background size multiplier).
    pub scale: f64,
    /// Worker threads for clique enumeration where an experiment
    /// supports it: `kclist` adds this count to its 1/2/4 sweep, and
    /// `table2real` counts |Ψ3|/|Ψ5| on this many threads (`0` =
    /// serial). Results never depend on it — only wall time does.
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.08,
            threads: 0,
        }
    }
}

fn dataset(abbr: &str, scale: f64) -> Dataset {
    by_abbr(abbr)
        .unwrap_or_else(|| panic!("unknown dataset {abbr}"))
        .generate_scaled(scale.min(1.0))
}

fn ippv_cfg(fast: bool) -> IppvConfig {
    IppvConfig {
        fast_verify: fast,
        ..IppvConfig::default()
    }
}

fn run(g: &CsrGraph, h: usize, k: usize, fast: bool) -> (IppvResult, f64) {
    let (res, ms) = time_ms(|| top_k_lhcds(g, h, k, &ippv_cfg(fast)));
    (res, ms)
}

/// All experiment ids, paper order.
pub fn all_experiments() -> &'static [&'static str] {
    &[
        "table2",
        "table2real",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "table3",
        "fig13",
        "table4",
        "fig14",
        "table5",
        "fig15",
        "fig16",
        "fig17",
        "ablation",
        "kclist",
        "patterns",
        "serve_qps",
        "flowreuse",
        "obs",
    ]
}

/// Dispatches an experiment by id.
pub fn run_experiment(name: &str, opts: &ExpOptions) -> Option<String> {
    Some(match name {
        "table2" => table2(opts),
        "table2real" => table2real(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "fig12" => fig12(opts),
        "table3" => table3(opts),
        "fig13" => fig13(opts),
        "table4" => table4(opts),
        "fig14" => fig14(opts),
        "table5" => table5(opts),
        "fig15" => fig15(opts),
        "fig16" => fig16(opts),
        "fig17" => fig17(opts),
        "ablation" => ablation(opts),
        "kclist" => kclist(opts),
        "patterns" => patterns(opts),
        "serve_qps" => serve_qps(opts),
        "flowreuse" => flowreuse(opts),
        "obs" => obs(opts),
        _ => return None,
    })
}

/// Table 2: dataset statistics (`|V|, |E|, |Ψ3|, |Ψ5|`) for the
/// synthetic stand-ins next to the paper's originals.
pub fn table2(opts: &ExpOptions) -> String {
    let mut t = MdTable::new([
        "abbr",
        "stand-in |V|",
        "stand-in |E|",
        "|Ψ3|",
        "|Ψ5|",
        "paper |V|",
        "paper |E|",
    ]);
    for spec in registry() {
        let d = spec.generate_scaled(opts.scale);
        let g = &d.graph;
        t.row([
            spec.abbr.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            count_cliques(g, 3).to_string(),
            count_cliques(g, 5).to_string(),
            spec.paper_n.to_string(),
            spec.paper_m.to_string(),
        ]);
    }
    format!("## Table 2 — dataset statistics\n\n{}", t.render())
}

/// Table 2 on *real* graphs: loads every locally-present dataset from
/// the `datasets.toml` manifest (see `lhcds-data::manifest`), measures
/// load time (through the binary cache), `|V|`, `|E|`, `|Ψ3|`, `|Ψ5|`,
/// and records the rows to `BENCH_table2.json`.
///
/// Hermetic by design: when no manifest exists or no dataset file has
/// been downloaded, the experiment reports a skip note and writes
/// nothing — CI never depends on network downloads.
pub fn table2real(opts: &ExpOptions) -> String {
    let dir = std::env::var("LHCDS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    table2real_on(
        opts,
        &DatasetRegistry::default_path(),
        std::path::Path::new(&dir),
    )
}

/// Escapes a string for splicing into a JSON string literal (dataset
/// names come from the user's manifest, not from this crate).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// [`table2real`] with explicit manifest and output paths (unit tests
/// point these at fixtures and temp dirs).
fn table2real_on(
    opts: &ExpOptions,
    manifest: &std::path::Path,
    out_dir: &std::path::Path,
) -> String {
    let heading = "## Table 2 (real) — user-provided SNAP graphs";
    let parallelism = if opts.threads > 0 {
        Parallelism::threads(opts.threads)
    } else {
        Parallelism::serial()
    };
    if !manifest.is_file() {
        return format!(
            "{heading}\n\nskipped: no manifest at `{}` — run \
             `lhcds datasets fetch-instructions` to set one up.\n",
            manifest.display()
        );
    }
    let registry = match DatasetRegistry::load(manifest) {
        Ok(r) => r,
        Err(e) => return format!("{heading}\n\nskipped: {e}\n"),
    };

    let mut t = MdTable::new([
        "dataset",
        "|V|",
        "|E|",
        "|Ψ3|",
        "|Ψ5|",
        "load (ms)",
        "source",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut absent: Vec<&str> = Vec::new();
    for entry in registry.entries() {
        if !entry.is_present() {
            absent.push(&entry.name);
            continue;
        }
        let (loaded, ms) = time_ms(|| entry.load());
        let (g, status) = match loaded {
            Ok(ok) => ok,
            Err(e) => {
                t.row([
                    entry.name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{ms:.1}"),
                    format!("FAILED: {e}"),
                ]);
                continue;
            }
        };
        let g = &g.graph;
        let psi3 = par_count_cliques(g, 3, &parallelism);
        let psi5 = par_count_cliques(g, 5, &parallelism);
        let source = match status {
            lhcds::data::CacheStatus::Hit => "cache",
            lhcds::data::CacheStatus::Built => "text (cache written)",
            lhcds::data::CacheStatus::Rebuilt => "text (cache rebuilt)",
            lhcds::data::CacheStatus::Uncached => "text (cache not writable)",
        };
        t.row([
            entry.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            psi3.to_string(),
            psi5.to_string(),
            format!("{ms:.1}"),
            source.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"dataset\": \"{}\", \"n\": {}, \"m\": {}, \"psi3\": {psi3}, \
             \"psi5\": {psi5}, \"load_ms\": {ms:.3}, \"from_cache\": {}}}",
            json_escape(&entry.name),
            g.n(),
            g.m(),
            status == lhcds::data::CacheStatus::Hit,
        ));
    }

    if t.is_empty() {
        return format!(
            "{heading}\n\nskipped: manifest `{}` lists {} dataset(s) but none are \
             downloaded — see `lhcds datasets fetch-instructions`.\n",
            manifest.display(),
            registry.entries().len()
        );
    }
    // Every present dataset failed to load: report, but never clobber a
    // previously recorded good baseline with an empty rows array.
    if json_rows.is_empty() {
        return format!(
            "{heading}\n\n{}\nno dataset loaded successfully — `BENCH_table2.json` left untouched\n",
            t.render()
        );
    }
    let json = format!(
        "{{\n  \"experiment\": \"table2real\",\n  {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        BenchProvenance::detect().json_fields(),
        json_rows.join(",\n")
    );
    let path = out_dir.join("BENCH_table2.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("recorded to `{}`", path.display()),
        Err(e) => format!("could not write `{}`: {e}", path.display()),
    };
    let absent_note = if absent.is_empty() {
        String::new()
    } else {
        format!("\nnot downloaded (skipped): {}\n", absent.join(", "))
    };
    format!("{heading}\n\n{}\n{note}\n{absent_note}", t.render())
}

/// Figure 9: basic vs fast verification runtime across `h ∈ {3,4,5}`
/// and `k ∈ {5,10,15,20}`.
pub fn fig9(opts: &ExpOptions) -> String {
    let panels = ["PC", "HA", "EP", "EN", "GW", "CM", "GQ", "AM"];
    let mut t = MdTable::new(["dataset", "h", "k", "basic (ms)", "fast (ms)", "speedup"]);
    for abbr in panels {
        let d = dataset(abbr, opts.scale);
        for h in [3usize, 4, 5] {
            for k in [5usize, 10, 15, 20] {
                let (res_b, ms_b) = run(&d.graph, h, k, false);
                let (res_f, ms_f) = run(&d.graph, h, k, true);
                assert_eq!(res_b.subgraphs, res_f.subgraphs, "verifiers disagree");
                t.row([
                    abbr.to_string(),
                    h.to_string(),
                    k.to_string(),
                    format!("{ms_b:.1}"),
                    format!("{ms_f:.1}"),
                    format!("{:.2}x", ms_b / ms_f.max(1e-9)),
                ]);
            }
        }
    }
    format!(
        "## Figure 9 — basic vs fast verification (paper: fast ≪ basic, gap grows with k)\n\n{}",
        t.render()
    )
}

/// Figure 10: per-stage runtime breakdown at `h = 3, k = 20`.
pub fn fig10(opts: &ExpOptions) -> String {
    let mut t = MdTable::new([
        "dataset",
        "variant",
        "SEQ-kClist++ (ms)",
        "TentativeGD+DeriveSG (ms)",
        "Prune (ms)",
        "Verify (ms)",
        "total (ms)",
    ]);
    for abbr in ["CM", "GQ", "PC", "HA"] {
        let d = dataset(abbr, opts.scale);
        for (label, fast) in [("basic", false), ("fast", true)] {
            let (res, ms) = run(&d.graph, 3, 20, fast);
            let s = &res.stats;
            t.row([
                abbr.to_string(),
                label.to_string(),
                format!("{:.1}", s.cp_ms),
                format!("{:.1}", s.decompose_ms),
                format!("{:.1}", s.prune_ms),
                format!("{:.1}", s.verify_ms),
                format!("{ms:.1}"),
            ]);
        }
    }
    format!(
        "## Figure 10 — stage breakdown, h=3 k=20 (paper: verification dominates; fast shrinks it)\n\n{}",
        t.render()
    )
}

/// Figure 11: runtime vs edge-sampling density (20%–100%), `h=3, k=5`.
pub fn fig11(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "density", "|E|", "|Ψ3|", "time (ms)"]);
    for abbr in ["AM", "EN", "EP", "DB"] {
        let d = dataset(abbr, opts.scale);
        for pct in [20u32, 40, 60, 80, 100] {
            let g = lhcds::data::gen::sample_edges(&d.graph, pct as f64 / 100.0, 7 + pct as u64);
            let psi = count_cliques(&g, 3);
            let (_, ms) = run(&g, 3, 5, true);
            t.row([
                abbr.to_string(),
                format!("{pct}%"),
                g.m().to_string(),
                psi.to_string(),
                format!("{ms:.1}"),
            ]);
        }
    }
    format!(
        "## Figure 11 — runtime vs graph density (paper: time grows with density/|Ψ3|)\n\n{}",
        t.render()
    )
}

/// Figure 12: IPPV at `h = 2` vs the LDSflow baseline, `k = 5`.
pub fn fig12(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "IPPV h=2 (ms)", "LDSflow (ms)", "speedup"]);
    for abbr in ["PP", "EP", "EN", "GW", "YT", "AM", "LF", "FX"] {
        let d = dataset(abbr, opts.scale);
        let (res_i, ms_i) = run(&d.graph, 2, 5, true);
        let (res_l, ms_l) = time_ms(|| FlowLds::ldsflow().top_k(&d.graph, 5));
        assert_eq!(res_i.subgraphs, res_l.subgraphs, "LDSflow disagrees");
        t.row([
            abbr.to_string(),
            format!("{ms_i:.1}"),
            format!("{ms_l:.1}"),
            format!("{:.2}x", ms_l / ms_i.max(1e-9)),
        ]);
    }
    format!(
        "## Figure 12 — IPPV (h=2) vs LDSflow (paper: IPPV faster everywhere)\n\n{}",
        t.render()
    )
}

/// Table 3: IPPV at `h = 3` vs the LTDS baseline, `k = 5`.
pub fn table3(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "IPPV h=3 (ms)", "LTDS (ms)", "speedup"]);
    for spec in registry() {
        let d = spec.generate_scaled(opts.scale);
        let (res_i, ms_i) = run(&d.graph, 3, 5, true);
        let (res_l, ms_l) = time_ms(|| FlowLds::ltds().top_k(&d.graph, 5));
        assert_eq!(res_i.subgraphs, res_l.subgraphs, "LTDS disagrees");
        t.row([
            spec.abbr.to_string(),
            format!("{ms_i:.1}"),
            format!("{ms_l:.1}"),
            format!("{:.2}x", ms_l / ms_i.max(1e-9)),
        ]);
    }
    format!(
        "## Table 3 — IPPV (h=3) vs LTDS (paper: 1.2x–87x speedups)\n\n{}",
        t.render()
    )
}

fn label_mix(lg: &LabeledGraph, verts: &[lhcds::graph::VertexId]) -> String {
    let mut counts = vec![0usize; lg.label_names.len()];
    for &v in verts {
        counts[lg.labels[v as usize] as usize] += 1;
    }
    lg.label_names
        .iter()
        .zip(&counts)
        .filter(|&(_, &c)| c > 0)
        .map(|(n, c)| format!("{n}:{c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Figure 13: polbooks-like case study — top-1/2 LhCDS for h = 2..5
/// with community-label composition.
pub fn fig13(_opts: &ExpOptions) -> String {
    let pb = polbooks_like();
    let mut t = MdTable::new(["h", "rank", "size", "density", "edge density", "labels"]);
    for h in 2usize..=5 {
        let res = top_k_lhcds(&pb.graph, h, 2, &IppvConfig::default());
        for (i, s) in res.subgraphs.iter().enumerate() {
            let sub = InducedSubgraph::new(&pb.graph, &s.vertices);
            t.row([
                h.to_string(),
                format!("top-{}", i + 1),
                s.vertices.len().to_string(),
                format!("{:.3}", s.density.to_f64()),
                format!("{:.3}", edge_density(&sub.graph)),
                label_mix(&pb, &s.vertices),
            ]);
        }
    }
    format!(
        "## Figure 13 — polbooks case study (paper: larger h → more clique-like, multi-category coverage)\n\n{}",
        t.render()
    )
}

/// Table 4: average edge density and diameter of the top-5 LhCDSes for
/// `h ∈ {2, 3, 5, 7, 9}`.
pub fn table4(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "h", "avg edge density", "avg diameter", "found"]);
    for abbr in ["PC", "HA", "PP", "CM", "EP", "WB", "GQ"] {
        let d = dataset(abbr, opts.scale);
        for h in [2usize, 3, 5, 7, 9] {
            let res = top_k_lhcds(&d.graph, h, 5, &IppvConfig::default());
            if res.subgraphs.is_empty() {
                t.row([
                    abbr.into(),
                    h.to_string(),
                    "-".into(),
                    "-".into(),
                    "0".into(),
                ]);
                continue;
            }
            let mut dens = 0.0;
            let mut diam = 0.0;
            let mut diam_n = 0usize;
            for s in &res.subgraphs {
                let sub = InducedSubgraph::new(&d.graph, &s.vertices);
                dens += edge_density(&sub.graph);
                if let Some(dm) = diameter(&sub.graph) {
                    diam += dm as f64;
                    diam_n += 1;
                }
            }
            let found = res.subgraphs.len();
            t.row([
                abbr.to_string(),
                h.to_string(),
                format!("{:.3}", dens / found as f64),
                if diam_n > 0 {
                    format!("{:.2}", diam / diam_n as f64)
                } else {
                    "-".into()
                },
                found.to_string(),
            ]);
        }
    }
    format!(
        "## Table 4 — edge density & diameter of top-5 (paper: density grows with h, diameter ≤ 2)\n\n{}",
        t.render()
    )
}

/// Figure 14: size vs h-clique density, IPPV vs Greedy, `h ∈ {3, 5}`.
pub fn fig14(opts: &ExpOptions) -> String {
    let mut t = MdTable::new([
        "dataset",
        "h",
        "algorithm",
        "rank",
        "size",
        "h-clique density",
    ]);
    for abbr in ["CM", "PC"] {
        let d = dataset(abbr, opts.scale);
        for h in [3usize, 5] {
            let ippv = top_k_lhcds(&d.graph, h, 5, &IppvConfig::default());
            for (i, s) in ippv.subgraphs.iter().enumerate() {
                t.row([
                    abbr.to_string(),
                    h.to_string(),
                    "IPPV".into(),
                    (i + 1).to_string(),
                    s.vertices.len().to_string(),
                    format!("{:.2}", s.density.to_f64()),
                ]);
            }
            let greedy = greedy_top_k_cds(&d.graph, h, 5, 20);
            for (i, s) in greedy.iter().enumerate() {
                t.row([
                    abbr.to_string(),
                    h.to_string(),
                    "Greedy".into(),
                    (i + 1).to_string(),
                    s.vertices.len().to_string(),
                    format!("{:.2}", s.density.to_f64()),
                ]);
            }
            // the headline invariant of Figure 14: top-1 agrees
            if let (Some(a), Some(b)) = (ippv.subgraphs.first(), greedy.first()) {
                assert_eq!(a.density, b.density, "top-1 CDS density must agree");
            }
        }
    }
    format!(
        "## Figure 14 — IPPV vs Greedy subgraph statistics (paper: top-1 identical, Greedy lacks locality)\n\n{}",
        t.render()
    )
}

/// Table 5: average clustering coefficient of all LhCDSes for varying h.
pub fn table5(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "h", "avg clustering coefficient", "found"]);
    for abbr in ["PC", "HA", "PP", "CM", "EP", "WB", "GQ"] {
        let d = dataset(abbr, opts.scale);
        for h in [2usize, 3, 5, 7, 9] {
            let res = top_k_lhcds(&d.graph, h, 5, &IppvConfig::default());
            if res.subgraphs.is_empty() {
                t.row([abbr.into(), h.to_string(), "-".into(), "0".into()]);
                continue;
            }
            let mut cc = 0.0;
            for s in &res.subgraphs {
                let sub = InducedSubgraph::new(&d.graph, &s.vertices);
                cc += average_clustering(&sub.graph);
            }
            t.row([
                abbr.to_string(),
                h.to_string(),
                format!("{:.3}", cc / res.subgraphs.len() as f64),
                res.subgraphs.len().to_string(),
            ]);
        }
    }
    format!(
        "## Table 5 — clustering coefficient vs h (paper: grows with h; h=2 clearly lowest)\n\n{}",
        t.render()
    )
}

/// Figure 15: peak memory, IPPV vs LTDS (`h = 3, k = 5`). Requires the
/// counting allocator (installed by the harness binary).
pub fn fig15(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "IPPV peak (KB)", "LTDS peak (KB)"]);
    for spec in registry() {
        let d = spec.generate_scaled(opts.scale);
        reset_peak();
        let _ = top_k_lhcds(&d.graph, 3, 5, &IppvConfig::default());
        let ippv_peak = peak_bytes();
        reset_peak();
        let _ = FlowLds::ltds().top_k(&d.graph, 5);
        let ltds_peak = peak_bytes();
        t.row([spec.abbr.to_string(), fmt_kb(ippv_peak), fmt_kb(ltds_peak)]);
    }
    format!(
        "## Figure 15 — peak memory (paper: verification dominates; IPPV ≤ LTDS)\n\n{}",
        t.render()
    )
}

/// Figure 16: runtime vs CP iteration count `T`.
pub fn fig16(opts: &ExpOptions) -> String {
    let mut t = MdTable::new(["dataset", "T", "time (ms)"]);
    for abbr in ["EP", "HA", "CM", "PP", "EN", "GW", "AM"] {
        let d = dataset(abbr, opts.scale);
        for iters in [5usize, 10, 15, 20, 40, 60, 80, 100] {
            let cfg = IppvConfig {
                cp_iterations: iters,
                ..IppvConfig::default()
            };
            let (_, ms) = time_ms(|| top_k_lhcds(&d.graph, 3, 20, &cfg));
            t.row([abbr.to_string(), iters.to_string(), format!("{ms:.1}")]);
        }
    }
    format!(
        "## Figure 16 — runtime vs T (paper: optimum around T = 15–20)\n\n{}",
        t.render()
    )
}

/// Figure 17: polbooks-like L4xPDS case study over the six 4-vertex
/// patterns.
pub fn fig17(_opts: &ExpOptions) -> String {
    let pb = polbooks_like();
    let mut t = MdTable::new(["pattern", "rank", "size", "pattern density", "labels"]);
    for p in Pattern::all_four_vertex() {
        let res = top_k_lhxpds(&pb.graph, p, 2, &IppvConfig::default());
        if res.subgraphs.is_empty() {
            t.row([
                p.to_string(),
                "-".into(),
                "0".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        for (i, s) in res.subgraphs.iter().enumerate() {
            t.row([
                p.to_string(),
                format!("top-{}", i + 1),
                s.vertices.len().to_string(),
                format!("{:.2}", s.density.to_f64()),
                label_mix(&pb, &s.vertices),
            ]);
        }
    }
    format!(
        "## Figure 17 — L4xPDS case study (paper: patterns select different regions/sizes)\n\n{}",
        t.render()
    )
}

/// Serial vs node-parallel kClist enumeration, recorded to
/// `BENCH_kclist.json` so future perf PRs have a committed
/// before/after anchor.
///
/// The workloads are fixed (independent of `--scale`) to keep the
/// recorded baseline comparable across runs: the largest
/// planted-community synthetic plus a dense `G(n, p)` whose 4/5-clique
/// counts dominate enumeration time. Every parallel run is asserted
/// equal to the serial count, and the per-vertex degree vector is
/// asserted byte-identical at 4 threads.
pub fn kclist(opts: &ExpOptions) -> String {
    let workloads: Vec<(&str, CsrGraph, Vec<usize>)> = vec![
        (
            "planted_communities_8000",
            lhcds::data::gen::planted_communities(
                8000,
                4,
                &[(28, 0.9), (22, 0.85), (16, 0.9), (12, 0.95)],
                0xBEEF,
            ),
            vec![3, 4, 5],
        ),
        (
            "gnp_2000_p10",
            lhcds::data::gen::gnp(2000, 0.1, 0xBEEF),
            vec![4, 5],
        ),
    ];
    let dir = std::env::var("LHCDS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    kclist_on(opts, workloads, std::path::Path::new(&dir))
}

/// [`kclist`] with explicit workloads and output directory (unit tests
/// swap in tiny graphs and a temp dir — the full-size sweep only runs
/// under the release-built harness).
fn kclist_on(
    opts: &ExpOptions,
    workloads: Vec<(&str, CsrGraph, Vec<usize>)>,
    out_dir: &std::path::Path,
) -> String {
    let mut threads: Vec<usize> = vec![1, 2, 4];
    if opts.threads > 0 && !threads.contains(&opts.threads) {
        threads.push(opts.threads);
    }

    let mut t = MdTable::new(["graph", "h", "threads", "time (ms)", "|Ψh|", "speedup"]);
    let mut json_rows: Vec<String> = Vec::new();
    for (name, g, hs) in &workloads {
        for &h in hs {
            let mut serial_ms = 0.0f64;
            let mut serial_count = 0u64;
            for &tc in &threads {
                let par = Parallelism::threads(tc);
                let (count, ms) = time_ms(|| par_count_cliques(g, h, &par));
                if tc == 1 {
                    serial_ms = ms;
                    serial_count = count;
                } else {
                    assert_eq!(count, serial_count, "{name} h={h} threads={tc} diverged");
                }
                let speedup = serial_ms / ms.max(1e-9);
                t.row([
                    name.to_string(),
                    h.to_string(),
                    tc.to_string(),
                    format!("{ms:.1}"),
                    count.to_string(),
                    format!("{speedup:.2}x"),
                ]);
                json_rows.push(format!(
                    "    {{\"graph\": \"{name}\", \"n\": {}, \"m\": {}, \"h\": {h}, \
                     \"threads\": {tc}, \"wall_ms\": {ms:.3}, \"cliques\": {count}, \
                     \"speedup_vs_serial\": {speedup:.3}}}",
                    g.n(),
                    g.m(),
                ));
            }
            // byte-identical degree vectors, the acceptance contract
            assert_eq!(
                par_count_per_vertex(g, h, &Parallelism::threads(4)),
                par_count_per_vertex(g, h, &Parallelism::serial()),
                "{name} h={h}: degree vectors must be byte-identical"
            );
        }
    }

    let provenance = BenchProvenance::detect();
    let host = provenance.host_parallelism;
    let json = format!(
        "{{\n  \"experiment\": \"kclist\",\n  {},\n  {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        provenance.json_fields(),
        provenance.speedup_fields(),
        json_rows.join(",\n")
    );
    let path = out_dir.join("BENCH_kclist.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline recorded to `{}`", path.display()),
        Err(e) => format!("could not write `{}`: {e}", path.display()),
    };
    format!(
        "## kClist — serial vs node-parallel enumeration (host parallelism: {host})\n{}\n{}\n{note}\n",
        provenance.speedup_caveat(),
        t.render()
    )
}

/// Pattern enumeration, serial vs the sharded block-collect path: every
/// Figure 8 non-clique enumerator (3-star, 4-path, c3-star, 4-loop,
/// 2-triangle) plus the kClist-backed 4-clique, at 1/2/4 threads (and
/// `--threads`, when extra). Each parallel store is asserted
/// byte-identical to the serial one before its time is recorded — a
/// speedup that changed the answer would be worthless. Rows land in
/// `BENCH_patterns.json` with the standard provenance stamp
/// (`speedup_meaningful` etc.).
pub fn patterns(opts: &ExpOptions) -> String {
    let workloads: Vec<(&str, CsrGraph)> = vec![
        (
            "planted_communities_4000",
            lhcds::data::gen::planted_communities(
                4000,
                3,
                &[(22, 0.9), (16, 0.9), (12, 0.95)],
                0xBEEF,
            ),
        ),
        ("gnp_1200_p04", lhcds::data::gen::gnp(1200, 0.04, 0xBEEF)),
    ];
    let dir = std::env::var("LHCDS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    patterns_on(opts, workloads, std::path::Path::new(&dir))
}

/// [`patterns`] with explicit workloads and output directory (unit
/// tests swap in tiny graphs and a temp dir).
fn patterns_on(
    opts: &ExpOptions,
    workloads: Vec<(&str, CsrGraph)>,
    out_dir: &std::path::Path,
) -> String {
    let mut threads: Vec<usize> = vec![1, 2, 4];
    if opts.threads > 0 && !threads.contains(&opts.threads) {
        threads.push(opts.threads);
    }
    let sweep = [
        Pattern::Star3,
        Pattern::Path4,
        Pattern::TailedTriangle,
        Pattern::Cycle4,
        Pattern::Diamond,
        Pattern::Clique4,
    ];

    let mut t = MdTable::new([
        "graph",
        "pattern",
        "threads",
        "time (ms)",
        "instances",
        "speedup",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for (name, g) in &workloads {
        for p in sweep {
            let mut serial_ms = 0.0f64;
            let mut serial_store = None;
            for &tc in &threads {
                let par = Parallelism::threads(tc);
                let (store, ms) = time_ms(|| enumerate_pattern_with(g, p, &par));
                match &serial_store {
                    None => {
                        serial_ms = ms;
                        serial_store = Some(store.clone());
                    }
                    Some(serial) => {
                        // byte-identity is the acceptance contract
                        assert_eq!(serial.len(), store.len(), "{name} {p} threads={tc}");
                        for i in 0..serial.len() {
                            assert_eq!(
                                serial.members(i),
                                store.members(i),
                                "{name} {p} threads={tc} instance {i} diverged"
                            );
                        }
                    }
                }
                let count = store.len();
                let speedup = serial_ms / ms.max(1e-9);
                t.row([
                    name.to_string(),
                    p.key(),
                    tc.to_string(),
                    format!("{ms:.1}"),
                    count.to_string(),
                    format!("{speedup:.2}x"),
                ]);
                json_rows.push(format!(
                    "    {{\"graph\": \"{name}\", \"n\": {}, \"m\": {}, \"pattern\": \"{}\", \
                     \"threads\": {tc}, \"wall_ms\": {ms:.3}, \"instances\": {count}, \
                     \"speedup_vs_serial\": {speedup:.3}}}",
                    g.n(),
                    g.m(),
                    p.key(),
                ));
            }
        }
    }

    let provenance = BenchProvenance::detect();
    let host = provenance.host_parallelism;
    let json = format!(
        "{{\n  \"experiment\": \"patterns\",\n  {},\n  {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        provenance.json_fields(),
        provenance.speedup_fields(),
        json_rows.join(",\n")
    );
    let path = out_dir.join("BENCH_patterns.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline recorded to `{}`", path.display()),
        Err(e) => format!("could not write `{}`: {e}", path.display()),
    };
    format!(
        "## Patterns — serial vs sharded motif enumeration (host parallelism: {host})\n{}\n{}\n{note}\n",
        provenance.speedup_caveat(),
        t.render()
    )
}

/// Serving throughput of the `lhcds-service` daemon: spawn a server
/// in-process, hammer it from concurrent persistent connections with a
/// mixed query workload (`top_k` across the k range, `density_of`,
/// `membership`), and record QPS plus the server's own
/// histogram-derived p50/p99/p999 latency to `BENCH_serve.json`
/// (standard provenance stamp). Percentiles come from the same
/// [`lhcds::obs::Histogram`] the `stats` and `metrics` ops serve, so
/// the recorded baseline is exactly what operators will see live.
///
/// Queries are index reads — no flow network, no pipeline — so this
/// measures the protocol + thread-pool + LRU path, which is exactly
/// what a perf PR on the service layer needs as its before/after
/// anchor. Note the usual single-CPU caveat: with
/// `recorded_on_single_cpu: true`, client and server threads share one
/// core and the QPS floor is pessimistic.
///
/// A final *overload burst* phase starves the daemon (one worker, one
/// admission slot) under 2× the client count with a fresh connection
/// per request, and records the shed rate plus the p99 of admitted
/// requests — the committed baseline for the shedding policy.
pub fn serve_qps(_opts: &ExpOptions) -> String {
    let dir = std::env::var("LHCDS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let workloads: Vec<(&str, CsrGraph)> = vec![
        ("figure2", lhcds::data::figure2_graph()),
        (
            "planted_communities_2000",
            lhcds::data::gen::planted_communities(
                2000,
                3,
                &[(18, 0.9), (14, 0.9), (10, 0.95)],
                0xFEED,
            ),
        ),
    ];
    serve_qps_on(workloads, 4, 400, std::path::Path::new(&dir))
}

/// [`serve_qps`] with explicit workloads, client count, per-client
/// request count, and output directory (unit tests shrink all three).
fn serve_qps_on(
    workloads: Vec<(&str, CsrGraph)>,
    clients: usize,
    requests_per_client: usize,
    out_dir: &std::path::Path,
) -> String {
    use lhcds::core::index::{DecompositionIndex, IndexConfig};
    use lhcds::service::server::{ServeOptions, ServedIndexes, Server};
    use std::io::{BufRead, BufReader, Write};

    const K_MAX: usize = 8;
    let mut t = MdTable::new([
        "workload",
        "clients",
        "requests",
        "QPS",
        "p50 (µs)",
        "p99 (µs)",
        "p999 (µs)",
        "LRU hit rate",
    ]);
    let mut json_rows: Vec<String> = Vec::new();

    for (name, g) in &workloads {
        let mut served = ServedIndexes {
            name: (*name).into(),
            n: g.n(),
            m: g.m(),
            original_ids: None,
            indexes: std::collections::BTreeMap::new(),
            failed: std::collections::BTreeMap::new(),
        };
        served.insert(DecompositionIndex::build(
            g,
            3,
            &IndexConfig {
                k_max: K_MAX,
                ..IndexConfig::default()
            },
        ));
        let server = Server::bind(
            "127.0.0.1:0",
            served,
            &ServeOptions {
                workers: clients,
                ..ServeOptions::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();

        let n = g.n() as u64;
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        // one persistent connection per client, like a
                        // well-behaved consumer
                        let stream = std::net::TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).ok();
                        let mut writer = stream.try_clone().expect("clone");
                        let mut reader = BufReader::new(stream);
                        let mut line = String::new();
                        for i in 0..requests_per_client {
                            // mixed workload: ~half hot top_k, half
                            // per-vertex point queries
                            let request = match i % 4 {
                                0 | 1 => format!(
                                    "{{\"op\":\"top_k\",\"h\":3,\"k\":{}}}\n",
                                    1 + (i + c) % K_MAX
                                ),
                                2 => format!(
                                    "{{\"op\":\"density_of\",\"h\":3,\"vertex\":{}}}\n",
                                    (i as u64 * 7919 + c as u64) % n
                                ),
                                _ => format!(
                                    "{{\"op\":\"membership\",\"h\":3,\"vertex\":{}}}\n",
                                    (i as u64 * 104729 + c as u64) % n
                                ),
                            };
                            writer.write_all(request.as_bytes()).expect("send");
                            writer.flush().expect("flush");
                            line.clear();
                            reader.read_line(&mut line).expect("receive");
                            assert!(line.contains("\"ok\":true"), "{name}: {line}");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client");
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let (hits, misses) = server.lru_counters();
        // server-side telemetry: every request the clients just sent —
        // and nothing else — is in the always-on latency histogram, so
        // the count doubles as a wiring check
        let total = clients * requests_per_client;
        let stats = server.stats();
        assert_eq!(
            stats.latency.count(),
            total as u64,
            "{name}: histogram must have recorded every request"
        );
        let (p50, p99, p999) = (
            stats.latency.p50(),
            stats.latency.p99(),
            stats.latency.p999(),
        );
        server.shutdown_handle().shutdown();
        server.join();

        let qps = total as f64 / wall_s.max(1e-9);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

        t.row([
            name.to_string(),
            clients.to_string(),
            total.to_string(),
            format!("{qps:.0}"),
            p50.to_string(),
            p99.to_string(),
            p999.to_string(),
            format!("{:.0}%", hit_rate * 100.0),
        ]);
        json_rows.push(format!(
            "    {{\"workload\": \"{name}\", \"n\": {}, \"m\": {}, \"h\": 3, \
             \"k_max\": {K_MAX}, \"clients\": {clients}, \"requests\": {total}, \
             \"qps\": {qps:.1}, \"latency_source\": \"server_histogram\", \
             \"p50_us\": {p50}, \"p99_us\": {p99}, \"p999_us\": {p999}, \
             \"lru_hit_rate\": {hit_rate:.4}}}",
            g.n(),
            g.m(),
        ));
    }

    // Overload burst: a deliberately starved daemon (one worker, one
    // admission slot) hit by 2× the nominal client count, each client
    // opening a fresh connection per request — the worst-case consumer.
    // Records the shed rate and the p99 of the requests that *were*
    // admitted, so shedding-policy changes have a committed baseline.
    // Shedding is load-dependent: on a fast host the rate can be 0.0,
    // which is still a valid recording (the typed-error path is covered
    // separately by the chaos suite).
    let (burst_name, burst_graph) = &workloads[0];
    let mut served = ServedIndexes {
        name: (*burst_name).into(),
        n: burst_graph.n(),
        m: burst_graph.m(),
        original_ids: None,
        indexes: std::collections::BTreeMap::new(),
        failed: std::collections::BTreeMap::new(),
    };
    served.insert(DecompositionIndex::build(
        burst_graph,
        3,
        &IndexConfig {
            k_max: K_MAX,
            ..IndexConfig::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        served,
        &ServeOptions {
            workers: 1,
            max_pending: 1,
            ..ServeOptions::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let burst_clients = clients * 2;
    let per_client = requests_per_client / 2;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst_clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut line = String::new();
                    for i in 0..per_client {
                        let Ok(stream) = std::net::TcpStream::connect(addr) else {
                            continue; // accept backlog overflow counts as shed pressure
                        };
                        stream.set_nodelay(true).ok();
                        let mut writer = stream.try_clone().expect("clone");
                        let request = format!(
                            "{{\"op\":\"top_k\",\"h\":3,\"k\":{}}}\n",
                            1 + (i + c) % K_MAX
                        );
                        if writer.write_all(request.as_bytes()).is_err() {
                            continue;
                        }
                        writer.flush().ok();
                        line.clear();
                        let mut reader = BufReader::new(&stream);
                        let _ = reader.read_line(&mut line);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("burst client");
        }
    });
    let stats = server.stats();
    let admitted = stats.latency.count();
    let shed = stats.sheds.load(std::sync::atomic::Ordering::Relaxed);
    let burst_p99 = stats.latency.p99();
    server.shutdown_handle().shutdown();
    server.join();
    let offered = admitted + shed;
    let shed_rate = shed as f64 / offered.max(1) as f64;
    t.row([
        format!("{burst_name} (2x burst, workers=1)"),
        burst_clients.to_string(),
        offered.to_string(),
        "—".into(),
        "—".into(),
        burst_p99.to_string(),
        "—".into(),
        format!("shed {:.0}%", shed_rate * 100.0),
    ]);
    let burst_json = format!(
        "  \"overload_burst\": {{\"workload\": \"{burst_name}\", \"workers\": 1, \
         \"max_pending\": 1, \"clients\": {burst_clients}, \"offered\": {offered}, \
         \"admitted\": {admitted}, \"shed\": {shed}, \"shed_rate\": {shed_rate:.4}, \
         \"admitted_p99_us\": {burst_p99}}},"
    );

    let provenance = BenchProvenance::detect();
    let json = format!(
        "{{\n  \"experiment\": \"serve_qps\",\n  {},\n{burst_json}\n  \"rows\": [\n{}\n  ]\n}}\n",
        provenance.json_fields(),
        json_rows.join(",\n")
    );
    let path = out_dir.join("BENCH_serve.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline recorded to `{}`", path.display()),
        Err(e) => format!("could not write `{}`: {e}", path.display()),
    };
    format!(
        "## serve_qps — query daemon throughput (host parallelism: {})\n\n{}\n{note}\n",
        provenance.host_parallelism,
        t.render()
    )
}

/// Flow-network reuse tier A/B/C: the decomposition ladder (exact
/// dense decomposition — every marginal-density probe) and a full IPPV
/// run, at all three [`lhcds::core::FlowReuse`] tiers — `scratch` (historical
/// rebuild-per-probe), `warm` (one warm-started network per instance,
/// reset on decreases), and `ggt` (never-reset GGT divide-and-conquer
/// plus the shared fast-verifier network). Records wall time and the
/// flow work counters (networks/arcs built, max-flow invocations,
/// warm/retract/cold solves, GGT recursions) to `BENCH_flow.json` with
/// the standard provenance stamp — the committed before/after anchor
/// for flow-layer perf work.
///
/// Exactness is asserted, not hoped for: all tiers must produce
/// bit-identical decompositions and pipeline outputs — at every point
/// of the threads axis — the reuse tiers must build strictly fewer
/// networks than they run max-flows, and `ggt` must build no more
/// networks than `warm` on every row (the CI smoke contract).
pub fn flowreuse(opts: &ExpOptions) -> String {
    let dir = std::env::var("LHCDS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let workloads: Vec<(&str, CsrGraph, usize)> = vec![
        ("figure2", lhcds::data::figure2_graph(), 3),
        (
            "planted_communities_1200",
            lhcds::data::gen::planted_communities(
                1200,
                3,
                &[(20, 0.9), (16, 0.85), (12, 0.9), (10, 0.95)],
                0xF10,
            ),
            3,
        ),
        ("gnp_200_p20_h4", lhcds::data::gen::gnp(200, 0.2, 0xF10), 4),
    ];
    flowreuse_on(opts, workloads, std::path::Path::new(&dir))
}

/// [`flowreuse`] with explicit workloads and output directory. Public
/// for the integration test (`tests/flowreuse.rs`), which must own its
/// process: the experiment asserts exact process-wide flow-counter
/// relations, so it cannot share a test binary with other flow-running
/// tests.
pub fn flowreuse_on(
    opts: &ExpOptions,
    workloads: Vec<(&str, CsrGraph, usize)>,
    out_dir: &std::path::Path,
) -> String {
    use lhcds::core::density::dense_decomposition_threaded;
    use lhcds::core::{flow_stats, FlowReuse};

    // the threads axis: serial, a 4-way point, and any --threads extra
    let mut thread_axis: Vec<usize> = vec![1, 4];
    if opts.threads > 0 && !thread_axis.contains(&opts.threads) {
        thread_axis.push(opts.threads);
    }

    let mut t = MdTable::new([
        "graph",
        "h",
        "mode",
        "threads",
        "ladder (ms)",
        "pipeline (ms)",
        "max-flows",
        "networks",
        "arcs",
        "warm/retract/cold",
        "speedup",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for (name, g, h) in &workloads {
        let cliques = lhcds::clique::CliqueSet::enumerate(g, *h);
        // the threads=1 baseline everything must byte-match, plus the
        // per-mode serial wall time the speedup column divides by
        let mut baseline: Option<(lhcds::core::density::DenseDecomposition, IppvResult)> = None;
        let mut serial_ms_by_mode: Vec<f64> = Vec::new();
        for &tc in &thread_axis {
            let mut networks_by_mode: Vec<u64> = Vec::new();
            for (mi, mode) in [FlowReuse::Scratch, FlowReuse::Warm, FlowReuse::Ggt]
                .into_iter()
                .enumerate()
            {
                let cfg = IppvConfig {
                    flow_reuse: mode,
                    parallelism: Parallelism::threads(tc),
                    ..IppvConfig::default()
                };
                let before = flow_stats();
                let (decomp, ladder_ms) =
                    time_ms(|| dense_decomposition_threaded(g, &cliques, mode, tc));
                let (res, pipeline_ms) = time_ms(|| {
                    lhcds::core::pipeline::top_k_with_instances(g, &cliques, usize::MAX, &cfg)
                });
                let d = flow_stats().since(&before);

                if mode == FlowReuse::Scratch {
                    assert_eq!(
                        d.networks_built, d.max_flow_invocations,
                        "{name} threads={tc}: scratch mode must rebuild per probe"
                    );
                } else {
                    // the reuse contract, enforced on every run (CI smoke
                    // included): asymptotically fewer networks than ρ-probes
                    assert!(
                        d.max_flow_invocations <= 1 || d.networks_built < d.max_flow_invocations,
                        "{name} threads={tc}: {mode} built {} networks for {} max-flows",
                        d.networks_built,
                        d.max_flow_invocations
                    );
                }
                if mode == FlowReuse::Ggt {
                    assert_eq!(
                        d.infeasible_reset, 0,
                        "{name} threads={tc}: the ggt tier must never reset a flow"
                    );
                }

                // pipeline speedup vs the same mode's threads=1 row —
                // honest only off a single-CPU host (provenance stamp)
                let speedup = if tc == 1 {
                    serial_ms_by_mode.push(pipeline_ms);
                    None
                } else {
                    Some(serial_ms_by_mode[mi] / pipeline_ms.max(1e-9))
                };

                t.row([
                    name.to_string(),
                    h.to_string(),
                    mode.to_string(),
                    tc.to_string(),
                    format!("{ladder_ms:.1}"),
                    format!("{pipeline_ms:.1}"),
                    d.max_flow_invocations.to_string(),
                    d.networks_built.to_string(),
                    d.arcs_built.to_string(),
                    format!("{}/{}/{}", d.warm_solves, d.retract_solves, d.cold_solves()),
                    speedup.map_or("-".into(), |s| format!("{s:.2}x")),
                ]);
                json_rows.push(format!(
                    "    {{\"graph\": \"{name}\", \"n\": {}, \"m\": {}, \"h\": {h}, \
                     \"mode\": \"{mode}\", \"threads\": {tc}, \
                     \"ladder_wall_ms\": {ladder_ms:.3}, \
                     \"pipeline_wall_ms\": {pipeline_ms:.3}, \
                     \"max_flow_invocations\": {}, \"networks_built\": {}, \
                     \"arcs_built\": {}, \"warm_solves\": {}, \"retract_solves\": {}, \
                     \"cold_solves\": {}, \"ggt_recursions\": {}, \
                     \"warm_hit_rate\": {:.4}{}}}",
                    g.n(),
                    g.m(),
                    d.max_flow_invocations,
                    d.networks_built,
                    d.arcs_built,
                    d.warm_solves,
                    d.retract_solves,
                    d.cold_solves(),
                    d.ggt_recursions,
                    d.warm_hit_rate(),
                    speedup.map_or(String::new(), |s| format!(
                        ", \"pipeline_speedup_vs_serial\": {s:.3}"
                    )),
                ));

                // bit-identity across every tier AND every thread
                // count: levels, compact numbers, pipeline outputs
                match &baseline {
                    None => baseline = Some((decomp, res)),
                    Some(base) => {
                        assert_eq!(
                            base.0.levels, decomp.levels,
                            "{name}/{mode}/t{tc}: ladder diverged"
                        );
                        assert_eq!(base.0.phi, decomp.phi, "{name}/{mode}/t{tc}: φ diverged");
                        assert_eq!(
                            base.1.subgraphs, res.subgraphs,
                            "{name}/{mode}/t{tc}: pipeline diverged"
                        );
                    }
                }
                networks_by_mode.push(d.networks_built);
            }
            // the tentpole contract: GGT never builds more networks
            // than the warm tier, on every row of the threads axis
            assert!(
                networks_by_mode[2] <= networks_by_mode[1],
                "{name} threads={tc}: ggt built {} networks vs warm's {}",
                networks_by_mode[2],
                networks_by_mode[1]
            );
        }
    }

    let provenance = BenchProvenance::detect();
    let json = format!(
        "{{\n  \"experiment\": \"flowreuse\",\n  {},\n  {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        provenance.json_fields(),
        provenance.speedup_fields(),
        json_rows.join(",\n")
    );
    let path = out_dir.join("BENCH_flow.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline recorded to `{}`", path.display()),
        Err(e) => format!("could not write `{}`: {e}", path.display()),
    };
    format!(
        "## flowreuse — parametric network reuse vs rebuild-per-probe (host parallelism: {})\n{}\n{}\n{note}\n",
        provenance.host_parallelism,
        provenance.speedup_caveat(),
        t.render()
    )
}

/// Observability overhead: the full IPPV pipeline with `lhcds_obs`
/// tracing off vs on, recorded to `BENCH_obs.json`.
///
/// Three claims, each asserted rather than eyeballed:
///
/// 1. **Byte-identity** — tracing must never change answers, so the
///    traced run's subgraphs are asserted equal to the untraced run's.
/// 2. **Disabled cost in the noise** — a disabled `span()` is one
///    relaxed atomic load plus an `Instant::now`; a microbenchmark
///    measures its per-call cost, and (span count in a real trace) ×
///    (that cost) is asserted under 1% of the untraced pipeline wall.
///    This estimate is deliberately used instead of differencing two
///    wall-clock medians, which on a noisy CI host would measure the
///    scheduler, not the instrumentation.
/// 3. **Enabled cost bounded** — the traced median is reported next to
///    the untraced one so regressions in the *enabled* path (e.g. a
///    lock on span creation) show up in the committed baseline.
/// 4. **Disarmed faults pinned** — the fault-injection registry shares
///    the same always-in contract as spans (one relaxed atomic load
///    when disarmed); its per-check cost is measured and held to the
///    same < 1%-of-wall bound, deliberately over-counting one check
///    per span site.
pub fn obs(_opts: &ExpOptions) -> String {
    let dir = std::env::var("LHCDS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let workloads: Vec<(&str, CsrGraph)> = vec![(
        "planted_communities_2000",
        lhcds::data::gen::planted_communities(2000, 3, &[(18, 0.9), (14, 0.9), (10, 0.95)], 0x0B5),
    )];
    obs_on(workloads, 3, std::path::Path::new(&dir))
}

/// [`obs`] with explicit workloads, repetition count, and output
/// directory (unit tests shrink all three).
fn obs_on(workloads: Vec<(&str, CsrGraph)>, reps: usize, out_dir: &std::path::Path) -> String {
    use lhcds::obs;

    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        xs[xs.len() / 2]
    };

    // per-call cost of a *disabled* span: the no-op contract the rest
    // of the codebase relies on to leave instrumentation always-in
    obs::set_tracing(false);
    let iters = 1_000_000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        let _guard = obs::span("disabled-span-microbench");
    }
    let disabled_span_ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);

    // per-call cost of a *disarmed* fault-injection check: like the
    // disabled span, the registry's no-op contract is one relaxed
    // atomic load, and production request paths carry a handful of
    // these checks permanently
    obs::fault::disarm();
    let t0 = std::time::Instant::now();
    let mut fired_sum = 0u32;
    for _ in 0..iters {
        // black_box keeps the optimizer from hoisting the relaxed
        // load out of the loop and reporting a vacuous 0 ns
        fired_sum += u32::from(obs::fault::should_fire(std::hint::black_box(
            obs::fault::FaultPoint::SocketRead,
        )));
    }
    let disabled_fault_ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);
    assert_eq!(fired_sum, 0, "disarmed registry must never fire");

    let mut t = MdTable::new([
        "workload",
        "reps",
        "off (ms)",
        "on (ms)",
        "spans",
        "off-overhead est.",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for (name, g) in &workloads {
        let cfg = IppvConfig::default();
        let mut off_ms = Vec::with_capacity(reps);
        let mut on_ms = Vec::with_capacity(reps);
        let mut span_count = 0usize;
        for _ in 0..reps {
            obs::set_tracing(false);
            let _ = obs::take_trace();
            let (res_off, ms) = time_ms(|| top_k_lhcds(g, 3, 10, &cfg));
            off_ms.push(ms);

            obs::set_tracing(true);
            let (res_on, ms) = time_ms(|| top_k_lhcds(g, 3, 10, &cfg));
            on_ms.push(ms);
            obs::set_tracing(false);
            let trace = obs::take_trace().expect("traced run must leave a trace");
            // every span renders exactly one "name" key in the JSON
            // export — a cheap census that needs no tree-walking API
            span_count = trace.to_json().matches("\"name\":").count();
            assert!(span_count > 0, "{name}: traced pipeline recorded no spans");

            assert_eq!(
                res_off.subgraphs, res_on.subgraphs,
                "{name}: tracing changed the answer"
            );
        }
        let (off, on) = (median(off_ms), median(on_ms));
        // what the disabled instrumentation costs an untraced run:
        // every span site still executes its guard
        let overhead = (span_count as f64 * disabled_span_ns) / (off * 1e6).max(1.0);
        assert!(
            overhead < 0.01,
            "{name}: disabled tracing estimated at {:.3}% of wall (spans={span_count}, \
             {disabled_span_ns:.1} ns/span, off wall {off:.1} ms)",
            overhead * 100.0
        );
        // same pin for the disarmed fault registry, deliberately
        // over-counted: even if *every* span site also carried a fault
        // check (real request paths have ~4), the disarmed cost must
        // stay under 1% of the untraced wall
        let fault_overhead = (span_count as f64 * disabled_fault_ns) / (off * 1e6).max(1.0);
        assert!(
            fault_overhead < 0.01,
            "{name}: disarmed fault checks estimated at {:.3}% of wall \
             ({disabled_fault_ns:.1} ns/check, off wall {off:.1} ms)",
            fault_overhead * 100.0
        );

        t.row([
            name.to_string(),
            reps.to_string(),
            format!("{off:.1}"),
            format!("{on:.1}"),
            span_count.to_string(),
            format!("{:.4}%", overhead * 100.0),
        ]);
        json_rows.push(format!(
            "    {{\"workload\": \"{name}\", \"n\": {}, \"m\": {}, \"h\": 3, \"k\": 10, \
             \"reps\": {reps}, \"wall_off_ms\": {off:.3}, \"wall_on_ms\": {on:.3}, \
             \"trace_spans\": {span_count}, \"disabled_span_ns\": {disabled_span_ns:.2}, \
             \"estimated_off_overhead\": {overhead:.6}, \
             \"disabled_fault_ns\": {disabled_fault_ns:.2}, \
             \"estimated_fault_off_overhead\": {fault_overhead:.6}, \
             \"outputs_identical\": true}}",
            g.n(),
            g.m(),
        ));
    }

    let provenance = BenchProvenance::detect();
    let json = format!(
        "{{\n  \"experiment\": \"obs\",\n  {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        provenance.json_fields(),
        json_rows.join(",\n")
    );
    let path = out_dir.join("BENCH_obs.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline recorded to `{}`", path.display()),
        Err(e) => format!("could not write `{}`: {e}", path.display()),
    };
    format!(
        "## obs — tracing overhead, off vs on (host parallelism: {})\n\n\
         disabled span: {disabled_span_ns:.1} ns/call · disarmed fault check: \
         {disabled_fault_ns:.1} ns/call\n\n{}\n{note}\n",
        provenance.host_parallelism,
        t.render()
    )
}

/// Ablation: fast-verifier features on/off (DESIGN.md §4).
pub fn ablation(opts: &ExpOptions) -> String {
    let mut t = MdTable::new([
        "dataset",
        "config",
        "time (ms)",
        "flow verifications",
        "shortcut accepts",
    ]);
    for abbr in ["HA", "CM", "EP"] {
        let d = dataset(abbr, opts.scale);
        // `exact = true` configurations must reproduce the reference
        // output bit-for-bit. The boundary-clique variant (paper Figure
        // 7 capacities over our larger T) inflates straddling cliques
        // and may *under-report* — it is measured but not asserted (see
        // DESIGN.md).
        let configs: [(&str, bool, IppvConfig); 4] = [
            ("fast", true, IppvConfig::default()),
            (
                "fast+boundary (approx)",
                false,
                IppvConfig {
                    boundary_cliques: true,
                    ..IppvConfig::default()
                },
            ),
            (
                "basic",
                true,
                IppvConfig {
                    fast_verify: false,
                    ..IppvConfig::default()
                },
            ),
            (
                "no-cp (flow only)",
                true,
                IppvConfig {
                    use_cp: false,
                    use_prune: false,
                    fast_verify: false,
                    ..IppvConfig::default()
                },
            ),
        ];
        let reference = top_k_lhcds(&d.graph, 3, 10, &IppvConfig::default());
        for (name, exact, cfg) in configs {
            let (res, ms) = time_ms(|| top_k_lhcds(&d.graph, 3, 10, &cfg));
            if exact {
                assert_eq!(
                    res.subgraphs, reference.subgraphs,
                    "{abbr}/{name}: results must not depend on configuration"
                );
            }
            t.row([
                abbr.to_string(),
                name.to_string(),
                format!("{ms:.1}"),
                res.stats.flow_verifications.to_string(),
                res.stats.shortcut_accepts.to_string(),
            ]);
        }
    }
    format!(
        "## Ablation — verifier configurations (all exact; cost differs)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: ExpOptions = ExpOptions {
        scale: 0.011,
        threads: 0,
    };

    #[test]
    fn experiment_registry_is_complete() {
        for name in all_experiments() {
            // dispatch must know every id (we don't run them all here —
            // that's the harness's job)
            assert!([
                "table2",
                "table2real",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "table3",
                "fig13",
                "table4",
                "fig14",
                "table5",
                "fig15",
                "fig16",
                "fig17",
                "ablation",
                "kclist",
                "patterns",
                "serve_qps",
                "flowreuse",
                "obs"
            ]
            .contains(name));
        }
        assert!(run_experiment("nope", &TINY).is_none());
    }

    #[test]
    fn serve_qps_records_a_json_baseline() {
        let dir = std::env::temp_dir().join("lhcds_bench_serve_qps_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let tiny = vec![("figure2_tiny", lhcds::data::figure2_graph())];
        let out = serve_qps_on(tiny, 2, 12, &dir);
        assert!(out.contains("baseline recorded"), "{out}");
        assert!(out.contains("| figure2_tiny "), "{out}");
        let json = std::fs::read_to_string(dir.join("BENCH_serve.json")).unwrap();
        for key in [
            "\"experiment\": \"serve_qps\"",
            "\"host_parallelism\"",
            "\"recorded_on_single_cpu\"",
            "\"workload\": \"figure2_tiny\"",
            "\"clients\": 2",
            "\"requests\": 24",
            "\"qps\"",
            "\"latency_source\": \"server_histogram\"",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"p999_us\"",
            "\"lru_hit_rate\"",
            "\"overload_burst\"",
            "\"max_pending\": 1",
            "\"shed_rate\"",
            "\"admitted_p99_us\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // histogram-derived percentiles are integer microseconds —
        // there must be no float in the latency fields
        assert!(!json.contains("\"p50_us\": 0."), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_records_a_json_baseline_and_bounds_overhead() {
        let dir = std::env::temp_dir().join("lhcds_bench_obs_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // big enough that the pipeline wall dwarfs span-guard cost even
        // in a debug build (the <1% assertion runs inside obs_on)
        let tiny = vec![(
            "planted_tiny",
            lhcds::data::gen::planted_communities(200, 3, &[(14, 0.9), (10, 0.9)], 0x0B5),
        )];
        let out = obs_on(tiny, 2, &dir);
        assert!(out.contains("baseline recorded"), "{out}");
        assert!(out.contains("disabled span:"), "{out}");
        let json = std::fs::read_to_string(dir.join("BENCH_obs.json")).unwrap();
        for key in [
            "\"experiment\": \"obs\"",
            "\"host_parallelism\"",
            "\"recorded_on_single_cpu\"",
            "\"workload\": \"planted_tiny\"",
            "\"reps\": 2",
            "\"wall_off_ms\"",
            "\"wall_on_ms\"",
            "\"trace_spans\"",
            "\"disabled_span_ns\"",
            "\"estimated_off_overhead\"",
            "\"disabled_fault_ns\"",
            "\"estimated_fault_off_overhead\"",
            "\"outputs_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kclist_records_a_json_baseline() {
        let dir = std::env::temp_dir().join("lhcds_bench_kclist_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let tiny = vec![(
            "planted_tiny",
            lhcds::data::gen::planted_communities(60, 2, &[(8, 0.9)], 0xBEEF),
            vec![3usize],
        )];
        // 7 appears in neither the default sweep (1/2/4) nor the h
        // list, so it can only come from the --threads plumbing
        let out = kclist_on(
            &ExpOptions {
                threads: 7,
                ..ExpOptions::default()
            },
            tiny,
            &dir,
        );
        assert!(out.contains("baseline recorded"));
        assert!(out.contains("| 7 "), "extra --threads row missing");
        let json = std::fs::read_to_string(dir.join("BENCH_kclist.json")).unwrap();
        assert!(json.contains("\"threads\": 7"), "extra thread row: {json}");
        for key in [
            "\"experiment\": \"kclist\"",
            "\"host_parallelism\"",
            "\"recorded_on_single_cpu\"",
            "\"speedup_meaningful\"",
            "\"graph\"",
            "\"h\"",
            "\"threads\": 1",
            "\"wall_ms\"",
            "\"cliques\"",
            "\"speedup_vs_serial\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn patterns_records_a_json_baseline() {
        let dir = std::env::temp_dir().join("lhcds_bench_patterns_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let tiny = vec![("figure2_tiny", lhcds::data::figure2_graph())];
        // 7 appears nowhere in the default 1/2/4 sweep, so it can only
        // come from the --threads plumbing
        let out = patterns_on(
            &ExpOptions {
                threads: 7,
                ..ExpOptions::default()
            },
            tiny,
            &dir,
        );
        assert!(out.contains("baseline recorded"), "{out}");
        assert!(out.contains("| 7 "), "extra --threads row missing");
        let json = std::fs::read_to_string(dir.join("BENCH_patterns.json")).unwrap();
        for key in [
            "\"experiment\": \"patterns\"",
            "\"host_parallelism\"",
            "\"recorded_on_single_cpu\"",
            "\"speedup_meaningful\"",
            "\"pattern\": \"4-loop\"",
            "\"pattern\": \"2-triangle\"",
            "\"pattern\": \"clique.h4\"",
            "\"threads\": 1",
            "\"threads\": 7",
            "\"wall_ms\"",
            "\"instances\"",
            "\"speedup_vs_serial\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn fixture() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../data/fixtures/figure2.txt")
    }

    #[test]
    fn table2real_skips_gracefully_without_files() {
        let dir = std::env::temp_dir().join("lhcds_bench_table2real_skip");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        // no manifest at all
        let out = table2real_on(&TINY, &dir.join("none.toml"), &dir);
        assert!(out.contains("skipped: no manifest"));
        assert!(!dir.join("BENCH_table2.json").exists(), "hermetic skip");

        // manifest present, dataset files absent
        let manifest = dir.join("datasets.toml");
        std::fs::write(&manifest, "[gone]\npath = \"gone.txt\"\n").unwrap();
        let out = table2real_on(&TINY, &manifest, &dir);
        assert!(out.contains("none are"), "{out}");
        assert!(!dir.join("BENCH_table2.json").exists(), "hermetic skip");

        // unparseable manifest also skips rather than panics
        std::fs::write(&manifest, "[broken\n").unwrap();
        let out = table2real_on(&TINY, &manifest, &dir);
        assert!(out.contains("skipped:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain-name"), "plain-name");
        assert_eq!(json_escape("we\"ird\\no"), "we\\\"ird\\\\no");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn table2real_escapes_dataset_names_in_json() {
        let dir = std::env::temp_dir().join("lhcds_bench_table2real_escape");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("g.txt"), "0 1\n1 2\n2 0\n").unwrap();
        let manifest = dir.join("datasets.toml");
        std::fs::write(&manifest, "[we\"ird]\npath = \"g.txt\"\n").unwrap();
        let out = table2real_on(&TINY, &manifest, &dir);
        assert!(out.contains("recorded"), "{out}");
        let json = std::fs::read_to_string(dir.join("BENCH_table2.json")).unwrap();
        assert!(json.contains("\"dataset\": \"we\\\"ird\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table2real_records_present_datasets() {
        let dir = std::env::temp_dir().join("lhcds_bench_table2real_run");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::copy(fixture(), dir.join("figure2.txt")).unwrap();
        let manifest = dir.join("datasets.toml");
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 20\nedges = 39\n\
             [absent]\npath = \"absent.txt\"\n",
        )
        .unwrap();

        let out = table2real_on(&TINY, &manifest, &dir);
        assert!(out.contains("| figure2 "), "{out}");
        assert!(out.contains("not downloaded (skipped): absent"), "{out}");
        let json = std::fs::read_to_string(dir.join("BENCH_table2.json")).unwrap();
        for key in [
            "\"experiment\": \"table2real\"",
            "\"host_parallelism\"",
            "\"recorded_on_single_cpu\"",
            "\"dataset\": \"figure2\"",
            "\"n\": 20",
            "\"m\": 39",
            "\"psi3\"",
            "\"psi5\"",
            "\"load_ms\"",
            "\"from_cache\": false",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // second run goes through the cache (and exercises the parallel
        // counting path, which is byte-identical to serial)
        let out = table2real_on(&ExpOptions { threads: 2, ..TINY }, &manifest, &dir);
        assert!(out.contains("cache"), "{out}");
        let json = std::fs::read_to_string(dir.join("BENCH_table2.json")).unwrap();
        assert!(json.contains("\"from_cache\": true"), "{json}");

        // when every present dataset fails, the recorded baseline must
        // NOT be clobbered with an empty rows array
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 9999\n",
        )
        .unwrap();
        let out = table2real_on(&TINY, &manifest, &dir);
        assert!(out.contains("FAILED"), "{out}");
        assert!(out.contains("left untouched"), "{out}");
        let unchanged = std::fs::read_to_string(dir.join("BENCH_table2.json")).unwrap();
        assert_eq!(unchanged, json, "good baseline must survive a failed run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig13_and_fig17_run_on_builtin_polbooks() {
        let out = fig13(&TINY);
        assert!(out.contains("top-1"));
        let out = fig17(&TINY);
        assert!(out.contains("4-clique"));
    }

    #[test]
    fn table2_lists_all_datasets() {
        let out = table2(&TINY);
        for abbr in ["HA", "GQ", "WT"] {
            assert!(out.contains(abbr), "missing {abbr}");
        }
    }

    #[test]
    fn ablation_runs_and_agrees() {
        let out = ablation(&TINY);
        assert!(out.contains("fast+boundary"));
    }
}
