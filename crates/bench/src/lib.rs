//! # lhcds-bench
//!
//! Experiment harness reproducing every table and figure of the LhCDS
//! paper's evaluation (§6). See `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.
//!
//! * [`experiments`] — one runner per table/figure; each prints a
//!   markdown table comparable to the paper's.
//! * [`measure`] — wall-clock helpers and a counting global allocator
//!   used by the memory experiment (Figure 15).
//!
//! The `harness` binary drives the runners:
//! `cargo run --release -p lhcds-bench --bin harness -- all`.
//! Three experiments record committed `BENCH_*.json` baselines, each
//! stamped with the recording host's [`measure::BenchProvenance`]:
//! `kclist` (serial vs node-parallel enumeration, `BENCH_kclist.json`),
//! `table2real` (statistics of locally-present real SNAP graphs,
//! `BENCH_table2.json`; skips gracefully when none are downloaded), and
//! `serve_qps` (query-daemon throughput/latency, `BENCH_serve.json`).
//! The Criterion benches under `benches/` cover the same experiments at
//! reduced scale for `cargo bench`.
//!
//! This crate is a top-layer consumer: everything reaches it through
//! the `lhcds` facade, keeping the workspace DAG honest.
//!
//! # Example
//!
//! ```
//! use lhcds_bench::experiments::{run_experiment, ExpOptions};
//!
//! // Run the polbooks case study (Figure 13) at default options and
//! // check the harness produced a markdown section.
//! let section = run_experiment("fig13", &ExpOptions::default()).unwrap();
//! assert!(section.contains("## Figure 13"));
//! assert!(run_experiment("no-such-experiment", &ExpOptions::default()).is_none());
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
