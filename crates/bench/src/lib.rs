//! # lhcds-bench
//!
//! Experiment harness reproducing every table and figure of the LhCDS
//! paper's evaluation (§6). See `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.
//!
//! * [`experiments`] — one runner per table/figure; each prints a
//!   markdown table comparable to the paper's.
//! * [`measure`] — wall-clock helpers and a counting global allocator
//!   used by the memory experiment (Figure 15).
//!
//! The `harness` binary drives the runners:
//! `cargo run --release -p lhcds-bench --bin harness -- all`.
//! The Criterion benches under `benches/` cover the same experiments at
//! reduced scale for `cargo bench`.

pub mod experiments;
pub mod measure;
