//! # lhcds-bench
//!
//! Experiment harness reproducing every table and figure of the LhCDS
//! paper's evaluation (§6). See `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.
//!
//! * [`experiments`] — one runner per table/figure; each prints a
//!   markdown table comparable to the paper's.
//! * [`measure`] — wall-clock helpers and a counting global allocator
//!   used by the memory experiment (Figure 15).
//!
//! The `harness` binary drives the runners:
//! `cargo run --release -p lhcds-bench --bin harness -- all`.
//! The `kclist` experiment additionally records its serial-vs-parallel
//! enumeration rows to `BENCH_kclist.json` (see `--threads`), the
//! committed baseline anchor for perf PRs.
//! The Criterion benches under `benches/` cover the same experiments at
//! reduced scale for `cargo bench`.

pub mod experiments;
pub mod measure;
