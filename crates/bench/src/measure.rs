//! Measurement utilities: wall-clock timing, a counting global
//! allocator (Figure 15's memory experiment), and a markdown table
//! builder for harness output.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A [`System`]-backed allocator that tracks current and peak live
/// bytes. Install it in a binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// and read peaks through [`reset_peak`] / [`peak_bytes`].
pub struct CountingAllocator;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Resets the peak to the current live size (call before a measured
/// region).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Currently live bytes.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Host provenance stamped into every `BENCH_*.json` the harness
/// records.
///
/// Wall-clock numbers only mean what the recording host lets them mean:
/// a speedup column recorded on a single-CPU container is ~1.0x by
/// construction, whatever the code does. Stamping
/// `recorded_on_single_cpu` makes that caveat machine-readable, so a
/// later perf PR comparing against a committed baseline can refuse to
/// read a speedup column that never had a chance.
#[derive(Debug, Clone, Copy)]
pub struct BenchProvenance {
    /// `std::thread::available_parallelism()` of the recording host.
    pub host_parallelism: usize,
    /// True when the host had exactly one CPU — parallel speedup
    /// columns in the same file are then meaningless.
    pub recorded_on_single_cpu: bool,
}

impl BenchProvenance {
    /// Probes the current host.
    pub fn detect() -> Self {
        let host = std::thread::available_parallelism().map_or(1, |p| p.get());
        BenchProvenance {
            host_parallelism: host,
            recorded_on_single_cpu: host == 1,
        }
    }

    /// The provenance fields as a JSON fragment (no surrounding braces),
    /// ready to splice into a `BENCH_*.json` header.
    pub fn json_fields(&self) -> String {
        format!(
            "\"host_parallelism\": {}, \"recorded_on_single_cpu\": {}",
            self.host_parallelism, self.recorded_on_single_cpu
        )
    }

    /// The speedup honesty stamp for experiments whose rows carry
    /// speedup columns: `false` on a single-CPU recording host, where
    /// every wall-clock ratio is ~1.0x by construction and must not be
    /// read as a real parallel gain.
    pub fn speedup_fields(&self) -> String {
        format!("\"speedup_meaningful\": {}", !self.recorded_on_single_cpu)
    }

    /// The matching human-readable caveat for the markdown report;
    /// empty on genuinely multi-core hosts.
    pub fn speedup_caveat(&self) -> &'static str {
        if self.recorded_on_single_cpu {
            "\n**caveat:** recorded with `host_parallelism == 1` — the speedup \
             columns in this section cannot show real parallel gains.\n"
        } else {
            ""
        }
    }
}

/// Times a closure, returning its result and elapsed milliseconds.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Formats a byte count like the paper's Figure 15 axis (KB).
pub fn fmt_kb(bytes: usize) -> String {
    format!("{:.0}", bytes as f64 / 1024.0)
}

/// A simple markdown table accumulator.
#[derive(Debug, Clone)]
pub struct MdTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MdTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        MdTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = MdTable::new(["dataset", "time (s)"]);
        t.row(["HA", "7.50"]).row(["CA-GrQc", "0.38"]);
        let md = t.render();
        assert!(md.contains("| dataset "));
        assert!(md.contains("| HA "));
        assert!(md.lines().count() == 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        MdTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn time_ms_measures_something() {
        let (v, ms) = time_ms(|| (0..10000).sum::<u64>());
        assert_eq!(v, 49995000);
        assert!(ms >= 0.0);
    }

    #[test]
    fn fmt_kb_rounds() {
        assert_eq!(fmt_kb(2048), "2");
        assert_eq!(fmt_kb(0), "0");
    }

    #[test]
    fn provenance_fields_are_well_formed() {
        let p = BenchProvenance::detect();
        assert!(p.host_parallelism >= 1);
        assert_eq!(p.recorded_on_single_cpu, p.host_parallelism == 1);
        let json = p.json_fields();
        assert!(json.contains("\"host_parallelism\": "));
        assert!(
            json.contains("\"recorded_on_single_cpu\": true")
                || json.contains("\"recorded_on_single_cpu\": false")
        );
        // the honesty stamp is the exact negation of the single-CPU flag
        let speedup = p.speedup_fields();
        assert_eq!(
            speedup.contains("\"speedup_meaningful\": false"),
            p.recorded_on_single_cpu
        );
        assert_eq!(p.speedup_caveat().is_empty(), !p.recorded_on_single_cpu);
    }

    #[test]
    fn allocator_counters_move() {
        // the test binary does not install the allocator, but the
        // counters must still be safe to poke
        reset_peak();
        let _ = peak_bytes();
        let _ = current_bytes();
    }
}
