//! The `flowreuse` experiment end-to-end on tiny workloads.
//!
//! Lives in its own integration-test binary (not the lib's unit tests)
//! because the experiment asserts exact process-wide flow-counter
//! relations — scratch mode must build exactly one network per
//! max-flow — which only hold when no sibling test runs flow work in
//! the same process.

use lhcds_bench::experiments::{flowreuse_on, ExpOptions};

#[test]
fn flowreuse_records_a_json_baseline_and_enforces_identity() {
    let dir = std::env::temp_dir().join("lhcds_bench_flowreuse_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let tiny = vec![
        ("figure2_tiny", lhcds::data::figure2_graph(), 3usize),
        ("gnp_tiny_h4", lhcds::data::gen::gnp(24, 0.4, 7), 4usize),
    ];
    // 3 appears in neither the default threads axis (1/4) nor either h,
    // so its rows can only come from the --threads plumbing
    let out = flowreuse_on(
        &ExpOptions {
            threads: 3,
            ..ExpOptions::default()
        },
        tiny,
        &dir,
    );
    assert!(out.contains("baseline recorded"), "{out}");
    assert!(out.contains("| figure2_tiny "), "{out}");
    assert!(out.contains("| scratch "), "{out}");
    assert!(out.contains("| warm "), "{out}");
    assert!(out.contains("| ggt "), "{out}");
    let json = std::fs::read_to_string(dir.join("BENCH_flow.json")).unwrap();
    for key in [
        "\"experiment\": \"flowreuse\"",
        "\"host_parallelism\"",
        "\"recorded_on_single_cpu\"",
        "\"speedup_meaningful\"",
        "\"graph\": \"figure2_tiny\"",
        "\"mode\": \"scratch\"",
        "\"mode\": \"warm\"",
        "\"mode\": \"ggt\"",
        "\"h\": 4",
        "\"threads\": 1",
        "\"threads\": 4",
        "\"threads\": 3",
        "\"ladder_wall_ms\"",
        "\"pipeline_wall_ms\"",
        "\"pipeline_speedup_vs_serial\"",
        "\"max_flow_invocations\"",
        "\"networks_built\"",
        "\"arcs_built\"",
        "\"warm_solves\"",
        "\"retract_solves\"",
        "\"cold_solves\"",
        "\"ggt_recursions\"",
        "\"warm_hit_rate\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // the honesty stamp: speedup columns recorded on a 1-CPU host are
    // machine-readably flagged as not meaningful
    let single = json.contains("\"recorded_on_single_cpu\": true");
    assert_eq!(
        json.contains("\"speedup_meaningful\": false"),
        single,
        "speedup_meaningful must negate recorded_on_single_cpu: {json}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
