//! The `flowreuse` experiment end-to-end on tiny workloads.
//!
//! Lives in its own integration-test binary (not the lib's unit tests)
//! because the experiment asserts exact process-wide flow-counter
//! relations — scratch mode must build exactly one network per
//! max-flow — which only hold when no sibling test runs flow work in
//! the same process.

use lhcds_bench::experiments::flowreuse_on;

#[test]
fn flowreuse_records_a_json_baseline_and_enforces_identity() {
    let dir = std::env::temp_dir().join("lhcds_bench_flowreuse_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let tiny = vec![
        ("figure2_tiny", lhcds::data::figure2_graph(), 3usize),
        ("gnp_tiny_h4", lhcds::data::gen::gnp(24, 0.4, 7), 4usize),
    ];
    let out = flowreuse_on(tiny, &dir);
    assert!(out.contains("baseline recorded"), "{out}");
    assert!(out.contains("| figure2_tiny "), "{out}");
    assert!(out.contains("| scratch "), "{out}");
    assert!(out.contains("| warm "), "{out}");
    assert!(out.contains("| ggt "), "{out}");
    let json = std::fs::read_to_string(dir.join("BENCH_flow.json")).unwrap();
    for key in [
        "\"experiment\": \"flowreuse\"",
        "\"host_parallelism\"",
        "\"recorded_on_single_cpu\"",
        "\"graph\": \"figure2_tiny\"",
        "\"mode\": \"scratch\"",
        "\"mode\": \"warm\"",
        "\"mode\": \"ggt\"",
        "\"h\": 4",
        "\"ladder_wall_ms\"",
        "\"pipeline_wall_ms\"",
        "\"max_flow_invocations\"",
        "\"networks_built\"",
        "\"arcs_built\"",
        "\"warm_solves\"",
        "\"retract_solves\"",
        "\"cold_solves\"",
        "\"ggt_recursions\"",
        "\"warm_hit_rate\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
