//! Tiny dependency-free argument parser: `command --key value --flag`.

use std::collections::BTreeMap;

use lhcds::clique::Parallelism;

/// Parsed command line: one positional command plus `--key value` pairs
/// and bare `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    /// The leading positional command (empty if none).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    consumed: Vec<String>,
}

impl Args {
    /// Parses `argv` (program name already stripped).
    pub fn parse(argv: Vec<String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.into_iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                args.command = it.next().expect("peeked");
            }
        }
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{tok}'"));
            };
            if key.is_empty() {
                return Err("empty option name '--'".into());
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked");
                    if args.options.insert(key.to_string(), v).is_some() {
                        return Err(format!("duplicate option --{key}"));
                    }
                }
                _ => args.flags.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// Takes a required `--key value` option.
    pub fn required(&mut self, key: &str) -> Result<String, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Takes an optional `--key value` option.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.consumed.push(key.to_string());
        self.options.remove(key)
    }

    /// Takes an optional option parsed into `T`.
    pub fn get_parsed<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Takes the shared `--threads N` option and builds the clique
    /// enumeration thread policy: absent = serial, `0` = auto-detect
    /// (with the tiny-graph serial fallback), `N ≥ 1` = exactly `N`
    /// worker threads. Results never depend on this setting — the
    /// parallel enumerator is byte-equivalent to the serial one.
    pub fn parallelism(&mut self) -> Result<Parallelism, String> {
        Ok(match self.get_parsed::<usize>("threads")? {
            None => Parallelism::serial(),
            Some(0) => Parallelism::auto(),
            Some(n) => Parallelism::threads(n),
        })
    }

    /// Whether a bare `--flag` was given (consumes it).
    pub fn flag(&mut self, name: &str) -> bool {
        if let Some(pos) = self.flags.iter().position(|f| f == name) {
            self.flags.remove(pos);
            true
        } else {
            false
        }
    }

    /// Errors on any unrecognized leftovers.
    pub fn finish(&mut self) -> Result<(), String> {
        if let Some((key, _)) = self.options.iter().next() {
            return Err(format!("unrecognized option --{key}"));
        }
        if let Some(flag) = self.flags.first() {
            return Err(format!("unrecognized flag --{flag}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let mut a = Args::parse(sv(&["topk", "--graph", "g.txt", "--k", "5", "--basic"])).unwrap();
        assert_eq!(a.command, "topk");
        assert_eq!(a.required("graph").unwrap(), "g.txt");
        assert_eq!(a.get_parsed::<usize>("k").unwrap(), Some(5));
        assert!(a.flag("basic"));
        assert!(!a.flag("quiet"));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_required_option_errors() {
        let mut a = Args::parse(sv(&["topk"])).unwrap();
        assert!(a.required("graph").is_err());
    }

    #[test]
    fn rejects_leftovers() {
        let mut a = Args::parse(sv(&["stats", "--bogus", "1"])).unwrap();
        assert!(a.finish().is_err());
        let mut a = Args::parse(sv(&["stats", "--mystery-flag"])).unwrap();
        assert!(a.finish().is_err());
    }

    #[test]
    fn rejects_duplicates_and_positionals() {
        assert!(Args::parse(sv(&["x", "--k", "1", "--k", "2"])).is_err());
        assert!(Args::parse(sv(&["x", "--k", "1", "stray"])).is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut a = Args::parse(sv(&["topk", "--k", "abc"])).unwrap();
        assert!(a.get_parsed::<usize>("k").is_err());
    }

    #[test]
    fn no_command_is_empty() {
        let a = Args::parse(sv(&["--graph", "x"])).unwrap();
        assert_eq!(a.command, "");
    }

    #[test]
    fn threads_option_maps_to_parallelism_policy() {
        let mut a = Args::parse(sv(&["topk"])).unwrap();
        assert_eq!(a.parallelism().unwrap(), Parallelism::serial());
        let mut a = Args::parse(sv(&["topk", "--threads", "4"])).unwrap();
        assert_eq!(a.parallelism().unwrap(), Parallelism::threads(4));
        assert!(a.finish().is_ok(), "--threads must be consumed");
        let mut a = Args::parse(sv(&["topk", "--threads", "0"])).unwrap();
        assert_eq!(a.parallelism().unwrap(), Parallelism::auto());
        let mut a = Args::parse(sv(&["topk", "--threads", "many"])).unwrap();
        assert!(a.parallelism().is_err());
    }
}
