//! `lhcds` — command-line locally h-clique densest subgraph discovery.
//!
//! ```text
//! lhcds topk --graph edges.txt --h 3 --k 5 [--threads 4] [--basic] [--pattern 4-loop]
//! lhcds stats --graph edges.txt [--h 3] [--threads 4]
//! lhcds gen --out edges.txt --preset HA [--scale 0.2]
//! lhcds help
//! ```
//!
//! `--threads N` runs h-clique enumeration on `N` worker threads
//! (`0` = auto-detect); output is identical to the serial default.
//!
//! Graphs are whitespace-separated edge lists (`#`/`%` comments
//! allowed) — the SNAP format.

use std::process::ExitCode;

use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::graph::io::{read_edge_list_file, write_edge_list_file};
use lhcds::patterns::{top_k_lhxpds, Pattern};

mod args;
use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(argv)?;
    match args.command.as_str() {
        "topk" => cmd_topk(&mut args),
        "stats" => cmd_stats(&mut args),
        "gen" => cmd_gen(&mut args),
        "help" | "" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' — try `lhcds help`")),
    }
}

fn print_help() {
    println!(
        "lhcds — exact locally h-clique densest subgraph discovery (IPPV)\n\n\
         USAGE:\n  lhcds topk  --graph FILE [--h H] [--k K] [--threads N] [--basic] [--pattern NAME] [--quiet]\n  \
         lhcds stats --graph FILE [--h H] [--threads N]\n  \
         lhcds gen   --out FILE --preset ABBR [--scale F]\n\n\
         PATTERNS: 3-star, 4-path, c3-star, 4-loop, 2-triangle, 4-clique\n\
         PRESETS:  Table 2 abbreviations (HA, GQ, PP, PC, WB, CM, EP, EN, GW, DB, AM, YT, LF, FX, WT)\n\
         THREADS:  enumeration worker threads (0 = auto); results never depend on it"
    );
}

fn parse_pattern(name: &str) -> Result<Pattern, String> {
    Ok(match name {
        "3-star" => Pattern::Star3,
        "4-path" => Pattern::Path4,
        "c3-star" => Pattern::TailedTriangle,
        "4-loop" => Pattern::Cycle4,
        "2-triangle" => Pattern::Diamond,
        "4-clique" => Pattern::Clique4,
        other => return Err(format!("unknown pattern '{other}'")),
    })
}

fn cmd_topk(args: &mut Args) -> Result<(), String> {
    let path = args.required("graph")?;
    let k = args.get_parsed("k")?.unwrap_or(5usize);
    let h = args.get_parsed("h")?.unwrap_or(3usize);
    let basic = args.flag("basic");
    let quiet = args.flag("quiet");
    let pattern = args.get("pattern");
    let parallelism = args.parallelism()?;
    args.finish()?;

    let g = read_edge_list_file(&path).map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!("loaded {}: {} vertices, {} edges", path, g.n(), g.m());
    }
    let cfg = IppvConfig {
        fast_verify: !basic,
        parallelism,
        ..IppvConfig::default()
    };

    let (subgraphs, stats) = if let Some(pname) = pattern {
        let p = parse_pattern(&pname)?;
        let res = top_k_lhxpds(&g, p, k, &cfg);
        (res.subgraphs, res.stats)
    } else {
        if h < 2 {
            return Err("--h must be at least 2".into());
        }
        let res = top_k_lhcds(&g, h, k, &cfg);
        (res.subgraphs, res.stats)
    };

    for (i, s) in subgraphs.iter().enumerate() {
        println!(
            "top-{rank}\tdensity={d}\tsize={n}\tinstances={c}\tvertices={v:?}",
            rank = i + 1,
            d = s.density,
            n = s.vertices.len(),
            c = s.clique_count,
            v = s.vertices,
        );
    }
    if !quiet {
        eprintln!(
            "{} instances enumerated | {} verifications ({} flow, {} shortcut) | {} vertices pruned",
            stats.clique_count,
            stats.verifications,
            stats.flow_verifications,
            stats.shortcut_accepts,
            stats.pruned_vertices,
        );
    }
    Ok(())
}

fn cmd_stats(args: &mut Args) -> Result<(), String> {
    let path = args.required("graph")?;
    let h = args.get_parsed("h")?.unwrap_or(3usize);
    let parallelism = args.parallelism()?;
    args.finish()?;
    let g = read_edge_list_file(&path).map_err(|e| e.to_string())?;
    let deg = lhcds::graph::core_decomp::degeneracy_order(&g);
    println!("vertices:    {}", g.n());
    println!("edges:       {}", g.m());
    println!("max degree:  {}", g.max_degree());
    println!("degeneracy:  {}", deg.degeneracy);
    println!("clique no.:  {}", lhcds::clique::clique_number(&g));
    for hh in [3usize, h.max(3)] {
        println!(
            "|Psi_{hh}|:     {}",
            lhcds::clique::par_count_cliques(&g, hh, &parallelism)
        );
        if hh == h.max(3) {
            break;
        }
    }
    Ok(())
}

fn cmd_gen(args: &mut Args) -> Result<(), String> {
    let out = args.required("out")?;
    let preset = args.required("preset")?;
    let scale: f64 = args.get_parsed("scale")?.unwrap_or(1.0);
    args.finish()?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    let spec = lhcds::data::datasets::by_abbr(&preset)
        .ok_or_else(|| format!("unknown preset '{preset}'"))?;
    let d = spec.generate_scaled(scale);
    write_edge_list_file(&d.graph, &out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} stand-in, scale {}): {} vertices, {} edges",
        out,
        spec.name,
        scale,
        d.graph.n(),
        d.graph.m()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_names_parse() {
        for (name, arity) in [
            ("3-star", 4),
            ("4-path", 4),
            ("c3-star", 4),
            ("4-loop", 4),
            ("2-triangle", 4),
            ("4-clique", 4),
        ] {
            let p = parse_pattern(name).unwrap();
            assert_eq!(p.arity(), arity, "{name}");
        }
        assert!(parse_pattern("pentagon").is_err());
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(run(vec!["frobnicate".into()]).is_err());
    }

    #[test]
    fn help_runs() {
        assert!(run(vec!["help".into()]).is_ok());
        assert!(run(vec![]).is_ok());
    }

    #[test]
    fn gen_and_topk_round_trip() {
        let dir = std::env::temp_dir().join("lhcds_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt").to_string_lossy().into_owned();
        run(vec![
            "gen".into(),
            "--out".into(),
            path.clone(),
            "--preset".into(),
            "HA".into(),
            "--scale".into(),
            "0.05".into(),
        ])
        .unwrap();
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--k".into(),
            "2".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec!["stats".into(), "--graph".into(), path.clone()]).unwrap();
        // multi-threaded enumeration accepts the same inputs
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--k".into(),
            "2".into(),
            "--threads".into(),
            "4".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec![
            "stats".into(),
            "--graph".into(),
            path.clone(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--threads".into(),
            "lots".into(),
            "--quiet".into(),
        ])
        .is_err());
        // pattern mode
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--pattern".into(),
            "2-triangle".into(),
            "--k".into(),
            "1".into(),
            "--quiet".into(),
        ])
        .unwrap();
        // error paths
        assert!(run(vec!["topk".into()]).is_err());
        assert!(run(vec![
            "gen".into(),
            "--out".into(),
            path,
            "--preset".into(),
            "NOPE".into()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
