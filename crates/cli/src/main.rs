//! `lhcds` — command-line locally h-clique densest subgraph discovery.
//!
//! ```text
//! lhcds topk --graph edges.txt --h 3 --k 5 [--threads 4] [--basic] [--pattern 4-loop]
//! lhcds topk --input web-Stanford.txt [--format snap|csv|auto] [--no-cache] --h 3 --k 5
//! lhcds stats --graph edges.txt [--h 3] [--threads 4]
//! lhcds gen --out edges.txt --preset HA [--scale 0.2]
//! lhcds datasets list | fetch-instructions | cache | verify [--manifest datasets.toml] [--name X]
//! lhcds help
//! ```
//!
//! Two input paths:
//!
//! * `--graph FILE` — strict already-compact edge list (ids `0..n`,
//!   whitespace-separated, `#`/`%` comments), parsed on every run.
//! * `--input FILE` — the real-dataset ingest path: tolerant streaming
//!   parser (tabs/commas, CRLF, duplicate + reversed edges, self-loops,
//!   arbitrary non-contiguous 64-bit ids remapped to compact ranks)
//!   backed by a binary on-disk cache (`FILE.csrcache`), so large
//!   downloads are parsed once. Reported vertex ids are the *original*
//!   file ids.
//!
//! The `datasets` subcommand manages a `datasets.toml` manifest of real
//! graphs (the paper's Table 2 corpus): `list` shows local status,
//! `fetch-instructions` prints download pointers (or a template
//! manifest), `cache` pre-builds binary snapshots, and `verify`
//! validates loaded graphs against the recorded `|V|`/`|E|`.
//!
//! `--threads N` runs h-clique enumeration on `N` worker threads
//! (`0` = auto-detect); output is identical to the serial default.

use std::path::PathBuf;
use std::process::ExitCode;

use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::cache::{cache_path_for, load_or_build, CacheStatus};
use lhcds::data::ingest::{read_graph_file, EdgeListFormat};
use lhcds::data::manifest::{table2_template, DatasetRegistry};
use lhcds::graph::io::{read_edge_list_file, write_edge_list_file};
use lhcds::graph::CsrGraph;
use lhcds::patterns::{top_k_lhxpds, Pattern};

mod args;
use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    // `datasets` takes its own action word, so it re-parses the tail:
    // `lhcds datasets list --manifest m.toml` → action "list".
    if argv.first().map(String::as_str) == Some("datasets") {
        let mut args = Args::parse(argv[1..].to_vec())?;
        return cmd_datasets(&mut args);
    }
    let mut args = Args::parse(argv)?;
    match args.command.as_str() {
        "topk" => cmd_topk(&mut args),
        "stats" => cmd_stats(&mut args),
        "gen" => cmd_gen(&mut args),
        "help" | "" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' — try `lhcds help`")),
    }
}

fn print_help() {
    println!(
        "lhcds — exact locally h-clique densest subgraph discovery (IPPV)\n\n\
         USAGE:\n  lhcds topk  (--graph FILE | --input FILE [--format F] [--no-cache]) [--h H] [--k K] [--threads N] [--basic] [--pattern NAME] [--quiet]\n  \
         lhcds stats (--graph FILE | --input FILE [--format F] [--no-cache]) [--h H] [--threads N]\n  \
         lhcds gen   --out FILE --preset ABBR [--scale F]\n  \
         lhcds datasets (list | fetch-instructions | cache | verify) [--manifest FILE] [--name NAME]\n\n\
         INPUT:    --graph = strict compact edge list; --input = tolerant SNAP ingest with a\n          \
         binary on-disk cache (FILE.csrcache) and original-id reporting\n\
         FORMATS:  auto (default), snap (whitespace), csv\n\
         PATTERNS: 3-star, 4-path, c3-star, 4-loop, 2-triangle, 4-clique\n\
         PRESETS:  Table 2 abbreviations (HA, GQ, PP, PC, WB, CM, EP, EN, GW, DB, AM, YT, LF, FX, WT)\n\
         THREADS:  enumeration worker threads (0 = auto); results never depend on it"
    );
}

/// A graph loaded from either input path, with the id mapping needed to
/// report vertices in the caller's namespace.
struct LoadedGraph {
    graph: CsrGraph,
    /// rank → original file id; `None` when ids were already compact
    /// (`--graph` path, or an identity remap).
    original_ids: Option<Vec<u64>>,
    note: String,
}

impl LoadedGraph {
    fn display_id(&self, v: lhcds::graph::VertexId) -> u64 {
        match &self.original_ids {
            Some(ids) => ids[v as usize],
            None => u64::from(v),
        }
    }

    fn display_ids(&self, vs: &[lhcds::graph::VertexId]) -> Vec<u64> {
        vs.iter().map(|&v| self.display_id(v)).collect()
    }
}

/// The shared input options (`--graph` / `--input` / `--format` /
/// `--no-cache`), consumed and validated *before* `args.finish()` so a
/// mistyped flag is reported without first parsing a multi-gigabyte
/// file. Call [`InputSpec::load`] after `finish()` succeeds.
enum InputSpec {
    /// `--graph FILE`: strict compact edge list, parsed every run.
    Strict(String),
    /// `--input FILE`: tolerant ingest path with optional cache bypass.
    Ingest {
        path: String,
        format: EdgeListFormat,
        no_cache: bool,
    },
}

impl InputSpec {
    fn take(args: &mut Args) -> Result<InputSpec, String> {
        let graph_path = args.get("graph");
        let input_path = args.get("input");
        let format = args.get("format");
        let no_cache = args.flag("no-cache");
        match (graph_path, input_path) {
            (Some(_), Some(_)) => Err("--graph and --input are mutually exclusive".into()),
            (None, None) => Err("missing input: pass --graph FILE or --input FILE".into()),
            (Some(path), None) => {
                if format.is_some() || no_cache {
                    return Err("--format/--no-cache only apply to --input".into());
                }
                Ok(InputSpec::Strict(path))
            }
            (None, Some(path)) => Ok(InputSpec::Ingest {
                path,
                format: match format {
                    Some(name) => EdgeListFormat::parse(&name)?,
                    None => EdgeListFormat::Auto,
                },
                no_cache,
            }),
        }
    }

    fn load(self) -> Result<LoadedGraph, String> {
        match self {
            InputSpec::Strict(path) => {
                let g = read_edge_list_file(&path).map_err(|e| e.to_string())?;
                Ok(LoadedGraph {
                    graph: g,
                    original_ids: None,
                    note: format!("loaded {path}"),
                })
            }
            InputSpec::Ingest {
                path,
                format,
                no_cache,
            } => {
                let (remapped, how) = if no_cache {
                    let g = read_graph_file(&path, format).map_err(|e| e.to_string())?;
                    (g, "parsed, cache bypassed".to_string())
                } else {
                    let src = PathBuf::from(&path);
                    let (g, status) =
                        load_or_build(&src, format, None).map_err(|e| e.to_string())?;
                    let cache = cache_path_for(&src);
                    let how = match status {
                        CacheStatus::Hit => format!("cache hit: {}", cache.display()),
                        CacheStatus::Built => {
                            format!("parsed, cache written: {}", cache.display())
                        }
                        CacheStatus::Rebuilt => {
                            format!("stale cache rebuilt: {}", cache.display())
                        }
                        CacheStatus::Uncached => {
                            format!("parsed; cache not writable at {}", cache.display())
                        }
                    };
                    (g, how)
                };
                let identity = remapped.is_identity();
                Ok(LoadedGraph {
                    graph: remapped.graph,
                    original_ids: (!identity).then_some(remapped.original_ids),
                    note: format!("loaded {path} ({how})"),
                })
            }
        }
    }
}

fn parse_pattern(name: &str) -> Result<Pattern, String> {
    Ok(match name {
        "3-star" => Pattern::Star3,
        "4-path" => Pattern::Path4,
        "c3-star" => Pattern::TailedTriangle,
        "4-loop" => Pattern::Cycle4,
        "2-triangle" => Pattern::Diamond,
        "4-clique" => Pattern::Clique4,
        other => return Err(format!("unknown pattern '{other}'")),
    })
}

fn cmd_topk(args: &mut Args) -> Result<(), String> {
    let k = args.get_parsed("k")?.unwrap_or(5usize);
    let h = args.get_parsed("h")?.unwrap_or(3usize);
    let basic = args.flag("basic");
    let quiet = args.flag("quiet");
    let pattern = args.get("pattern");
    let parallelism = args.parallelism()?;
    let input = InputSpec::take(args)?;
    args.finish()?;
    let loaded = input.load()?;

    let g = &loaded.graph;
    if !quiet {
        eprintln!("{}: {} vertices, {} edges", loaded.note, g.n(), g.m());
    }
    let cfg = IppvConfig {
        fast_verify: !basic,
        parallelism,
        ..IppvConfig::default()
    };

    let (subgraphs, stats) = if let Some(pname) = pattern {
        let p = parse_pattern(&pname)?;
        let res = top_k_lhxpds(g, p, k, &cfg);
        (res.subgraphs, res.stats)
    } else {
        if h < 2 {
            return Err("--h must be at least 2".into());
        }
        let res = top_k_lhcds(g, h, k, &cfg);
        (res.subgraphs, res.stats)
    };

    for (i, s) in subgraphs.iter().enumerate() {
        println!(
            "top-{rank}\tdensity={d}\tsize={n}\tinstances={c}\tvertices={v:?}",
            rank = i + 1,
            d = s.density,
            n = s.vertices.len(),
            c = s.clique_count,
            v = loaded.display_ids(&s.vertices),
        );
    }
    if !quiet {
        eprintln!(
            "{} instances enumerated | {} verifications ({} flow, {} shortcut) | {} vertices pruned",
            stats.clique_count,
            stats.verifications,
            stats.flow_verifications,
            stats.shortcut_accepts,
            stats.pruned_vertices,
        );
    }
    Ok(())
}

fn cmd_stats(args: &mut Args) -> Result<(), String> {
    let h = args.get_parsed("h")?.unwrap_or(3usize);
    let parallelism = args.parallelism()?;
    let input = InputSpec::take(args)?;
    args.finish()?;
    let loaded = input.load()?;
    let g = &loaded.graph;
    eprintln!("{}", loaded.note);
    let deg = lhcds::graph::core_decomp::degeneracy_order(g);
    println!("vertices:    {}", g.n());
    println!("edges:       {}", g.m());
    println!("max degree:  {}", g.max_degree());
    println!("degeneracy:  {}", deg.degeneracy);
    println!("clique no.:  {}", lhcds::clique::clique_number(g));
    for hh in [3usize, h.max(3)] {
        println!(
            "|Psi_{hh}|:     {}",
            lhcds::clique::par_count_cliques(g, hh, &parallelism)
        );
        if hh == h.max(3) {
            break;
        }
    }
    Ok(())
}

/// `lhcds datasets <action>` — manage the real-dataset manifest.
fn cmd_datasets(args: &mut Args) -> Result<(), String> {
    let action = args.command.clone();
    let manifest_path = args
        .get("manifest")
        .map(PathBuf::from)
        .unwrap_or_else(DatasetRegistry::default_path);
    let name = args.get("name");
    args.finish()?;

    // `fetch-instructions` is the one action that works without a
    // manifest: it prints a template to get the user started.
    if action == "fetch-instructions" && !manifest_path.is_file() {
        println!(
            "# No manifest at {} — start from this template:\n",
            manifest_path.display()
        );
        println!("{}", table2_template());
        return Ok(());
    }
    let registry = DatasetRegistry::load(&manifest_path)?;
    let selected: Vec<_> = match &name {
        Some(n) => vec![registry
            .get(n)
            .ok_or_else(|| format!("no dataset '{n}' in {}", manifest_path.display()))?],
        None => registry.entries().iter().collect(),
    };

    match action.as_str() {
        "list" => {
            let header = ["name", "abbr", "|V| expected", "|E| expected", "status"];
            println!(
                "{:<24} {:<6} {:>12} {:>12}  {}",
                header[0], header[1], header[2], header[3], header[4]
            );
            for e in selected {
                let status = if !e.is_present() {
                    "missing".to_string()
                } else if cache_path_for(&e.path).is_file() {
                    "present, cached".to_string()
                } else {
                    "present, no cache".to_string()
                };
                let opt = |v: Option<u64>| v.map_or("-".into(), |x| x.to_string());
                println!(
                    "{:<24} {:<6} {:>12} {:>12}  {}",
                    e.name,
                    e.abbr.as_deref().unwrap_or("-"),
                    opt(e.vertices),
                    opt(e.edges),
                    status
                );
            }
            Ok(())
        }
        "fetch-instructions" => {
            for e in selected {
                let status = if e.is_present() {
                    "already present"
                } else {
                    "missing"
                };
                println!("{} ({status})", e.name);
                println!(
                    "  download page: {}",
                    e.url.as_deref().unwrap_or("(no url recorded)")
                );
                println!("  expected path: {}", e.path.display());
            }
            println!("\nAfter downloading, run `lhcds datasets verify` to validate and cache.");
            Ok(())
        }
        "cache" | "verify" => {
            let mut failures = 0usize;
            let mut skipped = 0usize;
            for e in &selected {
                if !e.is_present() {
                    // explicit --name must fail hard; bulk runs just report
                    if name.is_some() {
                        return Err(format!(
                            "dataset '{}': file not found at {}",
                            e.name,
                            e.path.display()
                        ));
                    }
                    println!("{:<24} skipped (file missing)", e.name);
                    skipped += 1;
                    continue;
                }
                match e.load() {
                    Ok((g, status)) => println!(
                        "{:<24} ok: {} vertices, {} edges ({})",
                        e.name,
                        g.graph.n(),
                        g.graph.m(),
                        match status {
                            CacheStatus::Hit => "cache hit",
                            CacheStatus::Built => "cache built",
                            CacheStatus::Rebuilt => "cache rebuilt",
                            CacheStatus::Uncached => "cache not writable",
                        }
                    ),
                    Err(err) => {
                        println!("{:<24} FAILED: {err}", e.name);
                        failures += 1;
                    }
                }
            }
            if failures > 0 {
                return Err(format!("{failures} dataset(s) failed verification"));
            }
            if skipped > 0 && skipped == selected.len() {
                println!("(no dataset files present — see `lhcds datasets fetch-instructions`)");
            }
            Ok(())
        }
        "" => Err("missing datasets action: list | fetch-instructions | cache | verify".into()),
        other => Err(format!(
            "unknown datasets action '{other}' — try list | fetch-instructions | cache | verify"
        )),
    }
}

fn cmd_gen(args: &mut Args) -> Result<(), String> {
    let out = args.required("out")?;
    let preset = args.required("preset")?;
    let scale: f64 = args.get_parsed("scale")?.unwrap_or(1.0);
    args.finish()?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    let spec = lhcds::data::datasets::by_abbr(&preset)
        .ok_or_else(|| format!("unknown preset '{preset}'"))?;
    let d = spec.generate_scaled(scale);
    write_edge_list_file(&d.graph, &out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} stand-in, scale {}): {} vertices, {} edges",
        out,
        spec.name,
        scale,
        d.graph.n(),
        d.graph.m()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_names_parse() {
        for (name, arity) in [
            ("3-star", 4),
            ("4-path", 4),
            ("c3-star", 4),
            ("4-loop", 4),
            ("2-triangle", 4),
            ("4-clique", 4),
        ] {
            let p = parse_pattern(name).unwrap();
            assert_eq!(p.arity(), arity, "{name}");
        }
        assert!(parse_pattern("pentagon").is_err());
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(run(vec!["frobnicate".into()]).is_err());
    }

    #[test]
    fn help_runs() {
        assert!(run(vec!["help".into()]).is_ok());
        assert!(run(vec![]).is_ok());
    }

    fn fixture() -> String {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../data/fixtures/figure2.txt")
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn input_path_loads_and_matches_builtin_decomposition() {
        let dir = std::env::temp_dir().join("lhcds_cli_input_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.txt");
        std::fs::copy(fixture(), &path).unwrap();
        let path_s = path.to_string_lossy().into_owned();

        // --input works end-to-end, both cold (cache build) and warm (hit)
        for _ in 0..2 {
            run(vec![
                "topk".into(),
                "--input".into(),
                path_s.clone(),
                "--k".into(),
                "2".into(),
                "--quiet".into(),
            ])
            .unwrap();
        }
        run(vec!["stats".into(), "--input".into(), path_s.clone()]).unwrap();
        run(vec![
            "topk".into(),
            "--input".into(),
            path_s.clone(),
            "--no-cache".into(),
            "--format".into(),
            "snap".into(),
            "--k".into(),
            "1".into(),
            "--quiet".into(),
        ])
        .unwrap();

        // acceptance contract: the ingested fixture decomposes exactly
        // like the equivalent builtin graph
        let ingested = read_graph_file(&path, EdgeListFormat::Auto).unwrap();
        let builtin = lhcds::data::figure2_graph();
        assert_eq!(ingested.graph, builtin);
        let a = top_k_lhcds(&ingested.graph, 3, 3, &IppvConfig::default());
        let b = top_k_lhcds(&builtin, 3, 3, &IppvConfig::default());
        assert_eq!(a.subgraphs, b.subgraphs);

        // input-option misuse
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path_s.clone(),
            "--input".into(),
            path_s.clone(),
        ])
        .is_err());
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path_s.clone(),
            "--format".into(),
            "csv".into(),
        ])
        .is_err());
        assert!(run(vec![
            "topk".into(),
            "--input".into(),
            path_s.clone(),
            "--format".into(),
            "xml".into(),
        ])
        .is_err());
        assert!(run(vec!["topk".into(), "--quiet".into()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn datasets_subcommand_lifecycle() {
        let dir = std::env::temp_dir().join("lhcds_cli_datasets_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::copy(fixture(), dir.join("figure2.txt")).unwrap();
        let manifest = dir.join("datasets.toml");
        std::fs::write(
            &manifest,
            "[figure2]\nabbr = \"F2\"\npath = \"figure2.txt\"\nvertices = 20\nedges = 39\n\
             [absent]\npath = \"not-downloaded.txt\"\n",
        )
        .unwrap();
        let m = manifest.to_string_lossy().into_owned();
        let with_manifest = |action: &str| {
            vec![
                "datasets".into(),
                action.to_string(),
                "--manifest".into(),
                m.clone(),
            ]
        };

        run(with_manifest("list")).unwrap();
        run(with_manifest("fetch-instructions")).unwrap();
        run(with_manifest("cache")).unwrap();
        run(with_manifest("verify")).unwrap();
        // per-name selection
        let mut v = with_manifest("verify");
        v.extend(["--name".into(), "F2".into()]);
        run(v).unwrap();
        // explicit --name on a missing file fails hard
        let mut v = with_manifest("cache");
        v.extend(["--name".into(), "absent".into()]);
        assert!(run(v).is_err());
        // unknown name / action / missing action
        let mut v = with_manifest("verify");
        v.extend(["--name".into(), "nope".into()]);
        assert!(run(v).is_err());
        assert!(run(with_manifest("frobnicate")).is_err());
        assert!(run(vec!["datasets".into()]).is_err());

        // a validation mismatch is a hard error
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 21\n",
        )
        .unwrap();
        assert!(run(with_manifest("verify")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn datasets_fetch_instructions_without_manifest_prints_template() {
        let missing = std::env::temp_dir()
            .join("lhcds_cli_no_such_dir")
            .join("datasets.toml");
        run(vec![
            "datasets".into(),
            "fetch-instructions".into(),
            "--manifest".into(),
            missing.to_string_lossy().into_owned(),
        ])
        .unwrap();
        // but every other action needs the manifest to exist
        assert!(run(vec![
            "datasets".into(),
            "list".into(),
            "--manifest".into(),
            missing.to_string_lossy().into_owned(),
        ])
        .is_err());
    }

    #[test]
    fn gen_and_topk_round_trip() {
        let dir = std::env::temp_dir().join("lhcds_cli_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt").to_string_lossy().into_owned();
        run(vec![
            "gen".into(),
            "--out".into(),
            path.clone(),
            "--preset".into(),
            "HA".into(),
            "--scale".into(),
            "0.05".into(),
        ])
        .unwrap();
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--k".into(),
            "2".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec!["stats".into(), "--graph".into(), path.clone()]).unwrap();
        // multi-threaded enumeration accepts the same inputs
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--k".into(),
            "2".into(),
            "--threads".into(),
            "4".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec![
            "stats".into(),
            "--graph".into(),
            path.clone(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--threads".into(),
            "lots".into(),
            "--quiet".into(),
        ])
        .is_err());
        // pattern mode
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--pattern".into(),
            "2-triangle".into(),
            "--k".into(),
            "1".into(),
            "--quiet".into(),
        ])
        .unwrap();
        // error paths
        assert!(run(vec!["topk".into()]).is_err());
        assert!(run(vec![
            "gen".into(),
            "--out".into(),
            path,
            "--preset".into(),
            "NOPE".into()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
