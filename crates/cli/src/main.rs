//! `lhcds` — command-line locally h-clique densest subgraph discovery.
//!
//! ```text
//! lhcds topk --graph edges.txt --h 3 --k 5 [--threads 4] [--basic] [--pattern 4-loop] [--flow-reuse ggt] [--core-prune] [--trace] [--trace-out t.json] [--json]
//! lhcds topk --input web-Stanford.txt [--format snap|csv|auto] [--no-cache] --h 3 --k 5
//! lhcds stats --graph edges.txt [--h 3] [--pattern 4-loop] [--threads 4] [--core-prune] [--trace] [--json]
//! lhcds gen --out edges.txt --preset HA [--scale 0.2]
//! lhcds datasets list | fetch-instructions | cache | verify [--manifest datasets.toml] [--name X]
//! lhcds serve --input FILE --h 3 [--pattern 4-loop,3-star] --port 4321 [--k-max 32] [--workers 4] [--slow-query-ms 100] [--max-request-bytes N] [--deadline-ms MS] [--max-pending N] [--fault-schedule SPEC]
//! lhcds query top-k --port 4321 (--h 3 | --pattern 4-loop) --k 5 [--retries N]
//! lhcds query metrics --port 4321
//! lhcds query health --port 4321
//! lhcds help
//! ```
//!
//! Two input paths:
//!
//! * `--graph FILE` — strict already-compact edge list (ids `0..n`,
//!   whitespace-separated, `#`/`%` comments), parsed on every run.
//! * `--input FILE` — the real-dataset ingest path: tolerant streaming
//!   parser (tabs/commas, CRLF, duplicate + reversed edges, self-loops,
//!   arbitrary non-contiguous 64-bit ids remapped to compact ranks)
//!   backed by a binary on-disk cache (`FILE.csrcache`), so large
//!   downloads are parsed once. Reported vertex ids are the *original*
//!   file ids.
//!
//! The `datasets` subcommand manages a `datasets.toml` manifest of real
//! graphs (the paper's Table 2 corpus): `list` shows local status,
//! `fetch-instructions` prints download pointers (or a template
//! manifest), `cache` pre-builds binary snapshots, and `verify`
//! validates loaded graphs against the recorded `|V|`/`|E|` — any
//! mismatch or load failure makes the process exit non-zero.
//!
//! The `serve` subcommand builds (or binary-loads, via the `LHCDSIDX`
//! cache) a decomposition index per requested `h` / `--pattern` name
//! (one daemon hosts one graph under several patterns side by side) and
//! serves the newline-delimited JSON query protocol on a TCP port until
//! SIGTERM / ctrl-c / a protocol `shutdown` request; `query` is the
//! matching one-shot client, naming the index by `--h`, `--pattern`, or
//! both. A served `top_k` answer is string-identical to
//! `lhcds topk --json` on the same graph — the serializer is shared.
//! The daemon's failure model is typed, never wrong: oversized request
//! lines get `too_large`, late answers `deadline_exceeded`, shed
//! connections `overloaded`, and caught request panics `internal`; a
//! per-pattern index-load failure leaves the daemon serving the
//! remaining patterns in a `degraded` state (visible via
//! `query health`) rather than refusing to start. `--fault-schedule`
//! arms the deterministic fault-injection registry (`lhcds-obs`) for
//! chaos testing; `query … --retries N` retries idempotent read ops
//! with capped exponential backoff and deterministic jitter.
//!
//! `--threads N` runs h-clique enumeration *and* the post-enumeration
//! pipeline — CP round scaling, the speculative candidate-verification
//! stream, and the GGT principal-partition recursion — on `N` worker
//! threads (`0` = auto-detect); output is byte-identical to the serial
//! default at every `N`. `--core-prune` builds the whole-graph verifier
//! networks on the `(h−1)`-core (Core-Exact); verdicts never change.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use lhcds::core::index::IndexConfig;
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::core::FlowReuse;
use lhcds::data::cache::{cache_path_for, load_or_build, CacheStatus};
use lhcds::data::index_cache::{build_or_load_pattern_index_for, IndexBuildOptions};
use lhcds::data::ingest::{read_graph_file, EdgeListFormat};
use lhcds::data::manifest::{table2_template, DatasetRegistry};
use lhcds::graph::io::{read_edge_list_file, write_edge_list_file};
use lhcds::graph::CsrGraph;
use lhcds::patterns::{build_pattern_index, enumerate_pattern_with, top_k_lhxpds, Pattern};
use lhcds::service::json::Json;
use lhcds::service::protocol::{flow_stats_json, topk_result, AnswerRow, IndexRef, Request};
use lhcds::service::server::{ServeOptions, ServedIndexes, Server};
use lhcds::service::{client, signals};

mod args;
use args::Args;

fn main() -> ExitCode {
    ExitCode::from(run_to_exit_code(std::env::args().skip(1).collect()))
}

/// The whole CLI as a function of argv → process exit code (0 success,
/// 2 any failure — including `datasets verify` finding a `|V|`/`|E|`
/// mismatch). Tests assert on this directly.
fn run_to_exit_code(argv: Vec<String>) -> u8 {
    match run(argv) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    // `datasets` and `query` take their own action word, so they
    // re-parse the tail: `lhcds datasets list --manifest m.toml` →
    // action "list"; `lhcds query top-k --port 4321` → action "top-k".
    if argv.first().map(String::as_str) == Some("datasets") {
        let mut args = Args::parse(argv[1..].to_vec())?;
        return cmd_datasets(&mut args);
    }
    if argv.first().map(String::as_str) == Some("query") {
        let mut args = Args::parse(argv[1..].to_vec())?;
        return cmd_query(&mut args);
    }
    let mut args = Args::parse(argv)?;
    match args.command.as_str() {
        "topk" => cmd_topk(&mut args),
        "stats" => cmd_stats(&mut args),
        "gen" => cmd_gen(&mut args),
        "serve" => cmd_serve(&mut args),
        "help" | "" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' — try `lhcds help`")),
    }
}

fn print_help() {
    println!(
        "lhcds — exact locally h-clique densest subgraph discovery (IPPV)\n\n\
         USAGE:\n  lhcds topk  (--graph FILE | --input FILE [--format F] [--no-cache]) [--h H] [--k K] [--threads N] [--basic] [--pattern NAME] [--flow-reuse T] [--core-prune] [--trace] [--trace-out FILE] [--quiet] [--json]\n  \
         lhcds stats (--graph FILE | --input FILE [--format F] [--no-cache]) [--h H] [--pattern NAME] [--threads N] [--core-prune] [--trace] [--trace-out FILE] [--json]\n  \
         lhcds gen   --out FILE --preset ABBR [--scale F]\n  \
         lhcds datasets (list | fetch-instructions | cache | verify) [--manifest FILE] [--name NAME]\n  \
         lhcds serve (--graph FILE | --input FILE [--format F] [--no-cache]) [--h H[,H...]] [--pattern NAME[,NAME...]] [--k-max K]\n              \
         [--host ADDR] [--port N] [--workers N] [--threads N] [--core-prune] [--slow-query-ms MS] [--port-file FILE] [--quiet]\n              \
         [--max-request-bytes N] [--deadline-ms MS] [--max-pending N] [--fault-schedule SPEC]\n  \
         lhcds query (top-k | density-of | membership | stats | metrics | health | ping | shutdown)\n              \
         [--host ADDR] --port N [--h H] [--pattern NAME] [--k K] [--vertex V] [--timeout SECS] [--retries N] [--retry-base-ms MS]\n\n\
         INPUT:    --graph = strict compact edge list; --input = tolerant SNAP ingest with a\n          \
         binary on-disk cache (FILE.csrcache) and original-id reporting\n\
         FORMATS:  auto (default), snap (whitespace), csv\n\
         PATTERNS: edge, triangle, 3-star, 4-path, c3-star, 4-loop, 2-triangle, {{h}}-clique\n\
         PRESETS:  Table 2 abbreviations (HA, GQ, PP, PC, WB, CM, EP, EN, GW, DB, AM, YT, LF, FX, WT)\n\
         THREADS:  worker threads for enumeration AND verification/GGT (0 = auto);\n          \
         results never depend on it\n\
         REUSE:    --flow-reuse scratch|warm|ggt (default ggt); results never depend on it\n\
         CORE:     --core-prune builds verifier networks on the (h-1)-core (Core-Exact);\n          \
         results never depend on it\n\
         TRACE:    --trace renders a per-phase span tree on stderr; --trace-out FILE also\n          \
         writes the deterministic JSON trace; results never depend on it\n\
         SERVE:    indexes are persisted next to --input files (FILE.hH.lhcdsidx for cliques,\n          \
         FILE.<pattern>.lhcdsidx otherwise) and binary-loaded on restart; one daemon can host\n          \
         several patterns at once; answers match `lhcds topk --json` exactly\n\
         FAULTS:   errors are typed (too_large | deadline_exceeded | overloaded | internal) and\n          \
         the daemon survives all of them; an index that fails to load leaves the daemon\n          \
         `degraded` (see `query health`); --fault-schedule arms deterministic injection,\n          \
         e.g. seed=42,worker_panic=@1,socket_read=0.25; --retries N retries idempotent\n          \
         read ops on connect/timeout/overloaded with capped backoff + deterministic jitter"
    );
}

/// A graph loaded from either input path, with the id mapping needed to
/// report vertices in the caller's namespace.
struct LoadedGraph {
    graph: CsrGraph,
    /// rank → original file id; `None` when ids were already compact
    /// (`--graph` path, or an identity remap).
    original_ids: Option<Vec<u64>>,
    note: String,
}

impl LoadedGraph {
    fn display_id(&self, v: lhcds::graph::VertexId) -> u64 {
        match &self.original_ids {
            Some(ids) => ids[v as usize],
            None => u64::from(v),
        }
    }

    fn display_ids(&self, vs: &[lhcds::graph::VertexId]) -> Vec<u64> {
        vs.iter().map(|&v| self.display_id(v)).collect()
    }
}

/// The shared input options (`--graph` / `--input` / `--format` /
/// `--no-cache`), consumed and validated *before* `args.finish()` so a
/// mistyped flag is reported without first parsing a multi-gigabyte
/// file. Call [`InputSpec::load`] after `finish()` succeeds.
enum InputSpec {
    /// `--graph FILE`: strict compact edge list, parsed every run.
    Strict(String),
    /// `--input FILE`: tolerant ingest path with optional cache bypass.
    Ingest {
        path: String,
        format: EdgeListFormat,
        no_cache: bool,
    },
}

impl InputSpec {
    fn take(args: &mut Args) -> Result<InputSpec, String> {
        let graph_path = args.get("graph");
        let input_path = args.get("input");
        let format = args.get("format");
        let no_cache = args.flag("no-cache");
        match (graph_path, input_path) {
            (Some(_), Some(_)) => Err("--graph and --input are mutually exclusive".into()),
            (None, None) => Err("missing input: pass --graph FILE or --input FILE".into()),
            (Some(path), None) => {
                if format.is_some() || no_cache {
                    return Err("--format/--no-cache only apply to --input".into());
                }
                Ok(InputSpec::Strict(path))
            }
            (None, Some(path)) => Ok(InputSpec::Ingest {
                path,
                format: match format {
                    Some(name) => EdgeListFormat::parse(&name)?,
                    None => EdgeListFormat::Auto,
                },
                no_cache,
            }),
        }
    }

    fn load(self) -> Result<LoadedGraph, String> {
        match self {
            InputSpec::Strict(path) => {
                let g = read_edge_list_file(&path).map_err(|e| e.to_string())?;
                Ok(LoadedGraph {
                    graph: g,
                    original_ids: None,
                    note: format!("loaded {path}"),
                })
            }
            InputSpec::Ingest {
                path,
                format,
                no_cache,
            } => {
                let (remapped, how) = if no_cache {
                    let g = read_graph_file(&path, format).map_err(|e| e.to_string())?;
                    (g, "parsed, cache bypassed".to_string())
                } else {
                    let src = PathBuf::from(&path);
                    let (g, status) =
                        load_or_build(&src, format, None).map_err(|e| e.to_string())?;
                    let cache = cache_path_for(&src);
                    let how = match status {
                        CacheStatus::Hit => format!("cache hit: {}", cache.display()),
                        CacheStatus::Built => {
                            format!("parsed, cache written: {}", cache.display())
                        }
                        CacheStatus::Rebuilt => {
                            format!("stale cache rebuilt: {}", cache.display())
                        }
                        CacheStatus::Uncached => {
                            format!("parsed; cache not writable at {}", cache.display())
                        }
                    };
                    (g, how)
                };
                let identity = remapped.is_identity();
                Ok(LoadedGraph {
                    graph: remapped.graph,
                    original_ids: (!identity).then_some(remapped.original_ids),
                    note: format!("loaded {path} ({how})"),
                })
            }
        }
    }
}

/// The `--trace` / `--trace-out FILE` rider flags shared by `topk` and
/// `stats`: `--trace-out` implies `--trace`.
fn take_trace_flags(args: &mut Args) -> (bool, Option<PathBuf>) {
    let out = args.get("trace-out").map(PathBuf::from);
    let on = args.flag("trace") || out.is_some();
    (on, out)
}

/// Disables tracing, drains the trace, renders the span tree to stderr
/// (unless `quiet`), and writes the deterministic JSON export to `out`
/// when given. Never touches stdout: results stay byte-identical with
/// tracing on or off.
fn report_trace(quiet: bool, out: Option<&PathBuf>) -> Result<(), String> {
    lhcds::obs::set_tracing(false);
    let Some(trace) = lhcds::obs::take_trace() else {
        return Ok(());
    };
    if !quiet {
        eprint!("{}", trace.render());
    }
    if let Some(path) = out {
        let mut json = trace.to_json();
        json.push('\n');
        std::fs::write(path, json)
            .map_err(|e| format!("cannot write --trace-out {}: {e}", path.display()))?;
    }
    Ok(())
}

fn parse_pattern(name: &str) -> Result<Pattern, String> {
    Pattern::parse(name).ok_or_else(|| {
        format!(
            "unknown pattern '{name}' — try edge, triangle, 3-star, 4-path, c3-star, \
             4-loop, 2-triangle, 4-clique, or {{h}}-clique"
        )
    })
}

/// Parses the serve subcommand's `--pattern` list
/// (`"4-loop"` or `"4-loop,2-triangle"`).
fn parse_pattern_list(spec: &str) -> Result<Vec<Pattern>, String> {
    let mut ps = Vec::new();
    for part in spec.split(',') {
        let p = parse_pattern(part.trim())?;
        if !ps.contains(&p) {
            ps.push(p);
        }
    }
    Ok(ps)
}

fn cmd_topk(args: &mut Args) -> Result<(), String> {
    let k = args.get_parsed("k")?.unwrap_or(5usize);
    let h = args.get_parsed("h")?.unwrap_or(3usize);
    let basic = args.flag("basic");
    let quiet = args.flag("quiet");
    let json = args.flag("json");
    let pattern = args.get("pattern");
    let flow_reuse = match args.get("flow-reuse") {
        Some(spec) => spec.parse::<FlowReuse>()?,
        None => FlowReuse::default(),
    };
    let core_prune = args.flag("core-prune");
    let (trace, trace_out) = take_trace_flags(args);
    let parallelism = args.parallelism()?;
    let input = InputSpec::take(args)?;
    args.finish()?;
    let loaded = input.load()?;

    let g = &loaded.graph;
    if !quiet {
        eprintln!("{}: {} vertices, {} edges", loaded.note, g.n(), g.m());
    }
    let cfg = IppvConfig {
        fast_verify: !basic,
        parallelism,
        flow_reuse,
        core_prune,
        ..IppvConfig::default()
    };

    if trace {
        lhcds::obs::set_tracing(true);
    }
    let flow_before = lhcds::core::flow_stats();
    // the root span covers the solve only — load and output stay
    // outside, so the phase children account for (almost) all of it
    let root = lhcds::obs::span("topk");
    let (subgraphs, stats, eff_h) = if let Some(pname) = pattern {
        let p = parse_pattern(&pname)?;
        let res = top_k_lhxpds(g, p, k, &cfg);
        // in pattern mode "h" is the pattern arity — what the density
        // denominator’s instance size is
        (res.subgraphs, res.stats, p.arity())
    } else {
        if h < 2 {
            return Err("--h must be at least 2".into());
        }
        let res = top_k_lhcds(g, h, k, &cfg);
        (res.subgraphs, res.stats, h)
    };
    let flow = lhcds::core::flow_stats().since(&flow_before);
    if trace {
        // the flow-layer delta rides on the root span, folding the old
        // stderr flow summary into the one rendered report
        root.counter("networks_built", flow.networks_built);
        root.counter("max_flow_solves", flow.max_flow_invocations);
        root.counter("warm_solves", flow.warm_solves);
        root.counter("retract_solves", flow.retract_solves);
        root.counter("cold_solves", flow.cold_solves());
        root.counter("arcs_built", flow.arcs_built);
        root.counter("ggt_recursions", flow.ggt_recursions);
    }
    drop(root);

    if json {
        // Machine-readable output, in original file ids — the exact
        // result object the serve protocol returns for the same query
        // (shared serializer; CI diffs the two).
        let ids = |v: lhcds::graph::VertexId| loaded.display_id(v);
        let result = topk_result(
            eff_h,
            k,
            subgraphs.iter().map(|s| AnswerRow {
                vertices: &s.vertices,
                density: s.density,
                clique_count: s.clique_count,
            }),
            &ids,
        );
        println!("{}", result.render());
    } else {
        for (i, s) in subgraphs.iter().enumerate() {
            println!(
                "top-{rank}\tdensity={d}\tsize={n}\tinstances={c}\tvertices={v:?}",
                rank = i + 1,
                d = s.density,
                n = s.vertices.len(),
                c = s.clique_count,
                v = loaded.display_ids(&s.vertices),
            );
        }
    }
    if trace {
        // one report path: the span tree (with the flow counters on
        // the root) replaces the ad-hoc summary lines below
        report_trace(quiet, trace_out.as_ref())?;
    } else if !quiet {
        eprintln!(
            "{} instances enumerated | {} verifications ({} flow, {} shortcut) | {} vertices pruned",
            stats.clique_count,
            stats.verifications,
            stats.flow_verifications,
            stats.shortcut_accepts,
            stats.pruned_vertices,
        );
        eprintln!(
            "flow: {} networks built | {} max-flow solves ({} warm / {} retract / {} cold, {:.0}% warm) | {} arcs",
            flow.networks_built,
            flow.max_flow_invocations,
            flow.warm_solves,
            flow.retract_solves,
            flow.cold_solves(),
            flow.warm_hit_rate() * 100.0,
            flow.arcs_built,
        );
        if flow.ggt_recursions > 0 {
            eprintln!(
                "ggt:  {} recursions (depth {}) | {} nodes contracted | {} arcs saved",
                flow.ggt_recursions,
                flow.ggt_max_depth,
                flow.ggt_contracted_nodes,
                flow.ggt_arcs_saved,
            );
        }
    }
    Ok(())
}

fn cmd_stats(args: &mut Args) -> Result<(), String> {
    let h = args.get_parsed("h")?.unwrap_or(3usize);
    let json = args.flag("json");
    let core_prune = args.flag("core-prune");
    let pattern = args.get("pattern").map(|n| parse_pattern(&n)).transpose()?;
    let (trace, trace_out) = take_trace_flags(args);
    let parallelism = args.parallelism()?;
    let input = InputSpec::take(args)?;
    args.finish()?;
    let loaded = input.load()?;
    let g = &loaded.graph;
    if trace {
        lhcds::obs::set_tracing(true);
    }
    let root = lhcds::obs::span("stats");
    // `--pattern` rides along: the instance count of the named pattern
    // (the |Psi| the LhxPDS pipeline would mine), enumerated with the
    // same `--threads` setting as everything else.
    let pattern_instances =
        pattern.map(|p| (p, enumerate_pattern_with(g, p, &parallelism).len() as u64));
    if !json {
        eprintln!("{}", loaded.note);
    }
    // `--core-prune` preview: the verifier universe that flag buys on
    // `topk`/`serve` — the `(h−1)`-core (every h-clique lives inside it,
    // so shrinking the shared networks to it changes no verdict).
    let core_universe = core_prune
        .then(|| lhcds::graph::core_decomp::k_core_vertices(g, h.saturating_sub(1) as u32).len());
    let deg = lhcds::graph::core_decomp::degeneracy_order(g);
    let clique_no = lhcds::clique::clique_number(g);
    let mut psi: Vec<(usize, u64)> = Vec::new();
    for hh in [3usize, h.max(3)] {
        psi.push((hh, lhcds::clique::par_count_cliques(g, hh, &parallelism)));
        if hh == h.max(3) {
            break;
        }
    }
    drop(root);
    if trace {
        report_trace(false, trace_out.as_ref())?;
    }
    // Process-total flow counters, rendered by the same serializer the
    // daemon's `stats` op uses — batch and served telemetry are
    // string-identical. Graph statistics never run max-flow, so on this
    // path every counter stays at its process-start value (zero for a
    // one-shot CLI invocation): the flow-free contract, visible.
    let flow = lhcds::core::flow_stats();
    if json {
        let mut pairs = vec![
            ("vertices", Json::Int(g.n() as i128)),
            ("edges", Json::Int(g.m() as i128)),
            ("max_degree", Json::Int(g.max_degree() as i128)),
            ("degeneracy", Json::Int(deg.degeneracy as i128)),
            ("clique_number", Json::Int(clique_no as i128)),
            (
                "clique_counts",
                Json::Array(
                    psi.iter()
                        .map(|&(hh, c)| {
                            Json::Object(vec![
                                ("h".into(), Json::Int(hh as i128)),
                                ("count".into(), Json::Int(c as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(c) = core_universe {
            pairs.push(("core_prune_universe", Json::Int(c as i128)));
        }
        if let Some((p, count)) = &pattern_instances {
            pairs.push(("pattern", Json::Str(p.to_string())));
            pairs.push(("pattern_instances", Json::Int(*count as i128)));
        }
        pairs.push(("flow", flow_stats_json(&flow)));
        let result = Json::object(pairs);
        println!("{}", result.render());
        return Ok(());
    }
    println!("vertices:    {}", g.n());
    println!("edges:       {}", g.m());
    println!("max degree:  {}", g.max_degree());
    println!("degeneracy:  {}", deg.degeneracy);
    println!("clique no.:  {}", clique_no);
    if let Some(c) = core_universe {
        println!(
            "core-prune:  {c} vertices in the {}-core verifier universe",
            h.saturating_sub(1)
        );
    }
    for (hh, c) in psi {
        println!("|Psi_{hh}|:     {c}");
    }
    if let Some((p, count)) = &pattern_instances {
        println!("pattern:     {p} ({count} instances)");
    }
    println!(
        "flow:        {} networks, {} solves ({} warm / {} retract / {} cold), {} ggt recursions",
        flow.networks_built,
        flow.max_flow_invocations,
        flow.warm_solves,
        flow.retract_solves,
        flow.cold_solves(),
        flow.ggt_recursions,
    );
    Ok(())
}

/// Parses the serve subcommand's `--h` list (`"3"` or `"2,3,4"`).
fn parse_h_list(spec: &str) -> Result<Vec<usize>, String> {
    let mut hs = Vec::new();
    for part in spec.split(',') {
        let h: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("invalid clique size '{part}' in --h"))?;
        if h < 2 {
            return Err("--h entries must be at least 2".into());
        }
        if !hs.contains(&h) {
            hs.push(h);
        }
    }
    Ok(hs)
}

/// `lhcds serve` — build/load one decomposition index per requested h
/// and/or pattern, and answer protocol queries until shutdown.
fn cmd_serve(args: &mut Args) -> Result<(), String> {
    let h_spec = args.get("h");
    let pattern_spec = args.get("pattern");
    // `--h 2,3` and `--pattern 4-loop,2-triangle` compose: the daemon
    // hosts one index per entry. With only `--pattern`, no implicit
    // h=3 index is added; with neither, h=3 is the default.
    let hs = match &h_spec {
        Some(spec) => parse_h_list(spec)?,
        None if pattern_spec.is_some() => Vec::new(),
        None => vec![3],
    };
    let mut patterns: Vec<Pattern> = hs.iter().map(|&h| Pattern::Clique(h)).collect();
    if let Some(spec) = &pattern_spec {
        for p in parse_pattern_list(spec)? {
            if !patterns.iter().any(|q| q.key() == p.key()) {
                patterns.push(p);
            }
        }
    }
    let k_max: usize = args.get_parsed("k-max")?.unwrap_or(32);
    if k_max == 0 {
        return Err("--k-max must be at least 1".into());
    }
    let host = args.get("host").unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = args.get_parsed("port")?.unwrap_or(0);
    let workers: usize = args.get_parsed("workers")?.unwrap_or(4);
    let slow_query_ms: u64 = args
        .get_parsed("slow-query-ms")?
        .unwrap_or(ServeOptions::default().slow_query_ms);
    let max_request_bytes: usize = args
        .get_parsed("max-request-bytes")?
        .unwrap_or(ServeOptions::default().max_request_bytes);
    let request_deadline_ms: u64 = args
        .get_parsed("deadline-ms")?
        .unwrap_or(ServeOptions::default().request_deadline_ms);
    let max_pending: usize = args
        .get_parsed("max-pending")?
        .unwrap_or(ServeOptions::default().max_pending);
    let fault_schedule = args.get("fault-schedule");
    let port_file = args.get("port-file").map(PathBuf::from);
    let quiet = args.flag("quiet");
    let core_prune = args.flag("core-prune");
    let parallelism = args.parallelism()?;
    let input = InputSpec::take(args)?;
    args.finish()?;

    // Arm the deterministic fault-injection registry before any index
    // is loaded, so `index_load` / `cache_corrupt` rules can fire
    // during startup too — chaos tests depend on that ordering.
    if let Some(spec) = &fault_schedule {
        let schedule = lhcds::obs::fault::FaultSchedule::parse(spec)
            .map_err(|e| format!("bad --fault-schedule: {e}"))?;
        lhcds::obs::fault::arm(schedule);
        eprintln!("fault injection armed: {spec}");
    }

    let index_config = IndexConfig {
        k_max,
        ippv: IppvConfig {
            parallelism,
            core_prune,
            ..IppvConfig::default()
        },
    };
    let note = |msg: &str| {
        if !quiet {
            eprintln!("{msg}");
        }
    };

    // Build or binary-load one index per h / pattern. Only the
    // ingest-with-cache path persists (`FILE.<key>.lhcdsidx`, keyed on
    // the source stamp + pattern key); strict/--no-cache inputs build
    // in memory.
    let served = match input {
        InputSpec::Ingest {
            ref path,
            format,
            no_cache: false,
        } => {
            let src = PathBuf::from(path);
            let opts = IndexBuildOptions {
                config: index_config.clone(),
                cache_path: None,
                no_graph_cache: false,
            };
            // load the (possibly multi-gigabyte) graph exactly once;
            // each pattern then only reads/builds its own index snapshot
            let (remapped, graph_status) =
                load_or_build(&src, format, None).map_err(|e| e.to_string())?;
            note(&format!(
                "graph: {} vertices, {} edges ({graph_status:?})",
                remapped.graph.n(),
                remapped.graph.m()
            ));
            let mut served = ServedIndexes {
                name: path.clone(),
                n: remapped.graph.n(),
                m: remapped.graph.m(),
                original_ids: (!remapped.is_identity()).then_some(remapped.original_ids.clone()),
                indexes: std::collections::BTreeMap::new(),
                failed: std::collections::BTreeMap::new(),
            };
            // A pattern whose index fails to load/build does not kill
            // the daemon: it is recorded as failed (the `health` op
            // reports `degraded`) and the remaining patterns serve.
            for &p in &patterns {
                match build_or_load_pattern_index_for(&src, &remapped, p, &opts) {
                    Ok((idx, status)) => {
                        note(&format!(
                            "index {}: {} subgraphs ({status:?})",
                            p.key(),
                            idx.len()
                        ));
                        served.insert(idx);
                    }
                    Err(e) => {
                        eprintln!("index {}: load failed ({e}); serving degraded", p.key());
                        served.failed.insert(p.key(), e.to_string());
                    }
                }
            }
            if served.indexes.is_empty() {
                return Err("no index loaded successfully; refusing to serve".into());
            }
            served
        }
        other => {
            let name = match &other {
                InputSpec::Strict(p) | InputSpec::Ingest { path: p, .. } => p.clone(),
            };
            let loaded = other.load()?;
            let mut served = ServedIndexes {
                name,
                n: loaded.graph.n(),
                m: loaded.graph.m(),
                original_ids: loaded.original_ids,
                indexes: std::collections::BTreeMap::new(),
                failed: std::collections::BTreeMap::new(),
            };
            for &p in &patterns {
                let idx = build_pattern_index(&loaded.graph, p, &index_config);
                note(&format!(
                    "index {}: {} subgraphs (built in memory)",
                    p.key(),
                    idx.len()
                ));
                served.insert(idx);
            }
            served
        }
    };
    let served_keys: Vec<String> = served.indexes.keys().cloned().collect();

    let opts = ServeOptions {
        workers,
        slow_query_ms,
        max_request_bytes,
        request_deadline_ms,
        max_pending,
        ..ServeOptions::default()
    };
    let server = Server::bind((host.as_str(), port), served, &opts)
        .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?;
    let addr = server.local_addr();
    // stdout carries exactly one machine-parseable line; everything
    // else goes to stderr
    println!(
        "lhcds-serve listening on {addr} (patterns={served_keys:?}, k_max={k_max}, workers={workers})"
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Some(pf) = &port_file {
        std::fs::write(pf, format!("{addr}\n"))
            .map_err(|e| format!("cannot write --port-file {}: {e}", pf.display()))?;
    }

    // SIGTERM/ctrl-c → graceful stop; the protocol `shutdown` op flips
    // the same server-side flag.
    signals::install();
    let handle = server.shutdown_handle();
    while !signals::requested() && !handle.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    note("shutting down: draining in-flight requests…");
    server.join();
    note("shutdown complete");
    if let Some(pf) = &port_file {
        std::fs::remove_file(pf).ok();
    }
    Ok(())
}

/// `lhcds query <action>` — one-shot protocol client.
fn cmd_query(args: &mut Args) -> Result<(), String> {
    let action = args.command.clone();
    let host = args.get("host").unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = args
        .get_parsed("port")?
        .ok_or_else(|| "missing --port (the port `lhcds serve` printed)".to_string())?;
    let timeout: u64 = args.get_parsed("timeout")?.unwrap_or(10);
    let h: Option<usize> = args.get_parsed("h")?;
    let pattern = args.get("pattern");
    let k: usize = args.get_parsed("k")?.unwrap_or(5);
    let vertex: Option<u64> = args.get_parsed("vertex")?;
    let retries: u32 = args.get_parsed("retries")?.unwrap_or(0);
    let retry_base_ms: u64 = args.get_parsed("retry-base-ms")?.unwrap_or(10);
    args.finish()?;

    // `--h`/`--pattern` compose into one IndexRef; the daemon resolves
    // both to the same canonical pattern key. With neither flag the
    // historical default (h = 3) applies.
    let index = match (h, &pattern) {
        (None, None) => IndexRef::clique(3),
        (Some(h), None) => IndexRef::clique(h),
        (h, Some(name)) => IndexRef {
            h,
            pattern: Some(name.clone()),
        },
    };
    let need_vertex = || vertex.ok_or_else(|| format!("'{action}' needs --vertex"));
    let request = match action.as_str() {
        "top-k" => Request::TopK { index, k },
        "density-of" => Request::DensityOf {
            index,
            vertex: need_vertex()?,
        },
        "membership" => Request::Membership {
            index,
            vertex: need_vertex()?,
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "health" => Request::Health,
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        "" => return Err(
            "missing query action: top-k | density-of | membership | stats | metrics | health | ping | shutdown"
                .into(),
        ),
        other => {
            return Err(format!(
                "unknown query action '{other}' — try top-k | density-of | membership | stats | metrics | health | ping | shutdown"
            ))
        }
    };
    let addr = format!("{host}:{port}");
    // `--retries N` wraps the round trip in the capped-backoff policy;
    // only idempotent read ops are ever retried, and only on
    // connect/timeout/`overloaded` — a shutdown is never resent.
    let policy = lhcds::service::RetryPolicy {
        max_attempts: retries.saturating_add(1),
        base_delay: Duration::from_millis(retry_base_ms.max(1)),
        ..lhcds::service::RetryPolicy::default()
    };
    let result = client::query_with_retry(
        &addr,
        &request,
        Duration::from_secs(timeout.max(1)),
        &policy,
    )
    .map_err(|e| e.to_string())?;
    // `metrics` carries a text exposition inside the JSON result —
    // print it raw so the output can be scraped/curled directly
    match request {
        Request::Metrics => match result.get("exposition").and_then(Json::as_str) {
            Some(text) => print!("{text}"),
            None => println!("{}", result.render()),
        },
        _ => println!("{}", result.render()),
    }
    Ok(())
}

/// `lhcds datasets <action>` — manage the real-dataset manifest.
fn cmd_datasets(args: &mut Args) -> Result<(), String> {
    let action = args.command.clone();
    let manifest_path = args
        .get("manifest")
        .map(PathBuf::from)
        .unwrap_or_else(DatasetRegistry::default_path);
    let name = args.get("name");
    args.finish()?;

    // `fetch-instructions` is the one action that works without a
    // manifest: it prints a template to get the user started.
    if action == "fetch-instructions" && !manifest_path.is_file() {
        println!(
            "# No manifest at {} — start from this template:\n",
            manifest_path.display()
        );
        println!("{}", table2_template());
        return Ok(());
    }
    let registry = DatasetRegistry::load(&manifest_path)?;
    let selected: Vec<_> = match &name {
        Some(n) => vec![registry
            .get(n)
            .ok_or_else(|| format!("no dataset '{n}' in {}", manifest_path.display()))?],
        None => registry.entries().iter().collect(),
    };

    match action.as_str() {
        "list" => {
            let header = ["name", "abbr", "|V| expected", "|E| expected", "status"];
            println!(
                "{:<24} {:<6} {:>12} {:>12}  {}",
                header[0], header[1], header[2], header[3], header[4]
            );
            for e in selected {
                let status = if !e.is_present() {
                    "missing".to_string()
                } else if cache_path_for(&e.path).is_file() {
                    "present, cached".to_string()
                } else {
                    "present, no cache".to_string()
                };
                let opt = |v: Option<u64>| v.map_or("-".into(), |x| x.to_string());
                println!(
                    "{:<24} {:<6} {:>12} {:>12}  {}",
                    e.name,
                    e.abbr.as_deref().unwrap_or("-"),
                    opt(e.vertices),
                    opt(e.edges),
                    status
                );
            }
            Ok(())
        }
        "fetch-instructions" => {
            for e in selected {
                let status = if e.is_present() {
                    "already present"
                } else {
                    "missing"
                };
                println!("{} ({status})", e.name);
                println!(
                    "  download page: {}",
                    e.url.as_deref().unwrap_or("(no url recorded)")
                );
                println!("  expected path: {}", e.path.display());
            }
            println!("\nAfter downloading, run `lhcds datasets verify` to validate and cache.");
            Ok(())
        }
        "cache" | "verify" => {
            let mut failures = 0usize;
            let mut skipped = 0usize;
            for e in &selected {
                if !e.is_present() {
                    // explicit --name must fail hard; bulk runs just report
                    if name.is_some() {
                        return Err(format!(
                            "dataset '{}': file not found at {}",
                            e.name,
                            e.path.display()
                        ));
                    }
                    println!("{:<24} skipped (file missing)", e.name);
                    skipped += 1;
                    continue;
                }
                match e.load() {
                    Ok((g, status)) => println!(
                        "{:<24} ok: {} vertices, {} edges ({})",
                        e.name,
                        g.graph.n(),
                        g.graph.m(),
                        match status {
                            CacheStatus::Hit => "cache hit",
                            CacheStatus::Built => "cache built",
                            CacheStatus::Rebuilt => "cache rebuilt",
                            CacheStatus::Uncached => "cache not writable",
                        }
                    ),
                    Err(err) => {
                        println!("{:<24} FAILED: {err}", e.name);
                        failures += 1;
                    }
                }
            }
            if failures > 0 {
                return Err(format!("{failures} dataset(s) failed verification"));
            }
            if skipped > 0 && skipped == selected.len() {
                println!("(no dataset files present — see `lhcds datasets fetch-instructions`)");
            }
            Ok(())
        }
        "" => Err("missing datasets action: list | fetch-instructions | cache | verify".into()),
        other => Err(format!(
            "unknown datasets action '{other}' — try list | fetch-instructions | cache | verify"
        )),
    }
}

fn cmd_gen(args: &mut Args) -> Result<(), String> {
    let out = args.required("out")?;
    let preset = args.required("preset")?;
    let scale: f64 = args.get_parsed("scale")?.unwrap_or(1.0);
    args.finish()?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    let spec = lhcds::data::datasets::by_abbr(&preset)
        .ok_or_else(|| format!("unknown preset '{preset}'"))?;
    let d = spec.generate_scaled(scale);
    write_edge_list_file(&d.graph, &out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} stand-in, scale {}): {} vertices, {} edges",
        out,
        spec.name,
        scale,
        d.graph.n(),
        d.graph.m()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_names_parse() {
        for (name, arity) in [
            ("3-star", 4),
            ("4-path", 4),
            ("c3-star", 4),
            ("4-loop", 4),
            ("2-triangle", 4),
            ("4-clique", 4),
        ] {
            let p = parse_pattern(name).unwrap();
            assert_eq!(p.arity(), arity, "{name}");
        }
        assert!(parse_pattern("pentagon").is_err());
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(run(vec!["frobnicate".into()]).is_err());
    }

    #[test]
    fn help_runs() {
        assert!(run(vec!["help".into()]).is_ok());
        assert!(run(vec![]).is_ok());
    }

    fn fixture() -> String {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../data/fixtures/figure2.txt")
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn input_path_loads_and_matches_builtin_decomposition() {
        let dir = std::env::temp_dir().join("lhcds_cli_input_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.txt");
        std::fs::copy(fixture(), &path).unwrap();
        let path_s = path.to_string_lossy().into_owned();

        // --input works end-to-end, both cold (cache build) and warm (hit)
        for _ in 0..2 {
            run(vec![
                "topk".into(),
                "--input".into(),
                path_s.clone(),
                "--k".into(),
                "2".into(),
                "--quiet".into(),
            ])
            .unwrap();
        }
        run(vec!["stats".into(), "--input".into(), path_s.clone()]).unwrap();
        run(vec![
            "topk".into(),
            "--input".into(),
            path_s.clone(),
            "--no-cache".into(),
            "--format".into(),
            "snap".into(),
            "--k".into(),
            "1".into(),
            "--quiet".into(),
        ])
        .unwrap();

        // acceptance contract: the ingested fixture decomposes exactly
        // like the equivalent builtin graph
        let ingested = read_graph_file(&path, EdgeListFormat::Auto).unwrap();
        let builtin = lhcds::data::figure2_graph();
        assert_eq!(ingested.graph, builtin);
        let a = top_k_lhcds(&ingested.graph, 3, 3, &IppvConfig::default());
        let b = top_k_lhcds(&builtin, 3, 3, &IppvConfig::default());
        assert_eq!(a.subgraphs, b.subgraphs);

        // input-option misuse
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path_s.clone(),
            "--input".into(),
            path_s.clone(),
        ])
        .is_err());
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path_s.clone(),
            "--format".into(),
            "csv".into(),
        ])
        .is_err());
        assert!(run(vec![
            "topk".into(),
            "--input".into(),
            path_s.clone(),
            "--format".into(),
            "xml".into(),
        ])
        .is_err());
        assert!(run(vec!["topk".into(), "--quiet".into()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flow_reuse_flag_parses_all_tiers() {
        for tier in ["scratch", "warm", "ggt"] {
            run(vec![
                "topk".into(),
                "--graph".into(),
                fixture(),
                "--k".into(),
                "2".into(),
                "--flow-reuse".into(),
                tier.into(),
                "--quiet".into(),
            ])
            .unwrap();
        }
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            fixture(),
            "--flow-reuse".into(),
            "eager".into(),
            "--quiet".into(),
        ])
        .is_err());
    }

    #[test]
    fn core_prune_flag_reaches_all_pipeline_commands() {
        // topk and stats accept --core-prune (the Core-Exact wiring);
        // results are pinned equal to the un-pruned run by the
        // workspace `core_prune` equivalence suites, so here we assert
        // the flag parses and the commands succeed end-to-end.
        run(vec![
            "topk".into(),
            "--graph".into(),
            fixture(),
            "--k".into(),
            "2".into(),
            "--core-prune".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec![
            "stats".into(),
            "--graph".into(),
            fixture(),
            "--core-prune".into(),
            "--json".into(),
        ])
        .unwrap();
        // flags are strict: a command without the knob rejects it
        assert!(run(vec![
            "gen".into(),
            "--out".into(),
            "/tmp/never-written.txt".into(),
            "--preset".into(),
            "HA".into(),
            "--core-prune".into(),
        ])
        .is_err());
    }

    #[test]
    fn datasets_subcommand_lifecycle() {
        let dir = std::env::temp_dir().join("lhcds_cli_datasets_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::copy(fixture(), dir.join("figure2.txt")).unwrap();
        let manifest = dir.join("datasets.toml");
        std::fs::write(
            &manifest,
            "[figure2]\nabbr = \"F2\"\npath = \"figure2.txt\"\nvertices = 20\nedges = 39\n\
             [absent]\npath = \"not-downloaded.txt\"\n",
        )
        .unwrap();
        let m = manifest.to_string_lossy().into_owned();
        let with_manifest = |action: &str| {
            vec![
                "datasets".into(),
                action.to_string(),
                "--manifest".into(),
                m.clone(),
            ]
        };

        run(with_manifest("list")).unwrap();
        run(with_manifest("fetch-instructions")).unwrap();
        run(with_manifest("cache")).unwrap();
        run(with_manifest("verify")).unwrap();
        // per-name selection
        let mut v = with_manifest("verify");
        v.extend(["--name".into(), "F2".into()]);
        run(v).unwrap();
        // explicit --name on a missing file fails hard
        let mut v = with_manifest("cache");
        v.extend(["--name".into(), "absent".into()]);
        assert!(run(v).is_err());
        // unknown name / action / missing action
        let mut v = with_manifest("verify");
        v.extend(["--name".into(), "nope".into()]);
        assert!(run(v).is_err());
        assert!(run(with_manifest("frobnicate")).is_err());
        assert!(run(vec!["datasets".into()]).is_err());

        // a validation mismatch is a hard error
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 21\n",
        )
        .unwrap();
        assert!(run(with_manifest("verify")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn datasets_verify_exit_code_contract() {
        // The satellite contract: a manifest |V|/|E| mismatch must make
        // the *process exit code* non-zero, not just print a line.
        let dir = std::env::temp_dir().join("lhcds_cli_verify_exit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::copy(fixture(), dir.join("figure2.txt")).unwrap();
        let manifest = dir.join("datasets.toml");
        let m = manifest.to_string_lossy().into_owned();
        let verify = |m: &str| {
            run_to_exit_code(vec![
                "datasets".into(),
                "verify".into(),
                "--manifest".into(),
                m.into(),
            ])
        };

        // correct expectations → exit 0
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 20\nedges = 39\n",
        )
        .unwrap();
        assert_eq!(verify(&m), 0);

        // wrong |V| → non-zero
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 21\nedges = 39\n",
        )
        .unwrap();
        assert_eq!(verify(&m), 2, "|V| mismatch must fail the process");

        // wrong |E| → non-zero
        std::fs::write(
            &manifest,
            "[figure2]\npath = \"figure2.txt\"\nvertices = 20\nedges = 40\n",
        )
        .unwrap();
        assert_eq!(verify(&m), 2, "|E| mismatch must fail the process");

        // the same contract holds for `cache` (it loads + validates too)
        assert_eq!(
            run_to_exit_code(vec![
                "datasets".into(),
                "cache".into(),
                "--manifest".into(),
                m.clone(),
            ]),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn topk_json_matches_shared_serializer_and_original_ids() {
        let dir = std::env::temp_dir().join("lhcds_cli_json_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // non-contiguous original ids: a triangle on {100, 205, 300}
        let path = dir.join("g.txt");
        std::fs::write(&path, "100 205\n205 300\n300 100\n").unwrap();
        let path_s = path.to_string_lossy().into_owned();

        // --json runs end-to-end on both input paths
        run(vec![
            "topk".into(),
            "--input".into(),
            path_s.clone(),
            "--k".into(),
            "1".into(),
            "--json".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec![
            "stats".into(),
            "--input".into(),
            path_s.clone(),
            "--json".into(),
        ])
        .unwrap();

        // the JSON the CLI prints is exactly the shared serializer's
        // output, with original file ids
        let ingested = read_graph_file(&path, EdgeListFormat::Auto).unwrap();
        let res = top_k_lhcds(&ingested.graph, 3, 1, &IppvConfig::default());
        let ids = |v: lhcds::graph::VertexId| ingested.original_ids[v as usize];
        let expected = topk_result(
            3,
            1,
            res.subgraphs.iter().map(|s| AnswerRow {
                vertices: &s.vertices,
                density: s.density,
                clique_count: s.clique_count,
            }),
            &ids,
        );
        let rendered = expected.render();
        assert!(
            rendered.contains("\"vertices\":[100,205,300]"),
            "{rendered}"
        );

        // pattern mode accepts --json too
        run(vec![
            "topk".into(),
            "--graph".into(),
            {
                let p = dir.join("compact.txt");
                std::fs::write(&p, "0 1\n1 2\n2 0\n2 3\n").unwrap();
                p.to_string_lossy().into_owned()
            },
            "--pattern".into(),
            "4-path".into(),
            "--k".into(),
            "1".into(),
            "--json".into(),
            "--quiet".into(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_flags_write_deterministic_span_json() {
        let dir = std::env::temp_dir().join("lhcds_cli_trace_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json");
        run(vec![
            "topk".into(),
            "--graph".into(),
            fixture(),
            "--k".into(),
            "2".into(),
            "--trace-out".into(),
            out.to_string_lossy().into_owned(),
            "--quiet".into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("{\"spans\":["), "{text}");
        for phase in [
            "\"name\":\"topk\"",
            "\"name\":\"enumerate\"",
            "\"name\":\"verify\"",
        ] {
            assert!(text.contains(phase), "missing {phase} in {text}");
        }
        // the flow counters ride on the root span
        assert!(text.contains("\"max_flow_solves\""), "{text}");
        // --trace alone renders to stderr only; no file, still succeeds
        run(vec![
            "stats".into(),
            "--graph".into(),
            fixture(),
            "--trace".into(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_query_round_trip() {
        use lhcds::service::json::Json;

        let dir = std::env::temp_dir().join("lhcds_cli_serve_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.txt");
        std::fs::copy(fixture(), &path).unwrap();
        let path_s = path.to_string_lossy().into_owned();
        let port_file = dir.join("port");

        // daemon on an ephemeral port, address published via --port-file
        let serve_args = vec![
            "serve".into(),
            "--input".into(),
            path_s.clone(),
            "--h".into(),
            "2,3".into(),
            "--pattern".into(),
            "4-loop".into(),
            "--k-max".into(),
            "8".into(),
            "--port".into(),
            "0".into(),
            "--port-file".into(),
            port_file.to_string_lossy().into_owned(),
            // Core-Exact wiring: the daemon prunes verifier networks to
            // the (h−1)-core; the served-vs-batch equality below then
            // doubles as a core-prune invisibility check.
            "--core-prune".into(),
            // retain every request in the slow-query ring (threshold 0)
            "--slow-query-ms".into(),
            "0".into(),
            "--quiet".into(),
        ];
        let daemon = std::thread::spawn(move || run(serve_args));

        // wait for the daemon to publish its address
        let addr = {
            let mut waited = 0u64;
            loop {
                if let Ok(s) = std::fs::read_to_string(&port_file) {
                    if s.trim().ends_with(|c: char| c.is_ascii_digit()) && !s.trim().is_empty() {
                        break s.trim().to_string();
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
                waited += 20;
                assert!(waited < 30_000, "daemon never published its port");
            }
        };
        let (host, port) = addr.rsplit_once(':').unwrap();
        let base = |action: &str| {
            vec![
                "query".into(),
                action.to_string(),
                "--host".into(),
                host.to_string(),
                "--port".into(),
                port.to_string(),
            ]
        };

        // round trips: ping, top-k, density-of, membership, stats
        run(base("ping")).unwrap();
        let mut v = base("top-k");
        v.extend(["--h".into(), "3".into(), "--k".into(), "2".into()]);
        run(v).unwrap();
        let mut v = base("density-of");
        v.extend(["--h".into(), "3".into(), "--vertex".into(), "11".into()]);
        run(v).unwrap();
        let mut v = base("membership");
        v.extend(["--h".into(), "2".into(), "--vertex".into(), "0".into()]);
        run(v).unwrap();
        let mut v = base("top-k");
        v.extend([
            "--pattern".into(),
            "4-loop".into(),
            "--k".into(),
            "2".into(),
        ]);
        run(v).unwrap();
        run(base("stats")).unwrap();
        run(base("metrics")).unwrap();
        run(base("health")).unwrap();
        // --retries composes with any idempotent action (no fault here;
        // the first attempt simply succeeds)
        let mut v = base("ping");
        v.extend(["--retries".into(), "2".into()]);
        run(v).unwrap();

        // every index loaded, so health reports ok with three ready rows
        let health = client::query(&addr, &Request::Health, Duration::from_secs(10)).unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.get("indexes_ready").unwrap().as_u64(), Some(3));
        assert_eq!(health.get("indexes_failed").unwrap().as_u64(), Some(0));

        // the metrics op exposes Prometheus text with per-op counters
        let metrics = client::query(&addr, &Request::Metrics, Duration::from_secs(10)).unwrap();
        let text = metrics.get("exposition").unwrap().as_str().unwrap();
        assert!(
            text.contains("lhcds_requests_total{op=\"top_k\"}"),
            "{text}"
        );
        assert!(
            text.contains("lhcds_slow_query_threshold_milliseconds 0"),
            "{text}"
        );

        // served answer == batch answer (string-identical result JSON)
        let served = client::query(
            &addr,
            &Request::TopK {
                index: IndexRef::clique(3),
                k: 2,
            },
            Duration::from_secs(10),
        )
        .unwrap();
        let g = lhcds::data::figure2_graph();
        let fresh = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
        let ids = |v: lhcds::graph::VertexId| u64::from(v);
        let batch = topk_result(
            3,
            2,
            fresh.subgraphs.iter().map(|s| AnswerRow {
                vertices: &s.vertices,
                density: s.density,
                clique_count: s.clique_count,
            }),
            &ids,
        );
        assert_eq!(served.render(), batch.render());

        // same for a non-clique pattern: the daemon's 4-loop answer is
        // string-identical to a fresh LhxPDS run
        let served = client::query(
            &addr,
            &Request::TopK {
                index: IndexRef::pattern("4-loop"),
                k: 2,
            },
            Duration::from_secs(10),
        )
        .unwrap();
        let fresh = top_k_lhxpds(&g, Pattern::Cycle4, 2, &IppvConfig::default());
        let batch = topk_result(
            4,
            2,
            fresh.subgraphs.iter().map(|s| AnswerRow {
                vertices: &s.vertices,
                density: s.density,
                clique_count: s.clique_count,
            }),
            &ids,
        );
        assert_eq!(served.render(), batch.render());

        // protocol errors surface as CLI errors (exit non-zero), but do
        // not kill the daemon
        let mut v = base("top-k");
        v.extend(["--h".into(), "9".into()]);
        assert_eq!(run_to_exit_code(v), 2);
        let pong = client::query(&addr, &Request::Ping, Duration::from_secs(10)).unwrap();
        assert_eq!(pong, Json::Str("pong".into()));

        // query usage errors
        assert!(run(base("density-of")).is_err(), "--vertex required");
        assert!(run(base("frobnicate")).is_err());
        assert!(
            run(vec!["query".into(), "ping".into()]).is_err(),
            "--port required"
        );

        // shutdown: daemon drains and the serve command returns Ok
        run(base("shutdown")).unwrap();
        daemon.join().unwrap().unwrap();

        // restart hits the persisted LHCDSIDX (exercised by a second
        // in-memory check: the index cache file exists next to the input)
        assert!(dir.join("figure2.txt.h3.lhcdsidx").is_file());
        assert!(dir.join("figure2.txt.h2.lhcdsidx").is_file());
        assert!(dir.join("figure2.txt.4-loop.lhcdsidx").is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_input_validation() {
        // bad h list / k-max / missing input are caught before binding
        assert!(run(vec!["serve".into()]).is_err());
        assert!(run(vec![
            "serve".into(),
            "--graph".into(),
            "nope.txt".into(),
            "--h".into(),
            "1".into(),
        ])
        .is_err());
        assert!(run(vec![
            "serve".into(),
            "--graph".into(),
            "nope.txt".into(),
            "--h".into(),
            "x".into(),
        ])
        .is_err());
        assert!(run(vec![
            "serve".into(),
            "--graph".into(),
            "nope.txt".into(),
            "--k-max".into(),
            "0".into(),
        ])
        .is_err());
        // a malformed --fault-schedule is rejected before anything is
        // armed or loaded (the registry stays untouched for other tests)
        let err = run(vec![
            "serve".into(),
            "--graph".into(),
            "nope.txt".into(),
            "--fault-schedule".into(),
            "bogus_point=1".into(),
        ])
        .unwrap_err();
        assert!(err.contains("bad --fault-schedule"), "{err}");
        assert!(!lhcds::obs::fault::armed());
    }

    #[test]
    fn datasets_fetch_instructions_without_manifest_prints_template() {
        let missing = std::env::temp_dir()
            .join("lhcds_cli_no_such_dir")
            .join("datasets.toml");
        run(vec![
            "datasets".into(),
            "fetch-instructions".into(),
            "--manifest".into(),
            missing.to_string_lossy().into_owned(),
        ])
        .unwrap();
        // but every other action needs the manifest to exist
        assert!(run(vec![
            "datasets".into(),
            "list".into(),
            "--manifest".into(),
            missing.to_string_lossy().into_owned(),
        ])
        .is_err());
    }

    #[test]
    fn gen_and_topk_round_trip() {
        let dir = std::env::temp_dir().join("lhcds_cli_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt").to_string_lossy().into_owned();
        run(vec![
            "gen".into(),
            "--out".into(),
            path.clone(),
            "--preset".into(),
            "HA".into(),
            "--scale".into(),
            "0.05".into(),
        ])
        .unwrap();
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--k".into(),
            "2".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec!["stats".into(), "--graph".into(), path.clone()]).unwrap();
        // multi-threaded enumeration accepts the same inputs
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--k".into(),
            "2".into(),
            "--threads".into(),
            "4".into(),
            "--quiet".into(),
        ])
        .unwrap();
        run(vec![
            "stats".into(),
            "--graph".into(),
            path.clone(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--threads".into(),
            "lots".into(),
            "--quiet".into(),
        ])
        .is_err());
        // pattern mode
        run(vec![
            "topk".into(),
            "--graph".into(),
            path.clone(),
            "--pattern".into(),
            "2-triangle".into(),
            "--k".into(),
            "1".into(),
            "--quiet".into(),
        ])
        .unwrap();
        // error paths
        assert!(run(vec!["topk".into()]).is_err());
        assert!(run(vec![
            "gen".into(),
            "--out".into(),
            path,
            "--preset".into(),
            "NOPE".into()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
