//! `(k, ψh)`-core decomposition (Definition 5 of the paper).
//!
//! The `(k, ψh)`-core is the largest subgraph in which every vertex is
//! contained in at least `k` h-cliques; a vertex's h-clique-core number
//! is the largest `k` whose core contains it. Peeling by current
//! h-clique degree computes all core numbers in one sweep, exactly like
//! the edge-core algorithm but with clique degrees: removing a vertex
//! kills every stored clique through it and decrements the other
//! members' degrees.

use crate::store::CliqueSet;
use lhcds_graph::VertexId;

/// Output of the h-clique core decomposition.
#[derive(Debug, Clone)]
pub struct CliqueCore {
    /// `core[v]` = h-clique-core number of `v` (`core_G(v, ψh)`).
    pub core: Vec<u64>,
    /// Peeling order (vertices in non-decreasing removal level).
    pub order: Vec<VertexId>,
    /// Largest core number (`k_max`).
    pub max_core: u64,
}

/// Computes h-clique core numbers by peeling minimum-clique-degree
/// vertices. `O(h · |Ψh| + n)` after enumeration: every clique is
/// killed exactly once and touches `h` incidence entries.
pub fn clique_core(cliques: &CliqueSet) -> CliqueCore {
    let n = cliques.n();
    let mut degree: Vec<usize> = (0..n).map(|v| cliques.degree(v as VertexId)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    let mut bucket: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        bucket[d].push(v as VertexId);
    }

    let mut removed = vec![false; n];
    let mut clique_dead = vec![false; cliques.len()];
    let mut core = vec![0u64; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = 0usize;
    let mut level = 0u64;

    for _ in 0..n {
        let v = loop {
            while cur <= max_deg && bucket[cur].is_empty() {
                cur += 1;
            }
            debug_assert!(cur <= max_deg);
            let v = bucket[cur].pop().expect("non-empty bucket");
            if !removed[v as usize] && degree[v as usize] == cur {
                break v;
            }
        };
        removed[v as usize] = true;
        level = level.max(cur as u64);
        core[v as usize] = level;
        order.push(v);
        for &ci in cliques.cliques_of(v) {
            let ci = ci as usize;
            if clique_dead[ci] {
                continue;
            }
            clique_dead[ci] = true;
            for &w in cliques.members(ci) {
                let wi = w as usize;
                if !removed[wi] {
                    degree[wi] -= 1;
                    bucket[degree[wi]].push(w);
                    if degree[wi] < cur {
                        cur = degree[wi];
                    }
                }
            }
        }
    }

    let max_core = core.iter().copied().max().unwrap_or(0);
    CliqueCore {
        core,
        order,
        max_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn complete_graph_core_is_uniform() {
        // In K6 with h=3 every vertex is in C(5,2)=10 triangles; removing
        // any vertex leaves K5 where degrees are C(4,2)=6, etc. The core
        // number equals the degree at the time the first vertex must go:
        // all 10.
        let g = complete(6);
        let cs = CliqueSet::enumerate(&g, 3);
        let cc = clique_core(&cs);
        assert!(cc.core.iter().all(|&c| c == 10));
        assert_eq!(cc.max_core, 10);
    }

    #[test]
    fn pendant_structure_gets_smaller_core() {
        // K4 (vertices 0-3) plus a triangle 3-4-5 hanging off.
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in u + 1..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
        let g = b.build();
        let cs = CliqueSet::enumerate(&g, 3);
        let cc = clique_core(&cs);
        // K4 members: triangle-degree 3 inside K4 → core 3.
        assert_eq!(&cc.core[0..3], &[3, 3, 3]);
        assert_eq!(cc.core[3], 3);
        // 4 and 5 are each in exactly one triangle.
        assert_eq!(cc.core[4], 1);
        assert_eq!(cc.core[5], 1);
    }

    #[test]
    fn clique_free_vertices_have_zero_core() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cs = CliqueSet::enumerate(&g, 3);
        let cc = clique_core(&cs);
        assert!(cc.core.iter().all(|&c| c == 0));
        assert_eq!(cc.max_core, 0);
    }

    #[test]
    fn order_is_permutation() {
        let g = complete(5);
        let cs = CliqueSet::enumerate(&g, 4);
        let cc = clique_core(&cs);
        let mut sorted = cc.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5u32).collect::<Vec<_>>());
    }

    #[test]
    fn core_with_h_two_matches_edge_core() {
        // For h=2, clique degree = edge degree, so the decomposition must
        // match the classic edge k-core.
        let g = CsrGraph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let cs = CliqueSet::enumerate(&g, 2);
        let cc = clique_core(&cs);
        let edge = lhcds_graph::core_decomp::degeneracy_order(&g);
        for v in g.vertices() {
            assert_eq!(cc.core[v as usize], edge.core[v as usize] as u64, "v={v}");
        }
    }

    /// Every vertex of the (k, ψh)-core really has clique degree ≥ k
    /// inside the core (the defining property).
    #[test]
    fn core_subgraph_satisfies_degree_property() {
        let mut b = GraphBuilder::new();
        // two K5s sharing an edge
        for base in [0u32, 3] {
            let vs: Vec<u32> = (base..base + 5).collect();
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(vs[i], vs[j]);
                }
            }
        }
        let g = b.build();
        let cs = CliqueSet::enumerate(&g, 3);
        let cc = clique_core(&cs);
        let k = cc.max_core;
        let members: Vec<bool> = (0..g.n()).map(|v| cc.core[v] >= k).collect();
        // recount degrees inside the core
        let mut inside_deg = vec![0u64; g.n()];
        for cl in cs.iter() {
            if cl.iter().all(|&v| members[v as usize]) {
                for &v in cl {
                    inside_deg[v as usize] += 1;
                }
            }
        }
        for v in 0..g.n() {
            if members[v] {
                assert!(inside_deg[v] >= k, "core vertex {v} under-degreed");
            }
        }
    }
}
