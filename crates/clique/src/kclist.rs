//! kClist-style h-clique enumeration.
//!
//! Vertices are relabelled by degeneracy-peeling rank and every edge is
//! oriented from lower to higher rank, giving a DAG whose out-degrees are
//! bounded by the degeneracy. Each h-clique then corresponds to exactly
//! one increasing rank sequence, so recursive intersection of sorted
//! out-neighbor lists enumerates every clique exactly once.

use lhcds_graph::core_decomp::degeneracy_order;
use lhcds_graph::{CsrGraph, VertexId};

/// Degeneracy-oriented DAG in rank space.
///
/// Shared read-only by the serial sweep and the node-parallel workers in
/// [`crate::parallel`]: it holds only plain `Vec`s, so `&Dag` is `Sync`.
pub(crate) struct Dag {
    /// `out[r]` = ranks of out-neighbors of the vertex with rank `r`,
    /// sorted ascending.
    pub(crate) out: Vec<Vec<u32>>,
    /// `orig[r]` = original vertex id of rank `r`.
    pub(crate) orig: Vec<VertexId>,
}

pub(crate) fn build_dag(g: &CsrGraph) -> Dag {
    let d = degeneracy_order(g);
    let n = g.n();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in g.vertices() {
        let rv = d.position[v as usize];
        for &w in g.neighbors(v) {
            let rw = d.position[w as usize];
            if rv < rw {
                out[rv as usize].push(rw);
            }
        }
    }
    for o in &mut out {
        o.sort_unstable();
    }
    Dag { out, orig: d.order }
}

/// Intersection of two ascending `u32` slices into `dst` (cleared first).
fn intersect_into(a: &[u32], b: &[u32], dst: &mut Vec<u32>) {
    dst.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dst.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Reusable per-sweep (per-worker, in the parallel path) scratch state:
/// the partial clique plus one intersection buffer per recursion depth.
///
/// Sizing contract: the root level contributes `dag.out[r]` directly and
/// the final level emits without intersecting, so a full sweep for
/// h-cliques needs exactly `h - 2` intersection buffers (`h ≤ 2` needs
/// none). `Scratch::new` is the single place that encodes this — both
/// the serial and parallel enumerators allocate through it.
pub(crate) struct Scratch {
    pub(crate) clique: Vec<VertexId>,
    pub(crate) buffers: Vec<Vec<u32>>,
}

impl Scratch {
    pub(crate) fn new(h: usize) -> Self {
        Scratch {
            clique: Vec::with_capacity(h),
            buffers: vec![Vec::new(); h.saturating_sub(2)],
        }
    }
}

/// Full depth-first sweep below one first-level root `r` (`h ≥ 2`).
pub(crate) fn root_sweep<F: FnMut(&[VertexId])>(
    dag: &Dag,
    r: usize,
    h: usize,
    scratch: &mut Scratch,
    f: &mut F,
) {
    debug_assert!(h >= 2);
    scratch.clique.push(dag.orig[r]);
    recurse(
        dag,
        &dag.out[r],
        h - 1,
        &mut scratch.clique,
        &mut scratch.buffers,
        f,
    );
    scratch.clique.pop();
}

/// Invokes `f` once per h-clique of `g`, passing the member vertices
/// (original ids, ascending degeneracy rank — i.e. an arbitrary but
/// deterministic order, *not* sorted by id).
///
/// `h == 1` yields every vertex; `h == 2` yields every edge.
///
/// For a multi-threaded sweep over large graphs see
/// [`crate::parallel::par_for_each_clique`], which emits the same clique
/// multiset (callback order differs across threads).
///
/// # Panics
/// Panics if `h == 0`.
pub fn for_each_clique<F: FnMut(&[VertexId])>(g: &CsrGraph, h: usize, mut f: F) {
    assert!(h >= 1, "h-cliques require h >= 1");
    if g.n() == 0 {
        return;
    }
    if h == 1 {
        for v in g.vertices() {
            f(&[v]);
        }
        return;
    }
    let dag = build_dag(g);
    let mut scratch = Scratch::new(h);

    // Iterative setup over the first level; recursion handles the rest.
    for r in 0..dag.out.len() {
        root_sweep(&dag, r, h, &mut scratch, &mut f);
    }
}

fn recurse<F: FnMut(&[VertexId])>(
    dag: &Dag,
    cands: &[u32],
    remaining: usize,
    clique: &mut Vec<VertexId>,
    buffers: &mut [Vec<u32>],
    f: &mut F,
) {
    if cands.len() < remaining {
        return;
    }
    if remaining == 1 {
        for &r in cands {
            clique.push(dag.orig[r as usize]);
            f(clique);
            clique.pop();
        }
        return;
    }
    // Split off this depth's scratch buffer so deeper levels get the rest.
    let (buf, rest) = buffers.split_first_mut().expect("buffer per depth");
    for (i, &r) in cands.iter().enumerate() {
        // Candidates after position i keep ascending-rank uniqueness.
        if cands.len() - i < remaining {
            break;
        }
        intersect_into(&cands[i + 1..], &dag.out[r as usize], buf);
        if buf.len() + 1 >= remaining {
            clique.push(dag.orig[r as usize]);
            let owned = std::mem::take(buf);
            recurse(dag, &owned, remaining - 1, clique, rest, f);
            *buf = owned;
            clique.pop();
        }
    }
}

/// Total number of h-cliques in `g`.
pub fn count_cliques(g: &CsrGraph, h: usize) -> u64 {
    let mut c = 0u64;
    for_each_clique(g, h, |_| c += 1);
    c
}

/// Per-vertex h-clique degree: `deg_G(v, ψh)` = number of h-cliques
/// containing `v` (Table 1 of the paper).
pub fn count_per_vertex(g: &CsrGraph, h: usize) -> Vec<u64> {
    let mut deg = vec![0u64; g.n()];
    for_each_clique(g, h, |c| {
        for &v in c {
            deg[v as usize] += 1;
        }
    });
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.ensure_vertex((n - 1) as VertexId);
        b.build()
    }

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_counts_match_binomials() {
        for n in 1..=8usize {
            let g = complete(n);
            for h in 1..=n {
                assert_eq!(
                    count_cliques(&g, h),
                    binomial(n as u64, h as u64),
                    "K{n}, h={h}"
                );
            }
            assert_eq!(count_cliques(&g, n + 1), 0);
        }
    }

    #[test]
    fn per_vertex_degrees_in_complete_graph() {
        let g = complete(6);
        let deg = count_per_vertex(&g, 3);
        // each vertex is in C(5,2)=10 triangles
        assert!(deg.iter().all(|&d| d == 10));
    }

    #[test]
    fn triangle_free_graph_has_no_triangles() {
        // C5 is triangle-free.
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(count_cliques(&g, 3), 0);
        assert_eq!(count_cliques(&g, 2), 5);
        assert_eq!(count_cliques(&g, 1), 5);
    }

    #[test]
    fn cliques_are_actual_cliques_and_unique() {
        // Two K4s sharing vertex 3.
        let mut b = GraphBuilder::new();
        for set in [[0u32, 1, 2, 3], [3, 4, 5, 6]] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_edge(set[i], set[j]);
                }
            }
        }
        let g = b.build();
        let mut seen = std::collections::HashSet::new();
        for_each_clique(&g, 3, |c| {
            let mut s = c.to_vec();
            s.sort_unstable();
            for i in 0..3 {
                for j in i + 1..3 {
                    assert!(g.has_edge(s[i], s[j]), "non-clique emitted: {s:?}");
                }
            }
            assert!(seen.insert(s), "duplicate clique: {c:?}");
        });
        assert_eq!(seen.len(), 8); // 4 triangles per K4
    }

    #[test]
    fn h_one_lists_vertices_h_two_lists_edges() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_cliques(&g, 1), 4);
        assert_eq!(count_cliques(&g, 2), 3);
        let mut edges = Vec::new();
        for_each_clique(&g, 2, |c| {
            let (a, b) = (c[0].min(c[1]), c[0].max(c[1]));
            edges.push((a, b));
        });
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph_and_oversized_h() {
        let g = CsrGraph::from_edges(0, []);
        assert_eq!(count_cliques(&g, 3), 0);
        let g = complete(3);
        assert_eq!(count_cliques(&g, 5), 0);
    }

    #[test]
    #[should_panic(expected = "h >= 1")]
    fn zero_h_panics() {
        let g = complete(3);
        count_cliques(&g, 0);
    }

    /// The scratch sizing contract: `h - 2` intersection buffers
    /// (saturating at 0), one slot consumed per recursion depth. A
    /// too-short buffer stack would panic inside `recurse` ("buffer per
    /// depth"), so sweeping Kn at every h also exercises the bound
    /// tightly: enumerating h-cliques of Kh uses all h - 2 buffers.
    #[test]
    fn scratch_buffer_count_matches_recursion_depth() {
        for (h, want) in [(1usize, 0usize), (2, 0), (3, 1), (4, 2), (9, 7)] {
            let s = Scratch::new(h);
            assert_eq!(s.buffers.len(), want, "h={h}");
            assert!(s.clique.capacity() >= h);
            assert!(s.clique.is_empty());
        }
        // depth exercise: Kn at h = n forces the deepest recursion
        for n in 3..=7usize {
            let g = complete(n);
            assert_eq!(count_cliques(&g, n), 1, "K{n} has one {n}-clique");
        }
    }

    /// A single `Scratch` is reusable across roots and sweeps: buffers
    /// are cleared on entry by `intersect_into`, and the partial clique
    /// always unwinds to empty.
    #[test]
    fn scratch_is_reusable_across_sweeps() {
        let g = complete(6);
        let dag = build_dag(&g);
        let mut scratch = Scratch::new(4);
        for sweep in 0..2 {
            let mut count = 0u64;
            let mut f = |_: &[VertexId]| count += 1;
            for r in 0..dag.out.len() {
                root_sweep(&dag, r, 4, &mut scratch, &mut f);
            }
            assert_eq!(count, 15, "sweep {sweep}"); // C(6,4)
            assert!(scratch.clique.is_empty());
        }
    }

    /// Brute-force cross-check on a small, irregular graph.
    #[test]
    fn matches_bruteforce_on_irregular_graph() {
        let g = CsrGraph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (4, 6),
                (5, 6),
                (2, 4),
            ],
        );
        for h in 1..=5usize {
            let brute = brute_count(&g, h);
            assert_eq!(count_cliques(&g, h), brute, "h={h}");
        }
    }

    fn brute_count(g: &CsrGraph, h: usize) -> u64 {
        let n = g.n();
        let mut count = 0u64;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != h {
                continue;
            }
            let verts: Vec<VertexId> = (0..n as u32).filter(|i| mask & (1 << i) != 0).collect();
            let ok = verts
                .iter()
                .enumerate()
                .all(|(i, &u)| verts[i + 1..].iter().all(|&v| g.has_edge(u, v)));
            if ok {
                count += 1;
            }
        }
        count
    }
}
