//! # lhcds-clique
//!
//! h-clique machinery for LhCDS discovery:
//!
//! * [`kclist`] — kClist-style h-clique enumeration over the degeneracy
//!   DAG (Danisch et al.), with both callback and counting entry points.
//! * [`parallel`] — node-parallel kClist: the first DAG level is sharded
//!   across scoped worker threads ([`Parallelism`] picks the count) with
//!   per-shard accumulators merged deterministically in rank order, so
//!   every counting/collecting entry point is byte-identical to its
//!   serial twin. Callbacks here are `Fn + Sync` instead of `FnMut`.
//! * [`store`] — [`CliqueSet`], an explicit flat store of all h-cliques
//!   plus a per-vertex incidence index; the convex program
//!   (SEQ-kClist++), the flow networks, and the verification algorithms
//!   all iterate this store.
//! * [`maximal`] — Bron–Kerbosch maximal clique enumeration with
//!   degeneracy ordering and pivoting; bounds the largest useful `h`.
//! * [`core`] — `(k, ψh)`-core decomposition (Definition 5 of the paper,
//!   after Fang et al.): peeling by h-clique degree yields each vertex's
//!   h-clique-core number, the source of the initial compact-number
//!   bounds (Algorithm 1).

pub mod core;
pub mod kclist;
pub mod maximal;
pub mod parallel;
pub mod store;

pub use crate::core::{clique_core, CliqueCore};
pub use kclist::{count_cliques, count_per_vertex, for_each_clique};
pub use maximal::{clique_number, for_each_maximal_clique, maximal_cliques};
pub use parallel::{par_count_cliques, par_count_per_vertex, par_for_each_clique, Parallelism};
pub use store::CliqueSet;
