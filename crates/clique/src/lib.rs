//! # lhcds-clique
//!
//! h-clique machinery for LhCDS discovery:
//!
//! * [`kclist`] — kClist-style h-clique enumeration over the degeneracy
//!   DAG (Danisch et al.), with both callback and counting entry points.
//! * [`parallel`] — node-parallel kClist: the first DAG level is sharded
//!   across scoped worker threads ([`Parallelism`] picks the count) with
//!   per-shard accumulators merged deterministically in rank order, so
//!   every counting/collecting entry point is byte-identical to its
//!   serial twin. Callbacks here are `Fn + Sync` instead of `FnMut`.
//! * [`store`] — [`CliqueSet`], an explicit flat store of all h-cliques
//!   plus a per-vertex incidence index; the convex program
//!   (SEQ-kClist++), the flow networks, and the verification algorithms
//!   all iterate this store.
//! * [`maximal`] — Bron–Kerbosch maximal clique enumeration with
//!   degeneracy ordering and pivoting; bounds the largest useful `h`.
//! * [`core`] — `(k, ψh)`-core decomposition (Definition 5 of the paper,
//!   after Fang et al.): peeling by h-clique degree yields each vertex's
//!   h-clique-core number, the source of the initial compact-number
//!   bounds (Algorithm 1).
//!
//! In the workspace DAG this crate sits directly above `lhcds-graph`
//! (with `lhcds-flow` as its sibling) and below `lhcds-core`, which
//! drives every entry point here from the IPPV pipeline.
//!
//! # Example
//!
//! ```
//! use lhcds_clique::{count_cliques, count_per_vertex, par_count_cliques, Parallelism};
//! use lhcds_graph::CsrGraph;
//!
//! // K4 plus a pendant: C(4,3) = 4 triangles, one 4-clique.
//! let g = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
//! assert_eq!(count_cliques(&g, 3), 4);
//! assert_eq!(count_cliques(&g, 4), 1);
//! // per-vertex h-clique degrees: the pendant touches no triangle
//! assert_eq!(count_per_vertex(&g, 3), vec![3, 3, 3, 3, 0]);
//! // the parallel twin is byte-identical to serial, any thread count
//! assert_eq!(par_count_cliques(&g, 3, &Parallelism::threads(4)), 4);
//! ```

#![warn(missing_docs)]

pub mod core;
pub mod kclist;
pub mod maximal;
pub mod parallel;
pub mod store;

pub use crate::core::{clique_core, CliqueCore};
pub use kclist::{count_cliques, count_per_vertex, for_each_clique};
pub use maximal::{clique_number, for_each_maximal_clique, maximal_cliques};
pub use parallel::{
    par_collect_blocks, par_count_cliques, par_count_per_vertex, par_for_each_clique,
    parallel_collect_invocations, Parallelism,
};
pub use store::CliqueSet;
