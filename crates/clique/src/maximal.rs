//! Maximal clique enumeration (Bron–Kerbosch with pivoting over the
//! degeneracy order).
//!
//! Complements the fixed-size kClist enumerator: maximal cliques bound
//! the largest meaningful `h` for a graph, seed near-clique analyses,
//! and power the `stats` tooling. The implementation is the standard
//! Eppstein–Löffler–Strash variant: outer loop over the degeneracy
//! order (so the initial candidate sets have size ≤ degeneracy), inner
//! recursion with Tomita pivoting.

use lhcds_graph::core_decomp::degeneracy_order;
use lhcds_graph::{CsrGraph, VertexId};

/// Invokes `f` once for every maximal clique of `g` (vertices sorted
/// ascending). Isolated vertices count as maximal 1-cliques.
pub fn for_each_maximal_clique<F: FnMut(&[VertexId])>(g: &CsrGraph, mut f: F) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let deg = degeneracy_order(g);
    let mut r: Vec<VertexId> = Vec::new();
    for &v in &deg.order {
        // P: later neighbors; X: earlier neighbors
        let mut p: Vec<VertexId> = Vec::new();
        let mut x: Vec<VertexId> = Vec::new();
        for &w in g.neighbors(v) {
            if deg.position[w as usize] > deg.position[v as usize] {
                p.push(w);
            } else {
                x.push(w);
            }
        }
        r.push(v);
        bron_kerbosch(g, &mut r, p, x, &mut f);
        r.pop();
    }
}

fn bron_kerbosch<F: FnMut(&[VertexId])>(
    g: &CsrGraph,
    r: &mut Vec<VertexId>,
    p: Vec<VertexId>,
    x: Vec<VertexId>,
    f: &mut F,
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        f(&clique);
        return;
    }
    // Tomita pivot: vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.has_edge(u, w)).count())
        .expect("P ∪ X non-empty");
    let candidates: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|&u| !g.has_edge(pivot, u))
        .collect();
    let mut p = p;
    let mut x = x;
    for u in candidates {
        let np: Vec<VertexId> = p.iter().copied().filter(|&w| g.has_edge(u, w)).collect();
        let nx: Vec<VertexId> = x.iter().copied().filter(|&w| g.has_edge(u, w)).collect();
        r.push(u);
        bron_kerbosch(g, r, np, nx, f);
        r.pop();
        p.retain(|&w| w != u);
        x.push(u);
    }
}

/// Collects all maximal cliques, sorted by size descending then
/// lexicographically.
pub fn maximal_cliques(g: &CsrGraph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_maximal_clique(g, |c| out.push(c.to_vec()));
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    out
}

/// Size of the largest clique (the clique number ω(G); 0 for the empty
/// graph). The largest `h` with any h-clique instance is exactly ω(G).
pub fn clique_number(g: &CsrGraph) -> usize {
    let mut best = 0usize;
    for_each_maximal_clique(g, |c| best = best.max(c.len()));
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn complete_graph_has_one_maximal_clique() {
        let cliques = maximal_cliques(&complete(6));
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0], (0..6).collect::<Vec<_>>());
        assert_eq!(clique_number(&complete(6)), 6);
    }

    #[test]
    fn moon_moser_counts() {
        // complete tripartite K(2,2,2) has 2·2·2 = 8 maximal cliques
        // (Moon–Moser), each a triangle.
        let mut b = GraphBuilder::new();
        let groups = [[0u32, 1], [2, 3], [4, 5]];
        for (gi, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(gi + 1) {
                for &a in ga {
                    for &b_ in gb {
                        b.add_edge(a, b_);
                    }
                }
            }
        }
        let g = b.build();
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques.len(), 8);
        assert!(cliques.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn path_maximal_cliques_are_edges() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(clique_number(&g), 2);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = CsrGraph::from_edges(3, [(0, 1)]);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn every_reported_clique_is_maximal_and_a_clique() {
        let mut state = 0x1234_5678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 10u32;
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for u in 0..n {
                for v in u + 1..n {
                    if rng() % 2 == 0 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            let cliques = maximal_cliques(&g);
            let mut seen = std::collections::HashSet::new();
            for c in &cliques {
                // clique
                for i in 0..c.len() {
                    for j in i + 1..c.len() {
                        assert!(g.has_edge(c[i], c[j]));
                    }
                }
                // maximal: no vertex adjacent to all members
                for v in g.vertices() {
                    if c.contains(&v) {
                        continue;
                    }
                    assert!(
                        !c.iter().all(|&u| g.has_edge(u, v)),
                        "clique {c:?} extendable by {v}"
                    );
                }
                assert!(seen.insert(c.clone()), "duplicate {c:?}");
            }
            // completeness: every h-clique is inside some maximal clique
            let k3 = crate::CliqueSet::enumerate(&g, 3);
            for t in k3.iter() {
                assert!(cliques.iter().any(|c| t.iter().all(|v| c.contains(v))));
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, []);
        assert!(maximal_cliques(&g).is_empty());
        assert_eq!(clique_number(&g), 0);
    }
}
