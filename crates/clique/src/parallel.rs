//! Node-parallel kClist enumeration over the degeneracy DAG.
//!
//! The standard parallelization of kClist (Danisch et al.; also the
//! shared-memory densest-subgraph algorithms of Fang et al. and
//! De Zoysa et al.) shards the *first* level of the degeneracy DAG:
//! every h-clique has a unique minimum-rank root, so partitioning the
//! roots partitions the cliques, and workers never synchronize inside a
//! sweep. This module implements that scheme on `std::thread::scope`
//! (no external dependency — the build is offline), with each worker
//! owning its own `Scratch` buffers.
//!
//! ## Thread-safety contract
//!
//! * Callbacks are `Fn + Sync` (not `FnMut` as in the serial
//!   [`for_each_clique`]): they are invoked concurrently from worker
//!   threads and must synchronize any shared mutation themselves.
//! * The emitted *multiset* of cliques is exactly the serial one; only
//!   the callback interleaving differs across runs.
//!
//! ## Deterministic merge
//!
//! Everything merge-based is bit-for-bit reproducible and equal to the
//! serial result:
//!
//! * [`par_count_cliques`] / [`par_count_per_vertex`] fold per-shard
//!   `u64` accumulators; integer addition is exact and commutative, and
//!   partials are combined in shard order, so the results are
//!   byte-identical to the serial counts.
//! * `collect_members` (behind `CliqueSet::enumerate_with`) stores one
//!   member vector per *block* of consecutive roots and concatenates the
//!   blocks in ascending rank order — the flat member array, and hence
//!   the whole `CliqueSet` (clique ids, incidence index), is identical
//!   to the serial enumeration's.
//!
//! Work is distributed as contiguous rank blocks claimed from an atomic
//! counter: early (low-rank) roots head the largest subtrees, so static
//! striping would load-balance poorly; small self-scheduled blocks keep
//! all workers busy without per-root contention.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::kclist::Scratch;
use crate::kclist::{build_dag, count_cliques, count_per_vertex, for_each_clique, root_sweep};
use lhcds_graph::{CsrGraph, VertexId};

/// Thread-count policy for clique enumeration.
///
/// `Parallelism::serial()` (the `Default`) keeps every code path on the
/// single-threaded enumerator. Explicit thread requests
/// ([`Parallelism::threads`]) always engage; [`Parallelism::auto`]
/// resolves to the machine's available parallelism but falls back to
/// serial below a minimum vertex count, where thread startup would
/// dominate the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Requested worker count; `0` = auto-detect.
    threads: usize,
    /// Graphs with fewer vertices run serially.
    min_vertices: usize,
}

impl Parallelism {
    /// Serial fallback threshold used by [`Parallelism::auto`].
    pub const DEFAULT_MIN_VERTICES: usize = 512;

    /// Always single-threaded (identical to the serial enumerator).
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            min_vertices: 0,
        }
    }

    /// Exactly `threads` workers regardless of graph size (`0` = auto).
    pub fn threads(threads: usize) -> Self {
        Parallelism {
            threads,
            min_vertices: 0,
        }
    }

    /// Auto-detected worker count with the tiny-graph serial fallback.
    pub fn auto() -> Self {
        Parallelism {
            threads: 0,
            min_vertices: Self::DEFAULT_MIN_VERTICES,
        }
    }

    /// Replaces the serial-fallback threshold (vertex count below which
    /// enumeration stays single-threaded).
    pub fn with_min_vertices(mut self, min_vertices: usize) -> Self {
        self.min_vertices = min_vertices;
        self
    }

    /// Worker count actually used for a graph with `n` vertices.
    pub fn effective_threads(&self, n: usize) -> usize {
        if n < self.min_vertices {
            return 1;
        }
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        };
        // more workers than roots would only spin on an empty queue
        requested.max(1).min(n.max(1))
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

/// Self-scheduling queue of contiguous first-level rank blocks.
struct BlockQueue {
    next: AtomicUsize,
    block_size: usize,
    n: usize,
}

impl BlockQueue {
    fn new(n: usize, threads: usize) -> Self {
        // ~16 blocks per worker levels out the rank-skewed subtree
        // sizes while keeping the atomic traffic negligible.
        let block_size = (n / (threads * 16)).max(1);
        BlockQueue {
            next: AtomicUsize::new(0),
            block_size,
            n,
        }
    }

    fn blocks(&self) -> usize {
        self.n.div_ceil(self.block_size)
    }

    /// Claims the next unprocessed block: `(block index, rank range)`.
    fn claim(&self) -> Option<(usize, Range<usize>)> {
        let b = self.next.fetch_add(1, Ordering::Relaxed);
        let lo = b * self.block_size;
        if lo >= self.n {
            return None;
        }
        Some((b, lo..(lo + self.block_size).min(self.n)))
    }
}

/// Runs `worker` on `threads` scoped threads and collects each worker's
/// return value in spawn (shard) order.
fn run_workers<T: Send>(threads: usize, worker: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    })
}

/// Invokes `f` once per h-clique of `g` from up to
/// `par.effective_threads(g.n())` worker threads.
///
/// Same clique multiset and per-clique member order as
/// [`for_each_clique`]; the interleaving of callbacks across cliques is
/// unspecified. `f` must therefore be `Fn + Sync` and synchronize any
/// shared state it mutates.
///
/// # Panics
/// Panics if `h == 0`.
pub fn par_for_each_clique<F>(g: &CsrGraph, h: usize, par: &Parallelism, f: F)
where
    F: Fn(&[VertexId]) + Sync,
{
    assert!(h >= 1, "h-cliques require h >= 1");
    if g.n() == 0 {
        return;
    }
    let threads = par.effective_threads(g.n());
    if threads <= 1 || h == 1 {
        // h == 1 is a pure vertex scan — never worth sharding.
        for_each_clique(g, h, |c| f(c));
        return;
    }
    let dag = build_dag(g);
    let queue = BlockQueue::new(dag.out.len(), threads);
    run_workers(threads, |_| {
        let mut scratch = Scratch::new(h);
        let mut call = |c: &[VertexId]| f(c);
        while let Some((_, ranks)) = queue.claim() {
            for r in ranks {
                root_sweep(&dag, r, h, &mut scratch, &mut call);
            }
        }
    });
}

/// Multi-threaded [`count_cliques`]: total number of h-cliques of `g`.
///
/// Per-shard `u64` partials are summed in shard order — byte-identical
/// to the serial count.
pub fn par_count_cliques(g: &CsrGraph, h: usize, par: &Parallelism) -> u64 {
    assert!(h >= 1, "h-cliques require h >= 1");
    if g.n() == 0 {
        return 0;
    }
    let threads = par.effective_threads(g.n());
    if threads <= 1 || h == 1 {
        return count_cliques(g, h);
    }
    let dag = build_dag(g);
    let queue = BlockQueue::new(dag.out.len(), threads);
    run_workers(threads, |_| {
        let mut scratch = Scratch::new(h);
        let mut local = 0u64;
        let mut tally = |_: &[VertexId]| local += 1;
        while let Some((_, ranks)) = queue.claim() {
            for r in ranks {
                root_sweep(&dag, r, h, &mut scratch, &mut tally);
            }
        }
        local
    })
    .into_iter()
    .sum()
}

/// Multi-threaded [`count_per_vertex`]: per-vertex h-clique degrees
/// `deg_G(v, ψh)`.
///
/// Each shard accumulates into its own dense `u64` vector; the vectors
/// are added element-wise in shard order. `u64` addition is exact, so
/// the result is byte-identical to the serial degree vector.
pub fn par_count_per_vertex(g: &CsrGraph, h: usize, par: &Parallelism) -> Vec<u64> {
    assert!(h >= 1, "h-cliques require h >= 1");
    let threads = par.effective_threads(g.n());
    if threads <= 1 || h == 1 || g.n() == 0 {
        return count_per_vertex(g, h);
    }
    let dag = build_dag(g);
    let queue = BlockQueue::new(dag.out.len(), threads);
    let shards = run_workers(threads, |_| {
        let mut scratch = Scratch::new(h);
        let mut deg = vec![0u64; dag.out.len()];
        let mut bump = |c: &[VertexId]| {
            for &v in c {
                deg[v as usize] += 1;
            }
        };
        while let Some((_, ranks)) = queue.claim() {
            for r in ranks {
                root_sweep(&dag, r, h, &mut scratch, &mut bump);
            }
        }
        deg
    });
    let mut total = vec![0u64; g.n()];
    for shard in shards {
        for (t, s) in total.iter_mut().zip(shard) {
            *t += s;
        }
    }
    total
}

/// Process-wide tally of threaded block-collect merges.
static PAR_COLLECTS: AtomicU64 = AtomicU64::new(0);

/// Number of block-collect merges that actually took the multi-threaded
/// path since process start ([`par_collect_blocks`] and the kClist
/// member collect behind `CliqueSet::enumerate_with`).
///
/// Monotone telemetry in the spirit of
/// `lhcds_flow::max_flow_invocations`: tests snapshot it around an
/// enumeration to pin that a requested [`Parallelism`] policy was
/// honored rather than silently dropped to serial.
pub fn parallel_collect_invocations() -> u64 {
    PAR_COLLECTS.load(Ordering::Relaxed)
}

/// Deterministic parallel collect over any indexable outer axis.
///
/// Splits `0..n_items` into contiguous self-scheduled blocks, runs
/// `emit(range, buf)` for each block on up to `threads` scoped worker
/// threads (every block filling its own fresh buffer), and concatenates
/// the per-block buffers in ascending block order. Because the blocks
/// tile `0..n_items` in order, the result is byte-identical to a single
/// `emit(0..n_items, buf)` call whenever `emit` appends the same bytes
/// for a sub-range that a full serial scan would append while passing
/// through it — the same merge discipline `CliqueSet::enumerate_with`
/// uses for rank-sharded kClist, exposed so other crates (the pattern
/// enumerators of `lhcds-patterns`) can shard *their* outer loops
/// (vertex / edge / anchor-clique index blocks) under the identical
/// determinism contract.
///
/// With `threads <= 1` (or nothing to do) `emit` is called exactly once
/// on the calling thread over the full range, so serial callers pay no
/// thread or queue overhead.
pub fn par_collect_blocks<F>(n_items: usize, threads: usize, emit: F) -> Vec<VertexId>
where
    F: Fn(Range<usize>, &mut Vec<VertexId>) + Sync,
{
    if threads <= 1 || n_items == 0 {
        let mut out = Vec::new();
        emit(0..n_items, &mut out);
        return out;
    }
    PAR_COLLECTS.fetch_add(1, Ordering::Relaxed);
    let queue = BlockQueue::new(n_items, threads);
    let mut blocks: Vec<Option<Vec<VertexId>>> = (0..queue.blocks()).map(|_| None).collect();
    let per_worker = run_workers(threads, |_| {
        let mut mine: Vec<(usize, Vec<VertexId>)> = Vec::new();
        while let Some((b, range)) = queue.claim() {
            let mut buf: Vec<VertexId> = Vec::new();
            emit(range, &mut buf);
            mine.push((b, buf));
        }
        mine
    });
    for (b, buf) in per_worker.into_iter().flatten() {
        debug_assert!(blocks[b].is_none(), "block {b} claimed twice");
        blocks[b] = Some(buf);
    }
    let total: usize = blocks.iter().flatten().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for block in blocks.into_iter().flatten() {
        out.extend_from_slice(&block);
    }
    out
}

/// Flat member array of every h-clique, in the *serial* enumeration
/// order. Backs `CliqueSet::enumerate_with`.
///
/// Workers collect one member vector per claimed block; blocks cover
/// contiguous ascending rank ranges, so concatenating them by block
/// index reproduces the serial order exactly (clique ids and the
/// incidence index of the resulting store are byte-identical).
pub(crate) fn collect_members(g: &CsrGraph, h: usize, par: &Parallelism) -> Vec<VertexId> {
    let threads = if g.n() == 0 {
        1
    } else {
        par.effective_threads(g.n())
    };
    if threads <= 1 || h == 1 {
        let mut members = Vec::new();
        for_each_clique(g, h, |c| members.extend_from_slice(c));
        return members;
    }
    PAR_COLLECTS.fetch_add(1, Ordering::Relaxed);
    let dag = build_dag(g);
    let queue = BlockQueue::new(dag.out.len(), threads);
    let mut blocks: Vec<Option<Vec<VertexId>>> = (0..queue.blocks()).map(|_| None).collect();
    let per_worker = run_workers(threads, |_| {
        let mut scratch = Scratch::new(h);
        let mut mine: Vec<(usize, Vec<VertexId>)> = Vec::new();
        while let Some((b, ranks)) = queue.claim() {
            let mut members: Vec<VertexId> = Vec::new();
            let mut push = |c: &[VertexId]| members.extend_from_slice(c);
            for r in ranks {
                root_sweep(&dag, r, h, &mut scratch, &mut push);
            }
            mine.push((b, members));
        }
        mine
    });
    for (b, members) in per_worker.into_iter().flatten() {
        debug_assert!(blocks[b].is_none(), "block {b} claimed twice");
        blocks[b] = Some(members);
    }
    let total: usize = blocks.iter().flatten().map(Vec::len).sum();
    let mut members = Vec::with_capacity(total);
    for block in blocks.into_iter().flatten() {
        members.extend_from_slice(&block);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_policy_is_one_thread() {
        assert_eq!(Parallelism::serial().effective_threads(1_000_000), 1);
        assert_eq!(Parallelism::default(), Parallelism::serial());
    }

    #[test]
    fn explicit_threads_always_engage() {
        let p = Parallelism::threads(4);
        assert_eq!(p.effective_threads(10), 4);
        // ... but never exceed the root count
        assert_eq!(p.effective_threads(2), 2);
        assert_eq!(p.effective_threads(0), 1);
    }

    #[test]
    fn auto_falls_back_to_serial_on_tiny_graphs() {
        let p = Parallelism::auto();
        assert_eq!(
            p.effective_threads(Parallelism::DEFAULT_MIN_VERTICES - 1),
            1
        );
        assert!(p.effective_threads(Parallelism::DEFAULT_MIN_VERTICES) >= 1);
        // the threshold is adjustable
        let eager = Parallelism::auto().with_min_vertices(0);
        assert!(eager.effective_threads(8) >= 1);
        let lazy = Parallelism::threads(8).with_min_vertices(1_000);
        assert_eq!(lazy.effective_threads(999), 1);
        assert_eq!(lazy.effective_threads(1_000), 8);
    }

    #[test]
    fn block_queue_partitions_exactly() {
        for (n, threads) in [(1usize, 4usize), (7, 2), (1000, 3), (64, 64)] {
            let q = BlockQueue::new(n, threads);
            let mut seen = vec![false; n];
            let mut last_block = None;
            while let Some((b, ranks)) = q.claim() {
                if let Some(prev) = last_block {
                    assert_eq!(b, prev + 1, "blocks must come out in order");
                }
                last_block = Some(b);
                for r in ranks {
                    assert!(!seen[r], "rank {r} dealt twice");
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n} threads={threads}");
            assert!(q.claim().is_none(), "queue must stay exhausted");
        }
    }

    #[test]
    fn par_collect_blocks_matches_serial_scan() {
        // emit: each index contributes `index` copies of itself, so any
        // block-boundary mistake shifts bytes visibly.
        let emit = |r: Range<usize>, buf: &mut Vec<VertexId>| {
            for i in r {
                for _ in 0..i {
                    buf.push(i as VertexId);
                }
            }
        };
        let mut serial = Vec::new();
        emit(0..100, &mut serial);
        for threads in [1usize, 2, 3, 4, 8, 64] {
            assert_eq!(
                par_collect_blocks(100, threads, emit),
                serial,
                "threads={threads}"
            );
        }
        assert!(par_collect_blocks(0, 4, emit).is_empty());
    }

    #[test]
    fn zero_sized_inputs() {
        let g = CsrGraph::from_edges(0, []);
        let p = Parallelism::threads(4);
        assert_eq!(par_count_cliques(&g, 3, &p), 0);
        assert!(par_count_per_vertex(&g, 3, &p).is_empty());
        par_for_each_clique(&g, 3, &p, |_| panic!("no cliques in empty graph"));
        assert!(collect_members(&g, 3, &p).is_empty());
    }

    #[test]
    #[should_panic(expected = "h >= 1")]
    fn zero_h_panics_in_parallel_too() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        par_count_cliques(&g, 0, &Parallelism::threads(2));
    }
}
