//! Explicit h-clique storage with a per-vertex incidence index.

use crate::parallel::{collect_members, Parallelism};
use lhcds_graph::{CsrGraph, VertexId};

/// All h-cliques of a graph in a flat array, plus the inverted index
/// `vertex -> clique ids`.
///
/// This is the workhorse shared by SEQ-kClist++ (which walks cliques
/// every iteration), the flow-network builders (one gadget per clique),
/// the `(k, ψh)`-core peeling, and both verification algorithms. Layout:
/// `members[h·i .. h·(i+1)]` are the vertices of clique `i`.
#[derive(Debug, Clone)]
pub struct CliqueSet {
    h: usize,
    n: usize,
    members: Vec<VertexId>,
    inc_offsets: Vec<usize>,
    inc: Vec<u32>,
}

impl CliqueSet {
    /// Enumerates and stores every h-clique of `g` (single-threaded).
    pub fn enumerate(g: &CsrGraph, h: usize) -> Self {
        Self::enumerate_with(g, h, &Parallelism::serial())
    }

    /// Enumerates with an explicit thread policy. The resulting store is
    /// byte-identical to [`CliqueSet::enumerate`]'s — parallel workers
    /// cover contiguous degeneracy-rank blocks whose member vectors are
    /// concatenated in rank order, preserving clique ids, member order,
    /// and the incidence index exactly.
    pub fn enumerate_with(g: &CsrGraph, h: usize, par: &Parallelism) -> Self {
        assert!(h >= 1, "h-cliques require h >= 1");
        let sp = lhcds_obs::span("kclist");
        let set = Self::from_flat_members(g.n(), h, collect_members(g, h, par));
        sp.counter("cliques", set.len() as u64);
        set
    }

    /// Builds a store from pre-collected flat members (`h` consecutive
    /// vertex ids per instance). Also used by `lhcds-patterns` to reuse
    /// the incidence machinery for non-clique patterns.
    pub fn from_flat_members(n: usize, h: usize, members: Vec<VertexId>) -> Self {
        assert!(h >= 1, "instances must have at least one vertex");
        assert_eq!(members.len() % h, 0, "flat member array must be h-aligned");
        let count = members.len() / h;
        let mut deg = vec![0usize; n];
        for &v in &members {
            deg[v as usize] += 1;
        }
        let mut inc_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        inc_offsets.push(0);
        for d in &deg {
            acc += d;
            inc_offsets.push(acc);
        }
        let mut cursor = inc_offsets[..n].to_vec();
        let mut inc = vec![0u32; acc];
        for i in 0..count {
            for &v in &members[i * h..(i + 1) * h] {
                inc[cursor[v as usize]] = i as u32;
                cursor[v as usize] += 1;
            }
        }
        CliqueSet {
            h,
            n,
            members,
            inc_offsets,
            inc,
        }
    }

    /// Clique size h.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Number of vertices of the underlying graph.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored h-cliques (`|Ψh(G)|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len() / self.h
    }

    /// Whether the graph has no h-clique.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member vertices of clique `i`.
    #[inline]
    pub fn members(&self, i: usize) -> &[VertexId] {
        &self.members[i * self.h..(i + 1) * self.h]
    }

    /// Ids of the cliques containing vertex `v`, ascending.
    #[inline]
    pub fn cliques_of(&self, v: VertexId) -> &[u32] {
        &self.inc[self.inc_offsets[v as usize]..self.inc_offsets[v as usize + 1]]
    }

    /// h-clique degree of `v` (`deg_G(v, ψh)`).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.inc_offsets[v as usize + 1] - self.inc_offsets[v as usize]
    }

    /// Iterates cliques as member slices.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        self.members.chunks_exact(self.h)
    }

    /// h-clique density `|Ψh(G[S])| / |S|` restricted to the vertex set
    /// `S`, counting only cliques fully inside `S`. Returns the exact
    /// numerator (clique count); callers divide as needed.
    pub fn cliques_inside(&self, in_set: &[bool]) -> u64 {
        let mut c = 0u64;
        'outer: for cl in self.iter() {
            for &v in cl {
                if !in_set[v as usize] {
                    continue 'outer;
                }
            }
            c += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn k5_plus_edge() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        b.build()
    }

    #[test]
    fn enumeration_counts_and_degrees() {
        let g = k5_plus_edge();
        let cs = CliqueSet::enumerate(&g, 3);
        assert_eq!(cs.len(), 10); // C(5,3)
        assert_eq!(cs.h(), 3);
        for v in 0..5u32 {
            assert_eq!(cs.degree(v), 6); // C(4,2)
        }
        assert_eq!(cs.degree(5), 0);
    }

    #[test]
    fn incidence_index_is_consistent() {
        let g = k5_plus_edge();
        let cs = CliqueSet::enumerate(&g, 4);
        for v in g.vertices() {
            for &ci in cs.cliques_of(v) {
                assert!(cs.members(ci as usize).contains(&v));
            }
        }
        // every clique id appears exactly h times in the incidence lists
        let mut counts = vec![0usize; cs.len()];
        for v in g.vertices() {
            for &ci in cs.cliques_of(v) {
                counts[ci as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn cliques_inside_restricts_to_subset() {
        let g = k5_plus_edge();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut in_set = vec![false; g.n()];
        in_set[0..4].fill(true); // K4 subset
        assert_eq!(cs.cliques_inside(&in_set), 4); // C(4,3)
        in_set[4] = true;
        assert_eq!(cs.cliques_inside(&in_set), 10);
        let none = vec![false; g.n()];
        assert_eq!(cs.cliques_inside(&none), 0);
    }

    #[test]
    fn empty_store_for_clique_free_graph() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        let cs = CliqueSet::enumerate(&g, 3);
        assert!(cs.is_empty());
        assert_eq!(cs.iter().count(), 0);
    }

    #[test]
    fn from_flat_members_round_trip() {
        let members = vec![0u32, 1, 2, 1, 2, 3];
        let cs = CliqueSet::from_flat_members(4, 3, members);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.members(0), &[0, 1, 2]);
        assert_eq!(cs.members(1), &[1, 2, 3]);
        assert_eq!(cs.cliques_of(1), &[0, 1]);
        assert_eq!(cs.cliques_of(3), &[1]);
    }

    #[test]
    #[should_panic(expected = "h-aligned")]
    fn misaligned_members_rejected() {
        CliqueSet::from_flat_members(3, 3, vec![0, 1]);
    }
}
