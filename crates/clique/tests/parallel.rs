//! Serial-equivalence harness for the node-parallel kClist enumerator.
//!
//! Parallel enumeration is only safe to ship if it is observationally
//! equivalent to the serial one. These tests pin the full contract at
//! 1, 2, 4, and 8 threads:
//!
//! * `par_count_cliques` equals `count_cliques`;
//! * `par_count_per_vertex` is **byte-identical** to `count_per_vertex`
//!   (`u64` accumulation is exact, so not even float-style tolerance is
//!   needed);
//! * the sorted multiset of cliques emitted through
//!   `par_for_each_clique` equals the serial multiset;
//! * `CliqueSet::enumerate_with` reproduces the serial store exactly —
//!   same flat member array, clique ids, and incidence index.
//!
//! Run with `RUST_TEST_THREADS=1` (as CI does) to rule out test-runner
//! interleaving masking nondeterminism in the enumerator itself.

use std::sync::Mutex;

use lhcds_clique::{
    count_cliques, count_per_vertex, for_each_clique, par_count_cliques, par_count_per_vertex,
    par_for_each_clique, CliqueSet, Parallelism,
};
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Sorted multiset of cliques via the serial enumerator.
fn serial_multiset(g: &CsrGraph, h: usize) -> Vec<Vec<VertexId>> {
    let mut cliques = Vec::new();
    for_each_clique(g, h, |c| {
        let mut c = c.to_vec();
        c.sort_unstable();
        cliques.push(c);
    });
    cliques.sort();
    cliques
}

/// Sorted multiset of cliques via the parallel enumerator. The shared
/// accumulator is a `Mutex` — the callback is `Fn + Sync` and runs
/// concurrently, so it must synchronize its own mutation.
fn parallel_multiset(g: &CsrGraph, h: usize, par: &Parallelism) -> Vec<Vec<VertexId>> {
    let acc: Mutex<Vec<Vec<VertexId>>> = Mutex::new(Vec::new());
    par_for_each_clique(g, h, par, |c| {
        let mut c = c.to_vec();
        c.sort_unstable();
        acc.lock().expect("collector poisoned").push(c);
    });
    let mut cliques = acc.into_inner().expect("collector poisoned");
    cliques.sort();
    cliques
}

/// Asserts the complete serial-equivalence contract on one graph.
fn assert_equivalent(g: &CsrGraph, h: usize) {
    let count = count_cliques(g, h);
    let degrees = count_per_vertex(g, h);
    let multiset = serial_multiset(g, h);
    let store = CliqueSet::enumerate(g, h);
    for t in THREAD_COUNTS {
        let par = Parallelism::threads(t);
        assert_eq!(par_count_cliques(g, h, &par), count, "count, threads={t}");
        assert_eq!(
            par_count_per_vertex(g, h, &par),
            degrees,
            "degrees, threads={t}"
        );
        assert_eq!(
            parallel_multiset(g, h, &par),
            multiset,
            "multiset, threads={t}"
        );
        let par_store = CliqueSet::enumerate_with(g, h, &par);
        assert_eq!(par_store.len(), store.len(), "store len, threads={t}");
        for i in 0..store.len() {
            assert_eq!(
                par_store.members(i),
                store.members(i),
                "clique {i}, threads={t}"
            );
        }
        for v in g.vertices() {
            assert_eq!(
                par_store.cliques_of(v),
                store.cliques_of(v),
                "incidence of {v}, threads={t}"
            );
        }
    }
}

fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.ensure_vertex((n - 1) as VertexId);
    b.build()
}

fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
    for i in 0..vs.len() {
        for j in i + 1..vs.len() {
            b.add_edge(vs[i], vs[j]);
        }
    }
}

#[test]
fn complete_graphs() {
    for n in 1..=9usize {
        let g = complete(n);
        for h in 1..=n.min(6) {
            assert_equivalent(&g, h);
        }
    }
}

/// The worked-example structures the paper (and this repo's pipeline
/// tests) lean on: overlapping K5s, a bridged K5/K4 pair, a K5 with a
/// pendant path, and two K4s sharing a vertex.
#[test]
fn paper_example_graphs() {
    // two K5s sharing vertex 4 (Figure 1 flavor)
    let mut b = GraphBuilder::new();
    complete_on(&mut b, &[0, 1, 2, 3, 4]);
    complete_on(&mut b, &[4, 5, 6, 7, 8]);
    let shared = b.build();

    // K5 bridged to K4, plus a detached triangle
    let mut b = GraphBuilder::new();
    complete_on(&mut b, &[0, 1, 2, 3, 4]);
    complete_on(&mut b, &[5, 6, 7, 8]);
    b.add_edge(4, 5);
    complete_on(&mut b, &[9, 10, 11]);
    let bridged = b.build();

    // K5 with a pendant path (the pruning example)
    let mut b = GraphBuilder::new();
    complete_on(&mut b, &[0, 1, 2, 3, 4]);
    b.add_edge(4, 5).add_edge(5, 6);
    let pendant = b.build();

    // two K4s sharing vertex 3 (the kClist uniqueness example)
    let mut b = GraphBuilder::new();
    complete_on(&mut b, &[0, 1, 2, 3]);
    complete_on(&mut b, &[3, 4, 5, 6]);
    let two_k4 = b.build();

    for g in [&shared, &bridged, &pendant, &two_k4] {
        for h in 1..=5usize {
            assert_equivalent(g, h);
        }
    }
}

#[test]
fn sparse_and_degenerate_graphs() {
    // triangle-free cycle
    assert_equivalent(
        &CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
        3,
    );
    // star (only h = 1, 2 produce anything)
    let star = CsrGraph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
    for h in 1..=3usize {
        assert_equivalent(&star, h);
    }
    // edgeless and empty graphs
    assert_equivalent(&CsrGraph::from_edges(4, []), 2);
    assert_equivalent(&CsrGraph::from_edges(0, []), 3);
    // h larger than the clique number
    assert_equivalent(&complete(4), 6);
}

/// More workers than first-level roots: the queue must starve the extra
/// threads without losing or duplicating blocks.
#[test]
fn more_threads_than_vertices() {
    let g = complete(3);
    let par = Parallelism::threads(8);
    assert_eq!(par_count_cliques(&g, 2, &par), 3);
    assert_eq!(par_count_per_vertex(&g, 3, &par), vec![1, 1, 1]);
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (3..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        prop::collection::vec(prop::bool::weighted(0.45), pairs).prop_map(move |bits| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as VertexId);
            let mut idx = 0;
            for u in 0..n as VertexId {
                for v in u + 1..n as VertexId {
                    if bits[idx] {
                        b.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random graphs: full equivalence for h = 2..=5 at every thread
    /// count.
    #[test]
    fn random_graphs_are_equivalent(g in arb_graph(14)) {
        for h in 2usize..=5 {
            assert_equivalent(&g, h);
        }
    }

    /// Denser random graphs push deeper recursion (more buffer reuse
    /// per worker) — a targeted shake-out of shared-scratch bugs.
    #[test]
    fn dense_random_graphs_are_equivalent(g in (6usize..=11).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        prop::collection::vec(prop::bool::weighted(0.8), pairs).prop_map(move |bits| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as VertexId);
            let mut idx = 0;
            for u in 0..n as VertexId {
                for v in u + 1..n as VertexId {
                    if bits[idx] {
                        b.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })) {
        for h in 3usize..=6 {
            assert_equivalent(&g, h);
        }
    }

    /// Parallel runs are reproducible run-to-run (scheduling must not
    /// leak into any merged result).
    #[test]
    fn parallel_runs_are_reproducible(g in arb_graph(12)) {
        let par = Parallelism::threads(4);
        let a = par_count_per_vertex(&g, 3, &par);
        let b = par_count_per_vertex(&g, 3, &par);
        prop_assert_eq!(a, b);
        let s1 = CliqueSet::enumerate_with(&g, 3, &par);
        let s2 = CliqueSet::enumerate_with(&g, 3, &par);
        prop_assert_eq!(s1.len(), s2.len());
        for i in 0..s1.len() {
            prop_assert_eq!(s1.members(i), s2.members(i));
        }
    }
}
