//! Property-based tests of clique enumeration and the clique-core
//! decomposition against brute force.

use lhcds_clique::{clique_core, count_cliques, CliqueSet};
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (3..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        prop::collection::vec(prop::bool::weighted(0.45), pairs).prop_map(move |bits| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as VertexId);
            let mut idx = 0;
            for u in 0..n as VertexId {
                for v in u + 1..n as VertexId {
                    if bits[idx] {
                        b.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

fn brute_cliques(g: &CsrGraph, h: usize) -> Vec<Vec<VertexId>> {
    let n = g.n();
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != h {
            continue;
        }
        let verts: Vec<VertexId> = (0..n as u32).filter(|i| mask & (1 << i) != 0).collect();
        let ok = verts
            .iter()
            .enumerate()
            .all(|(i, &u)| verts[i + 1..].iter().all(|&v| g.has_edge(u, v)));
        if ok {
            out.push(verts);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Enumerated cliques equal the brute-force set, for h = 2..=5.
    #[test]
    fn enumeration_matches_bruteforce(g in arb_graph(11)) {
        for h in 2usize..=5 {
            let mut got: Vec<Vec<VertexId>> = Vec::new();
            let cs = CliqueSet::enumerate(&g, h);
            for c in cs.iter() {
                let mut v = c.to_vec();
                v.sort_unstable();
                got.push(v);
            }
            got.sort();
            let mut expect = brute_cliques(&g, h);
            expect.sort();
            prop_assert_eq!(got, expect, "h = {}", h);
        }
    }

    /// Per-vertex degrees sum to h·|Ψh| and match incidence lengths.
    #[test]
    fn degree_consistency(g in arb_graph(12)) {
        for h in 2usize..=4 {
            let cs = CliqueSet::enumerate(&g, h);
            let total: usize = g.vertices().map(|v| cs.degree(v)).sum();
            prop_assert_eq!(total, h * cs.len());
            for v in g.vertices() {
                prop_assert_eq!(cs.degree(v), cs.cliques_of(v).len());
            }
            prop_assert_eq!(cs.len() as u64, count_cliques(&g, h));
        }
    }

    /// Clique-core soundness: the (k_max, ψh)-core is non-empty when
    /// cliques exist, and every member of the (k, ψh)-core has clique
    /// degree ≥ k inside the core.
    #[test]
    fn clique_core_soundness(g in arb_graph(11)) {
        let cs = CliqueSet::enumerate(&g, 3);
        let cc = clique_core(&cs);
        if cs.is_empty() {
            prop_assert!(cc.core.iter().all(|&c| c == 0));
            return Ok(());
        }
        let k = cc.max_core;
        prop_assert!(k >= 1);
        let members: Vec<bool> = (0..g.n()).map(|v| cc.core[v] >= k).collect();
        prop_assert!(members.iter().any(|&m| m));
        let mut inside = vec![0u64; g.n()];
        for c in cs.iter() {
            if c.iter().all(|&v| members[v as usize]) {
                for &v in c {
                    inside[v as usize] += 1;
                }
            }
        }
        for v in 0..g.n() {
            if members[v] {
                prop_assert!(inside[v] >= k, "vertex {} in core has degree {}", v, inside[v]);
            }
        }
    }

    /// Core numbers are monotone under the subgraph relation along the
    /// peeling: core ≤ clique degree.
    #[test]
    fn core_bounded_by_degree(g in arb_graph(12)) {
        let cs = CliqueSet::enumerate(&g, 3);
        let cc = clique_core(&cs);
        for v in g.vertices() {
            prop_assert!(cc.core[v as usize] <= cs.degree(v) as u64);
        }
    }

    /// `cliques_inside` is monotone in the vertex set.
    #[test]
    fn inside_count_monotone(g in arb_graph(12), pick in prop::collection::vec(any::<bool>(), 12)) {
        let cs = CliqueSet::enumerate(&g, 3);
        let small: Vec<bool> = (0..g.n())
            .map(|v| pick.get(v).copied().unwrap_or(false))
            .collect();
        let all = vec![true; g.n()];
        prop_assert!(cs.cliques_inside(&small) <= cs.cliques_inside(&all));
        prop_assert_eq!(cs.cliques_inside(&all), cs.len() as u64);
    }
}
