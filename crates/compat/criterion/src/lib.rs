//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of Criterion's statistical machinery it runs a short warmup
//! plus `sample_size` timed iterations per benchmark and prints
//! `median / mean / total` wall-clock times — enough to compare runs by
//! hand and to keep `cargo bench` compiling and running offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `function_name/parameter` for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup iteration, untimed.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for source compatibility; the stand-in keys everything
    /// off `sample_size` alone.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &mut b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &mut b.samples);
        self
    }

    fn report(&mut self, id: &BenchmarkId, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!(
                "{}/{:<40} (no samples — body never called iter)",
                self.name, id
            );
            return;
        }
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        let median = samples[samples.len() / 2];
        let mean = total / samples.len() as u32;
        println!(
            "{}/{:<40} median {:>10}  mean {:>10}  ({} samples, total {})",
            self.name,
            id,
            fmt_duration(median),
            fmt_duration(mean),
            samples.len(),
            fmt_duration(total)
        );
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("count", 7), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warmup + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 6), &6u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
