//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`] macro,
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! integer-range and tuple strategies, [`collection::vec`],
//! [`bool::weighted`], [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` cases drawn from a
//! deterministic per-test-name RNG, so failures reproduce across runs.
//! There is **no shrinking** — a failure reports its case number and the
//! assertion message instead of a minimized input.

/// SplitMix64 — the deterministic case generator behind every strategy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from the test name so distinct tests explore
    /// distinct (but stable) case sequences.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform below `n` (> 0).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform below `n` (> 0), for widths beyond `u64`.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        if n <= u64::MAX as u128 {
            self.below(n as u64) as u128
        } else {
            let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            raw % n
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored by the stand-in.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert*`; carried as `Err` out of the
    /// case closure so the runner can report the case number.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a
    /// fresh value and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    (self.start as i128 + rng.below_u128(width) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let width = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    (lo as i128 + rng.below_u128(width) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // i128 ranges need their own width arithmetic.
    impl Strategy for Range<i128> {
        type Value = i128;
        fn sample(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "strategy range is empty");
            let width = self.end.wrapping_sub(self.start) as u128;
            self.start.wrapping_add(rng.below_u128(width) as i128)
        }
    }

    impl Strategy for RangeInclusive<i128> {
        type Value = i128;
        fn sample(&self, rng: &mut TestRng) -> i128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "strategy range is empty");
            let width = hi.wrapping_sub(lo) as u128 + 1;
            lo.wrapping_add(rng.below_u128(width) as i128)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange(std::marker::PhantomData)
                }
            }
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    #[derive(Clone, Copy, Debug)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.uniform_f64() < self.0
        }
    }

    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight must be in [0, 1]");
        Weighted(p)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths acceptable to [`vec()`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec size range is empty");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "vec size range is empty");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    // `prop::collection::vec(...)`, `prop::bool::weighted(...)`, … resolve
    // through this crate-root alias, as in real proptest's prelude.
    pub use crate as prop;
}

/// Runs each declared property as `config.cases` deterministic cases.
/// Accepts the same surface syntax as real proptest's macro (an optional
/// `#![proptest_config(..)]` header, then `fn name(pat in strategy, ..)`
/// items), minus shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr] $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Skips the current case when its precondition fails. (Real proptest
/// tracks a rejection budget; the stand-in simply passes the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -5i128..5, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_and_tuples(v in prop::collection::vec((0u32..7, 0i64..3), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for &(a, b) in &v {
                prop_assert!(a < 7);
                prop_assert!((0..3).contains(&b));
            }
        }

        #[test]
        fn flat_map_and_map(n in (2usize..=6).prop_flat_map(|n| {
            prop::collection::vec(any::<bool>(), n).prop_map(move |bits| (n, bits))
        })) {
            let (n, bits) = n;
            prop_assert_eq!(bits.len(), n);
        }

        #[test]
        fn weighted_bool_extremes(always in prop::bool::weighted(1.0), never in prop::bool::weighted(0.0)) {
            prop_assert!(always);
            prop_assert!(!never);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {} is not > 100", x);
            }
        }
        always_fails();
    }
}
