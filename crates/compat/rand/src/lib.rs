//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the *exact API subset* it uses: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_bool`, and `gen_range`. The
//! only generator lives in the sibling `rand_chacha` stand-in. Streams are
//! deterministic functions of the seed, which is all the workspace needs
//! (every dataset generator takes an explicit seed); they do **not**
//! reproduce upstream `rand`'s bit streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair, integers uniform).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `n` (> 0) by multiply-shift; bias is ≤ 2⁻⁶⁴ per
/// draw, far below anything the synthetic generators can observe.
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, width) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, below(rng, i as u64 + 1) as usize);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below(rng, self.len() as u64) as usize])
        }
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
