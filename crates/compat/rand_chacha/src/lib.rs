//! Offline stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate: a real ChaCha8 block
//! function driving the `rand` stand-in's [`RngCore`].
//!
//! The key is expanded from the `u64` seed with SplitMix64, so streams are
//! deterministic functions of the seed (the property the dataset
//! generators rely on). They do **not** match upstream `rand_chacha`'s
//! byte-for-byte output.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 forces a refill.
    word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        // Feed-forward: keystream block = working state + input block.
        for (out, (w, inp)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*inp);
        }
        self.state[12] = self.state[12].wrapping_add(1); // block counter
        self.word = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word == 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..256).map(|_| r.next_u64().count_ones()).sum();
        // 256 * 64 = 16384 bits; expect ~8192 ones, allow a wide margin.
        assert!((7600..8800).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(0xB00C6);
        let mut inside = 0u32;
        for _ in 0..1000 {
            if r.gen_bool(0.25) {
                inside += 1;
            }
        }
        assert!((150..350).contains(&inside), "inside = {inside}");
    }
}
