//! Compact-number bounds (Algorithm 1, `InitializeBd`).
//!
//! For every vertex `u`, `φh(u)` — the h-clique *compact number*
//! (Definition 4) — is the largest `ρ` such that `u` lies in an h-clique
//! `ρ`-compact subgraph. The pipeline never computes `φh` exactly;
//! instead it maintains **valid** lower/upper bounds and tightens them:
//!
//! * Proposition 3: `core_G(u, ψh) / h ≤ φh(u) ≤ core_G(u, ψh)` — the
//!   initial bounds from the `(k, ψh)`-core decomposition.
//! * Theorem 4: stable h-clique groups tighten both sides (module
//!   [`crate::stable`]).
//! * Verified outputs pin the bound exactly (`φh(u) = d(G[S])`,
//!   Theorem 1).
//!
//! Bounds are stored as `f64` *with a safety slack already applied*, so
//! every consumer may treat them as certain: the invariant is
//! `lower[u] ≤ φh(u) ≤ upper[u]` for the true real-valued compact
//! number. Float-derived updates (from the approximate convex program)
//! widen by [`Bounds::slack`] before being applied; exact updates
//! (cores, verified densities) are applied as-is.

use lhcds_clique::{clique_core, CliqueSet};
use lhcds_flow::Ratio;

/// Valid lower/upper bounds on every vertex's h-clique compact number.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Valid lower bounds: `lower[u] ≤ φh(u)`.
    pub lower: Vec<f64>,
    /// Valid upper bounds: `φh(u) ≤ upper[u]`.
    pub upper: Vec<f64>,
    /// Slack added around float-derived (approximate) updates.
    pub slack: f64,
}

impl Bounds {
    /// Tightens `upper[u]` with a float-derived value, widened by slack.
    pub fn tighten_upper_approx(&mut self, u: usize, value: f64) {
        let v = value + self.slack;
        if v < self.upper[u] {
            self.upper[u] = v;
        }
    }

    /// Tightens `lower[u]` with a float-derived value, widened by slack.
    pub fn tighten_lower_approx(&mut self, u: usize, value: f64) {
        let v = value - self.slack;
        if v > self.lower[u] {
            self.lower[u] = v;
        }
    }

    /// Pins both bounds to an exact value (e.g. a verified LhCDS density,
    /// Theorem 1).
    pub fn pin_exact(&mut self, u: usize, value: Ratio) {
        let v = value.to_f64();
        self.lower[u] = v;
        self.upper[u] = v;
    }

    /// Whether the interval of `u` certainly lies strictly below `rho`.
    pub fn certainly_below(&self, u: usize, rho: Ratio) -> bool {
        self.upper[u] < rho.to_f64() - f64::EPSILON
    }

    /// Whether the interval of `u` certainly lies strictly above `rho`.
    pub fn certainly_above(&self, u: usize, rho: Ratio) -> bool {
        self.lower[u] > rho.to_f64() + f64::EPSILON
    }

    /// Whether `φh(u)` could be at least `rho` (conservative: true unless
    /// the upper bound certainly rules it out).
    pub fn possibly_at_least(&self, u: usize, rho: Ratio) -> bool {
        !self.certainly_below(u, rho)
    }
}

/// Default slack around approximate (f64 convex-program) bounds. The CP
/// iterates accumulate at most a few ulps of drift per clique; `1e-6`
/// dwarfs that while remaining far below the minimum density gap of any
/// graph small enough to process (`1/n²`-scale gaps would need `n > 10³`
/// interacting with ties to matter, and verification is exact anyway —
/// slack only affects candidate ordering and pruning eagerness, not
/// correctness of output).
pub const DEFAULT_SLACK: f64 = 1e-6;

/// Algorithm 1: initial bounds from the `(k, ψh)`-core decomposition.
///
/// `upper[u] = core_G(u, ψh)` and `lower[u] = core_G(u, ψh) / h`
/// (Proposition 3). These are exact rationals; no slack is applied.
pub fn initialize_bounds(cliques: &CliqueSet, slack: f64) -> Bounds {
    let cc = clique_core(cliques);
    let h = cliques.h() as f64;
    let n = cliques.n();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for v in 0..n {
        let core = cc.core[v] as f64;
        upper.push(core);
        lower.push(core / h);
    }
    Bounds {
        lower,
        upper,
        slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn k5() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn k5_bounds_bracket_true_compact_number() {
        // K5, h = 3: every vertex has compact number 10/5 = 2 (Figure 4
        // of the paper). Core number = 6 (triangle degree in K5).
        let g = k5();
        let cs = CliqueSet::enumerate(&g, 3);
        let b = initialize_bounds(&cs, DEFAULT_SLACK);
        for v in 0..5 {
            assert_eq!(b.upper[v], 6.0);
            assert!((b.lower[v] - 2.0).abs() < 1e-12);
            // true φ = 2 must lie inside
            assert!(b.lower[v] <= 2.0 && 2.0 <= b.upper[v]);
        }
    }

    #[test]
    fn isolated_vertices_have_zero_bounds() {
        let g = CsrGraph::from_edges(4, [(0, 1)]);
        let cs = CliqueSet::enumerate(&g, 3);
        let b = initialize_bounds(&cs, DEFAULT_SLACK);
        assert!(b.upper.iter().all(|&u| u == 0.0));
        assert!(b.lower.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn tighten_is_monotone_and_slack_guarded() {
        let g = k5();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut b = initialize_bounds(&cs, 1e-6);
        b.tighten_upper_approx(0, 3.0);
        assert!((b.upper[0] - (3.0 + 1e-6)).abs() < 1e-12);
        // loosening attempts are ignored
        b.tighten_upper_approx(0, 10.0);
        assert!((b.upper[0] - (3.0 + 1e-6)).abs() < 1e-12);
        // initial lower bound is core/h = 2.0; only larger values stick
        b.tighten_lower_approx(0, 2.5);
        assert!((b.lower[0] - (2.5 - 1e-6)).abs() < 1e-12);
        b.tighten_lower_approx(0, 0.5);
        assert!((b.lower[0] - (2.5 - 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn pin_exact_collapses_interval() {
        let g = k5();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut b = initialize_bounds(&cs, 1e-6);
        b.pin_exact(2, Ratio::from_int(2));
        assert_eq!(b.lower[2], 2.0);
        assert_eq!(b.upper[2], 2.0);
    }

    #[test]
    fn comparison_helpers() {
        let g = k5();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut b = initialize_bounds(&cs, 1e-6);
        b.pin_exact(0, Ratio::from_int(2));
        assert!(b.certainly_below(0, Ratio::from_int(3)));
        assert!(b.certainly_above(0, Ratio::from_int(1)));
        assert!(b.possibly_at_least(0, Ratio::from_int(2)));
        assert!(!b.possibly_at_least(0, Ratio::new(5, 2)));
    }
}
