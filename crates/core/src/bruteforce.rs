//! Definition-level LhCDS oracle for small graphs (≤ ~16 vertices).
//!
//! Enumerates *all* LhCDSes straight from Definition 2 using bitmask
//! dynamics:
//!
//! * `Ψ(A)` for every subset `A` via a subset-sum (SOS) zeta transform
//!   over per-clique bitmasks — `O(2ⁿ·n)`;
//! * `G[A]` is h-clique `d(A)`-compact ⟺ no subset of `A` has density
//!   exceeding `d(A)` (the two are equivalent: compactness says every
//!   removal destroys ≥ ρ·|U| cliques, i.e. every subset keeps
//!   ≤ Ψ(A) − ρ·|A∖B| cliques, i.e. no subset is denser);
//! * maximality by explicit superset checks at the candidate's own
//!   density level.
//!
//! This module is the ground truth for property-based tests of the whole
//! pipeline; it is exponential by design and asserts `n ≤ 20`.

use lhcds_clique::CliqueSet;
use lhcds_flow::Ratio;
use lhcds_graph::{CsrGraph, VertexId};

/// An LhCDS reported by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleLhcds {
    /// Member vertices, ascending.
    pub vertices: Vec<VertexId>,
    /// Exact h-clique density.
    pub density: Ratio,
}

/// Enumerates every LhCDS of `g` (density > 0), ordered by density
/// descending with ties broken by smallest member id.
///
/// # Panics
/// Panics if `g.n() > 20` (the oracle is `O(4ⁿ)`-ish).
pub fn all_lhcds_bruteforce(g: &CsrGraph, h: usize) -> Vec<OracleLhcds> {
    let cliques = CliqueSet::enumerate(g, h);
    all_lhcds_bruteforce_with(g, &cliques)
}

/// Oracle over an arbitrary instance store (general patterns included):
/// enumerates every locally instance-densest subgraph of `g` by
/// definition, treating each stored instance as one "clique".
///
/// # Panics
/// Panics if `g.n() > 20`.
pub fn all_lhcds_bruteforce_with(g: &CsrGraph, cliques: &CliqueSet) -> Vec<OracleLhcds> {
    let n = g.n();
    assert!(n <= 20, "brute-force oracle limited to 20 vertices");
    if n == 0 {
        return Vec::new();
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // Ψ(A) for all A via SOS zeta transform over instance masks.
    let mut psi = vec![0u32; 1 << n];
    for cl in cliques.iter() {
        let mask = cl.iter().fold(0u32, |m, &v| m | (1 << v));
        psi[mask as usize] += 1;
    }
    for b in 0..n {
        for mask in 0..=full {
            if mask & (1 << b) != 0 {
                psi[mask as usize] += psi[(mask ^ (1 << b)) as usize];
            }
        }
    }

    // adjacency masks for connectivity checks
    let adj: Vec<u32> = (0..n as u32)
        .map(|v| g.neighbors(v).iter().fold(0u32, |m, &w| m | (1 << w)))
        .collect();
    let connected = |mask: u32| -> bool {
        if mask == 0 {
            return false;
        }
        let start = mask.trailing_zeros();
        let mut seen = 1u32 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut grow = 0u32;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros();
                f &= f - 1;
                grow |= adj[v as usize] & mask;
            }
            frontier = grow & !seen;
            seen |= grow;
        }
        seen == mask
    };

    // "A is d(A)-compact" ⟺ max_{B ⊆ A} Ψ(B)/|B| realized at A itself:
    // Ψ(B)·|A| ≤ Ψ(A)·|B| for every nonempty subset B.
    let is_self_compact = |mask: u32| -> bool {
        let pa = psi[mask as usize] as u64;
        let sa = mask.count_ones() as u64;
        // iterate proper nonempty subsets
        let mut b = (mask.wrapping_sub(1)) & mask;
        while b != 0 {
            let pb = psi[b as usize] as u64;
            let sb = b.count_ones() as u64;
            if pb * sa > pa * sb {
                return false;
            }
            b = (b.wrapping_sub(1)) & mask;
        }
        true
    };

    // "A' is ρ-compact for ρ = a/b" ⟺ A' maximizes b·Ψ(B) − a·|B| over
    // its own subsets.
    let compact_at = |mask: u32, a: i64, b: i64| -> bool {
        let value = |m: u32| b * psi[m as usize] as i64 - a * m.count_ones() as i64;
        let va = value(mask);
        let mut s = (mask.wrapping_sub(1)) & mask;
        loop {
            if value(s) > va {
                return false;
            }
            if s == 0 {
                break;
            }
            s = (s.wrapping_sub(1)) & mask;
        }
        true
    };

    let mut found: Vec<(u32, Ratio)> = Vec::new();
    'masks: for mask in 1..=full {
        let pa = psi[mask as usize];
        if pa == 0 || !connected(mask) || !is_self_compact(mask) {
            continue;
        }
        let a = pa as i64;
        let b = mask.count_ones() as i64;
        // maximality: no strict connected superset that is (a/b)-compact
        let complement = full & !mask;
        // iterate supersets by adding any nonempty subset of complement
        let mut add = complement;
        while add != 0 {
            let sup = mask | add;
            if connected(sup) && compact_at(sup, a, b) {
                continue 'masks;
            }
            add = (add.wrapping_sub(1)) & complement;
        }
        found.push((mask, Ratio::new(a as i128, b as i128)));
    }

    let mut out: Vec<OracleLhcds> = found
        .into_iter()
        .map(|(mask, density)| OracleLhcds {
            vertices: (0..n as u32).filter(|v| mask & (1 << v) != 0).collect(),
            density,
        })
        .collect();
    out.sort_by(|x, y| {
        y.density
            .cmp(&x.density)
            .then_with(|| x.vertices[0].cmp(&y.vertices[0]))
    });
    out
}

/// Exact h-clique compact numbers by exhaustive search (Definition 4):
/// `φh(u)` is the maximum, over connected subsets `A ∋ u`, of the
/// compactness of `G[A]` — where compactness is the largest `ρ` such
/// that every removal `U` destroys at least `ρ·|U|` cliques,
/// i.e. `min over proper subsets B ⊊ A of (Ψ(A) − Ψ(B)) / (|A| − |B|)`.
///
/// # Panics
/// Panics if `g.n() > 16` (`O(4ⁿ)`).
pub fn compact_numbers_bruteforce(g: &CsrGraph, h: usize) -> Vec<Ratio> {
    let n = g.n();
    assert!(
        n <= 16,
        "brute-force compact numbers limited to 16 vertices"
    );
    let mut phi = vec![Ratio::zero(); n];
    if n == 0 {
        return phi;
    }
    let full: u32 = (1u32 << n) - 1;

    let cliques = CliqueSet::enumerate(g, h);
    let mut psi = vec![0u32; 1 << n];
    for cl in cliques.iter() {
        let mask = cl.iter().fold(0u32, |m, &v| m | (1 << v));
        psi[mask as usize] += 1;
    }
    for b in 0..n {
        for mask in 0..=full {
            if mask & (1 << b) != 0 {
                psi[mask as usize] += psi[(mask ^ (1 << b)) as usize];
            }
        }
    }

    let adj: Vec<u32> = (0..n as u32)
        .map(|v| g.neighbors(v).iter().fold(0u32, |m, &w| m | (1 << w)))
        .collect();
    let connected = |mask: u32| -> bool {
        if mask == 0 {
            return false;
        }
        let start = mask.trailing_zeros();
        let mut seen = 1u32 << start;
        loop {
            let mut grow = seen;
            let mut f = seen;
            while f != 0 {
                let v = f.trailing_zeros();
                f &= f - 1;
                grow |= adj[v as usize] & mask;
            }
            if grow == seen {
                break;
            }
            seen = grow;
        }
        seen == mask
    };

    for mask in 1u32..=full {
        if psi[mask as usize] == 0 || !connected(mask) {
            continue;
        }
        // compactness of G[mask]
        let pa = psi[mask as usize] as i128;
        let sa = mask.count_ones() as i128;
        let mut compactness = Ratio::new(pa, sa); // B = ∅ bound: Ψ(A)/|A|
        let mut b = (mask.wrapping_sub(1)) & mask;
        while b != 0 {
            let ratio = Ratio::new(pa - psi[b as usize] as i128, sa - b.count_ones() as i128);
            if ratio < compactness {
                compactness = ratio;
            }
            b = (b.wrapping_sub(1)) & mask;
        }
        for (v, best) in phi.iter_mut().enumerate() {
            if mask & (1 << v) != 0 && compactness > *best {
                *best = compactness;
            }
        }
    }
    phi
}

/// Top-k LhCDSes by the oracle.
pub fn top_k_bruteforce(g: &CsrGraph, h: usize, k: usize) -> Vec<OracleLhcds> {
    let mut all = all_lhcds_bruteforce(g, h);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }

    #[test]
    fn single_triangle() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let all = all_lhcds_bruteforce(&g, 3);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].vertices, vec![0, 1, 2]);
        assert_eq!(all[0].density, Ratio::new(1, 3));
    }

    #[test]
    fn k5_with_bridged_k4_yields_only_the_k5() {
        // A K4 attached to a K5 by a bridge is NOT an LhCDS: the union
        // K4 ∪ K5 is connected and 1-compact (each side is at least
        // 1-compact), so the K4 is not maximal at its own density — and
        // the union is not self-densest (the K5 inside is denser). Only
        // the K5 is locally densest.
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(4, 5);
        let g = b.build();
        let all = all_lhcds_bruteforce(&g, 3);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(all[0].density, Ratio::from_int(2));
    }

    #[test]
    fn disjoint_k5_and_k4_are_both_lhcds() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        let g = b.build();
        let all = all_lhcds_bruteforce(&g, 3);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(all[0].density, Ratio::from_int(2));
        assert_eq!(all[1].vertices, vec![5, 6, 7, 8]);
        assert_eq!(all[1].density, Ratio::from_int(1));
    }

    #[test]
    fn k6_is_one_lhcds() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4, 5]);
        let g = b.build();
        let all = all_lhcds_bruteforce(&g, 3);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].vertices.len(), 6);
    }

    #[test]
    fn overlapping_k4s_resolve_to_maximal_region() {
        // two K4s sharing an edge: the whole thing may or may not be
        // compact — the oracle decides from first principles; we only
        // check the structural invariants.
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3]);
        complete_on(&mut b, &[2, 3, 4, 5]);
        let g = b.build();
        let all = all_lhcds_bruteforce(&g, 3);
        assert!(!all.is_empty());
        // disjoint
        let mut seen = vec![false; g.n()];
        for s in &all {
            for &v in &s.vertices {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn no_triangles_means_no_l3cds() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(all_lhcds_bruteforce(&g, 3).is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2]);
        complete_on(&mut b, &[3, 4, 5]);
        complete_on(&mut b, &[6, 7, 8, 9]);
        let g = b.build();
        let top1 = top_k_bruteforce(&g, 3, 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].vertices, vec![6, 7, 8, 9]);
    }
}
