//! `DeriveCompact` flow networks (Figures 6 and 7), `IsDensest`, and the
//! exact local densest decomposition.
//!
//! All routines operate on a [`LocalInstance`]: a relabelled vertex
//! universe `0..n` with the h-cliques fully inside it, plus (for the
//! fast verifier's reduced network, Figure 7) the *boundary cliques* `P`
//! that straddle the universe — each represented by its inside members
//! and carrying arc capacity `1 + (h − cnt)/cnt = h/cnt`.
//!
//! ## Exactness
//! For threshold `ρ = a/b` all capacities are scaled by
//! `D = lcm(b, lcm(1..=h))`, making every capacity an integer `i128`:
//! the min-cut, and therefore every verification decision, is exact.
//!
//! ## The gadget (one clique node per h-clique `ψ`)
//! `v → ψ` with capacity 1 and `ψ → v` with capacity `h − 1` for every
//! member `v`; `s → v` with the h-clique degree; `v → t` with `ρ·h`.
//! A cut that keeps vertex set `A` on the source side pays
//! `Σ_v deg(v) − h·(|Ψ(A)| − ρ|A|)`, so the *minimum* cut maximizes
//! `|Ψ(A)| − ρ|A|`, and:
//!
//! * the minimal source side is the smallest maximizer — empty iff no
//!   subgraph is denser than `ρ` (`IsDensest`, equivalently: `G` is
//!   h-clique `ρ`-compact);
//! * the maximal source side at threshold `ρ − 1/n²` is the union of
//!   all maximal `ρ`-compact subgraphs (Theorem 5).

use lhcds_clique::CliqueSet;
use lhcds_flow::rational::{lcm, lcm_up_to};
use lhcds_flow::{Dinic, Ratio};
use lhcds_graph::VertexId;

/// A clique of the parent graph that straddles the local universe:
/// only `inside` (local ids, `1 ≤ |inside| < h`) of its `h` members are
/// local. Used by the fast verifier's reduced network (Figure 7).
#[derive(Debug, Clone)]
pub struct BoundaryClique {
    /// Local ids of the members inside the universe (`cnt = len()`).
    pub inside: Vec<u32>,
}

/// A relabelled sub-universe with its interior (and optionally boundary)
/// h-cliques.
#[derive(Debug, Clone)]
pub struct LocalInstance {
    /// Number of local vertices.
    pub n: usize,
    /// Clique size.
    pub h: usize,
    /// Interior cliques, `h` local ids each.
    pub full: Vec<u32>,
    /// Boundary cliques (empty unless the caller opts into Figure 7).
    pub boundary: Vec<BoundaryClique>,
}

impl LocalInstance {
    /// Number of interior cliques.
    pub fn clique_count(&self) -> usize {
        self.full.len().checked_div(self.h).unwrap_or(0)
    }

    /// h-clique density of the whole local universe (interior cliques
    /// only). `None` for an empty universe.
    pub fn density(&self) -> Option<Ratio> {
        if self.n == 0 {
            None
        } else {
            Some(Ratio::new(self.clique_count() as i128, self.n as i128))
        }
    }
}

/// Extracts the [`LocalInstance`] induced by `set` (parent vertex ids)
/// from a parent clique store. Returns the instance and the local→parent
/// mapping (ascending). Boundary cliques are *not* collected here — the
/// fast verifier adds them separately when configured to.
pub fn local_instance(cliques: &CliqueSet, set: &[VertexId]) -> (LocalInstance, Vec<VertexId>) {
    let mut to_parent: Vec<VertexId> = set.to_vec();
    to_parent.sort_unstable();
    to_parent.dedup();
    let h = cliques.h();
    let mut full = Vec::new();

    // Adaptive id translation: dense arrays are O(n + |Ψ|) per call,
    // which dominates when the pipeline processes many small candidate
    // regions; hash maps keep the cost proportional to the region.
    let dense = to_parent.len().saturating_mul(16) >= cliques.n();
    if dense {
        let mut local = vec![u32::MAX; cliques.n()];
        for (i, &v) in to_parent.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut stamp = vec![false; cliques.len()];
        for &v in &to_parent {
            for &ci in cliques.cliques_of(v) {
                let ci = ci as usize;
                if stamp[ci] {
                    continue;
                }
                stamp[ci] = true;
                let members = cliques.members(ci);
                if members.iter().all(|&w| local[w as usize] != u32::MAX) {
                    for &w in members {
                        full.push(local[w as usize]);
                    }
                }
            }
        }
    } else {
        let local: std::collections::HashMap<VertexId, u32> = to_parent
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for &v in &to_parent {
            for &ci in cliques.cliques_of(v) {
                if !seen.insert(ci) {
                    continue;
                }
                let members = cliques.members(ci as usize);
                if let Some(ids) = members
                    .iter()
                    .map(|w| local.get(w).copied())
                    .collect::<Option<Vec<u32>>>()
                {
                    full.extend(ids);
                }
            }
        }
    }
    (
        LocalInstance {
            n: to_parent.len(),
            h,
            full,
            boundary: Vec::new(),
        },
        to_parent,
    )
}

/// Builds the scaled-integer flow network for threshold `rho` and runs
/// max-flow. Returns the solver plus the `(s, t)` node ids.
///
/// Node layout: `0 = s`, `1..=n` local vertices, then interior clique
/// nodes, then boundary clique nodes, `t` last.
fn solve_network(inst: &LocalInstance, rho: Ratio) -> (Dinic, u32, u32) {
    solve_network_forced(inst, rho, None)
}

/// Like [`solve_network`] but pins every vertex in `forced` to the
/// source side (marginal-density decomposition): forced vertices get an
/// effectively infinite `s -> v` capacity, so any finite min-cut keeps
/// them with `s` and the cut optimizes only over supersets of the
/// forced set.
fn solve_network_forced(
    inst: &LocalInstance,
    rho: Ratio,
    forced: Option<&[bool]>,
) -> (Dinic, u32, u32) {
    let n = inst.n;
    let h = inst.h as i128;
    let fc = inst.clique_count();
    let bc = inst.boundary.len();
    let t = (1 + n + fc + bc) as u32;
    let mut net = Dinic::new(t as usize + 1);

    let scale = lcm(rho.den(), lcm_up_to(inst.h as u32));
    debug_assert!(scale > 0);

    // scaled per-vertex degree = D per interior clique + h·D/cnt per
    // boundary clique
    let mut deg = vec![0i128; n];

    for (i, members) in inst.full.chunks_exact(inst.h).enumerate() {
        let cnode = (1 + n + i) as u32;
        for &v in members {
            net.add_edge(v + 1, cnode, scale);
            net.add_edge(cnode, v + 1, (h - 1) * scale);
            deg[v as usize] += scale;
        }
    }
    for (j, b) in inst.boundary.iter().enumerate() {
        let cnt = b.inside.len() as i128;
        debug_assert!(cnt >= 1 && cnt < h, "boundary clique must straddle");
        let cnode = (1 + n + fc + j) as u32;
        let incap = h * scale / cnt; // exact: cnt | lcm(1..=h) | scale
        for &v in &b.inside {
            net.add_edge(v + 1, cnode, incap);
            net.add_edge(cnode, v + 1, (h - 1) * scale);
            deg[v as usize] += incap;
        }
    }
    let vt_cap = (rho * Ratio::from_int(h)).scale_to_int(scale);
    assert!(vt_cap >= 0, "threshold must be non-negative");
    // "infinite" = more than any finite cut can carry
    let inf = (h * scale)
        .saturating_mul((inst.clique_count() + inst.boundary.len() + 1) as i128)
        .saturating_add(vt_cap.saturating_mul(n as i128 + 1))
        .saturating_add(1);
    for (v, &dv) in deg.iter().enumerate() {
        let is_forced = forced.is_some_and(|f| f[v]);
        if is_forced {
            net.add_edge(0, v as u32 + 1, inf);
        } else if dv > 0 {
            net.add_edge(0, v as u32 + 1, dv);
        }
        net.add_edge(v as u32 + 1, t, vt_cap);
    }
    let flow = net.max_flow(0, t);
    debug_assert!(flow >= 0);
    (net, 0, t)
}

/// Minimal maximizer of `|Ψ(A)| − ρ|A|` over vertex subsets: the
/// minimal min-cut source side. Empty iff the maximum is 0, i.e. no
/// subgraph has h-clique density exceeding `rho`.
pub fn max_excess_set(inst: &LocalInstance, rho: Ratio) -> Vec<bool> {
    if inst.n == 0 {
        return Vec::new();
    }
    let (net, s, _) = solve_network(inst, rho);
    let side = net.min_cut_source_side(s);
    (0..inst.n).map(|v| side[v + 1]).collect()
}

/// `IsDensest`: whether no subgraph of the local universe has h-clique
/// density strictly greater than `rho`. With `rho` equal to the
/// universe's own density this is exactly "the universe is h-clique
/// `ρ`-compact" (connectivity checked separately by callers).
pub fn is_densest(inst: &LocalInstance, rho: Ratio) -> bool {
    max_excess_set(inst, rho).iter().all(|&b| !b)
}

/// `DeriveCompact(G, ρ − 1/n², P)`: membership of the union of all
/// maximal h-clique `ρ`-compact subgraphs of the local universe
/// (Theorem 5) — the maximal min-cut source side at the perturbed
/// threshold.
pub fn derive_compact(inst: &LocalInstance, rho: Ratio) -> Vec<bool> {
    if inst.n == 0 {
        return Vec::new();
    }
    let eps = Ratio::new(1, (inst.n as i128) * (inst.n as i128));
    let thr = rho - eps;
    let thr = if thr < Ratio::zero() {
        Ratio::zero()
    } else {
        thr
    };
    let (net, _, t) = solve_network(inst, thr);
    let side = net.max_cut_source_side(t);
    (0..inst.n).map(|v| side[v + 1]).collect()
}

/// Exact densest-subgraph decomposition of the local universe by
/// Goldberg-style iteration: returns `(ρ*, U)` where `ρ*` is the maximum
/// h-clique density over all subsets and `U` the union of all maximal
/// `ρ*`-compact subgraphs. `None` when the universe holds no clique.
///
/// The minimal maximizers are nested as `ρ` increases, so the iteration
/// performs at most `n` max-flows (2–5 in practice).
pub fn densest_decomposition(inst: &LocalInstance) -> Option<(Ratio, Vec<bool>)> {
    if inst.n == 0 || inst.clique_count() == 0 {
        return None;
    }
    let mut rho = inst.density().expect("non-empty");
    let mut guard = 0usize;
    loop {
        let set = max_excess_set(inst, rho);
        let size = set.iter().filter(|&&b| b).count();
        if size == 0 {
            break;
        }
        let inside = count_inside(inst, &set);
        let denser = Ratio::new(inside as i128, size as i128);
        debug_assert!(denser > rho, "density must strictly increase");
        rho = denser;
        guard += 1;
        assert!(
            guard <= inst.n + 2,
            "densest-subgraph iteration failed to converge"
        );
    }
    Some((rho, derive_compact(inst, rho)))
}

/// Marginal-density step of the dense decomposition: given the union
/// `forced` of all higher levels, finds the next level — the maximal
/// set `A ⊇ forced` maximizing the marginal density
/// `(|Ψ(A)| − |Ψ(forced)|) / (|A| − |forced|)` — by Goldberg iteration
/// with the forced vertices pinned to the source side. Returns the
/// marginal density and the *new* vertices (level members), or `None`
/// when no vertex outside `forced` participates in any clique gain.
pub fn next_density_level(inst: &LocalInstance, forced: &[bool]) -> Option<(Ratio, Vec<bool>)> {
    let n = inst.n;
    let forced_count = forced.iter().filter(|&&f| f).count();
    if n == 0 || forced_count == n {
        return None;
    }
    let base_inside = count_inside(inst, forced) as i128;

    // Marginal gain of the full universe; if zero, no further level.
    let full = vec![true; n];
    let total = count_inside(inst, &full) as i128;
    if total == base_inside {
        return None;
    }
    let mut rho = Ratio::new(total - base_inside, (n - forced_count) as i128);

    // Goldberg iteration on the marginal density: the minimal maximizer
    // of |Ψ(A)| − ρ|A| over A ⊇ forced shrinks as ρ grows.
    let mut guard = 0usize;
    let mut best = rho;
    loop {
        let (net, s, _) = solve_network_forced(inst, rho, Some(forced));
        let side = net.min_cut_source_side(s);
        let set: Vec<bool> = (0..n).map(|v| side[v + 1]).collect();
        let new_count = set
            .iter()
            .zip(forced)
            .filter(|&(&inside, &f)| inside && !f)
            .count();
        if new_count == 0 {
            break;
        }
        let inside = count_inside(inst, &set) as i128;
        let marginal = Ratio::new(inside - base_inside, new_count as i128);
        debug_assert!(marginal >= rho);
        if marginal == best && marginal == rho {
            best = marginal;
            break;
        }
        best = marginal;
        rho = marginal;
        guard += 1;
        assert!(guard <= n + 2, "marginal-density iteration diverged");
    }

    // Largest maximizer at the final level (ε-perturbed threshold).
    let eps = Ratio::new(1, (n as i128) * (n as i128));
    let thr = best - eps;
    let thr = if thr < Ratio::zero() {
        Ratio::zero()
    } else {
        thr
    };
    let (net, _, t) = solve_network_forced(inst, thr, Some(forced));
    let side = net.max_cut_source_side(t);
    let level: Vec<bool> = (0..n).map(|v| side[v + 1] && !forced[v]).collect();
    debug_assert!(level.iter().any(|&b| b), "level must be non-empty");
    Some((best, level))
}

/// Number of interior cliques fully inside `set` plus boundary cliques
/// whose inside members are all in `set` (each counts as one clique, as
/// in the Figure 7 network).
pub fn count_inside(inst: &LocalInstance, set: &[bool]) -> u64 {
    let mut c = 0u64;
    'full: for members in inst.full.chunks_exact(inst.h) {
        for &v in members {
            if !set[v as usize] {
                continue 'full;
            }
        }
        c += 1;
    }
    'bnd: for b in &inst.boundary {
        for &v in &b.inside {
            if !set[v as usize] {
                continue 'bnd;
            }
        }
        c += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn instance_of(g: &CsrGraph, h: usize) -> LocalInstance {
        let cs = CliqueSet::enumerate(g, h);
        let all: Vec<VertexId> = g.vertices().collect();
        local_instance(&cs, &all).0
    }

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn local_instance_filters_interior_cliques() {
        // triangle 0-1-2 and triangle 2-3-4; restrict to {0,1,2,3}:
        // only the first triangle is interior.
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let cs = CliqueSet::enumerate(&g, 3);
        let (inst, map) = local_instance(&cs, &[0, 1, 2, 3]);
        assert_eq!(inst.n, 4);
        assert_eq!(inst.clique_count(), 1);
        assert_eq!(map, vec![0, 1, 2, 3]);
    }

    #[test]
    fn complete_graph_is_self_densest() {
        let inst = instance_of(&complete(6), 3);
        let rho = inst.density().unwrap();
        assert_eq!(rho, Ratio::new(20, 6));
        assert!(is_densest(&inst, rho));
        // but not densest at any smaller threshold
        assert!(!is_densest(&inst, rho - Ratio::new(1, 100)));
    }

    #[test]
    fn pendant_makes_graph_not_self_densest() {
        // K5 + pendant vertex: overall density 10/6 < inner K5's 10/5.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        let inst = instance_of(&b.build(), 3);
        let rho = inst.density().unwrap();
        assert_eq!(rho, Ratio::new(10, 6));
        assert!(!is_densest(&inst, rho));
        // the excess set is exactly the K5
        let set = max_excess_set(&inst, rho);
        assert_eq!(set, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn densest_decomposition_finds_inner_k5() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5).add_edge(5, 6);
        let inst = instance_of(&b.build(), 3);
        let (rho, members) = densest_decomposition(&inst).unwrap();
        assert_eq!(rho, Ratio::from_int(2)); // 10 triangles / 5 vertices
        assert_eq!(members, vec![true, true, true, true, true, false, false]);
    }

    #[test]
    fn decomposition_returns_all_tied_regions() {
        // two disjoint K4s: both maximal 1-compact (4 triangles / 4
        // vertices = 1); the union must contain both.
        let mut b = GraphBuilder::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        let inst = instance_of(&b.build(), 3);
        let (rho, members) = densest_decomposition(&inst).unwrap();
        assert_eq!(rho, Ratio::from_int(1));
        assert!(members.iter().all(|&m| m));
    }

    #[test]
    fn clique_free_universe_has_no_decomposition() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let inst = instance_of(&g, 3);
        assert!(densest_decomposition(&inst).is_none());
    }

    #[test]
    fn figure2_s1_density_13_over_6() {
        // K6 minus two adjacent edges (the paper's S1): 13 triangles on
        // 6 vertices, self-densest at 13/6.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                if (u, v) == (0, 1) || (u, v) == (0, 2) {
                    continue; // remove two edges sharing vertex 0
                }
                b.add_edge(u, v);
            }
        }
        let inst = instance_of(&b.build(), 3);
        let (rho, members) = densest_decomposition(&inst).unwrap();
        assert_eq!(rho, Ratio::new(13, 6));
        assert!(members.iter().all(|&m| m));
        assert!(is_densest(&inst, rho));
    }

    #[test]
    fn boundary_clique_counts_when_inside_members_kept() {
        // Universe = one edge {0, 1} (no interior triangle), plus a
        // boundary triangle with cnt = 2 inside members. Keeping both
        // members yields 1 clique at density 1/2.
        let inst = LocalInstance {
            n: 2,
            h: 3,
            full: Vec::new(),
            boundary: vec![BoundaryClique { inside: vec![0, 1] }],
        };
        let all = vec![true, true];
        assert_eq!(count_inside(&inst, &all), 1);
        // at rho = 1/2 the pair is exactly compact: no denser subset
        assert!(is_densest(&inst, Ratio::new(1, 2)));
        // at a smaller threshold the pair (or a single vertex) has
        // positive excess
        let set = max_excess_set(&inst, Ratio::new(1, 3));
        assert!(set.iter().any(|&b| b));
        // derive_compact at 1/2 keeps both members
        let kept = derive_compact(&inst, Ratio::new(1, 2));
        assert_eq!(kept, vec![true, true]);
    }

    #[test]
    fn derive_compact_drops_subthreshold_fringe() {
        // K5 with pendant: maximal 2-compact subgraph = the K5 alone.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        let inst = instance_of(&b.build(), 3);
        let kept = derive_compact(&inst, Ratio::from_int(2));
        assert_eq!(kept, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn empty_universe_edge_cases() {
        let inst = LocalInstance {
            n: 0,
            h: 3,
            full: Vec::new(),
            boundary: Vec::new(),
        };
        assert!(max_excess_set(&inst, Ratio::from_int(1)).is_empty());
        assert!(derive_compact(&inst, Ratio::from_int(1)).is_empty());
        assert!(inst.density().is_none());
    }
}
