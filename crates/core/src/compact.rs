//! `DeriveCompact` flow networks (Figures 6 and 7), `IsDensest`, and the
//! exact local densest decomposition.
//!
//! All routines operate on a [`LocalInstance`]: a relabelled vertex
//! universe `0..n` with the h-cliques fully inside it, plus (for the
//! fast verifier's reduced network, Figure 7) the *boundary cliques* `P`
//! that straddle the universe — each represented by its inside members
//! and carrying arc capacity `1 + (h − cnt)/cnt = h/cnt`.
//!
//! ## Exactness
//! For threshold `ρ = a/b` all capacities are scaled by
//! `D = lcm(b, lcm(1..=h))`, making every capacity an integer `i128`:
//! the min-cut, and therefore every verification decision, is exact.
//!
//! ## The gadget (one clique node per h-clique `ψ`)
//! `v → ψ` with capacity 1 and `ψ → v` with capacity `h − 1` for every
//! member `v`; `s → v` with the h-clique degree; `v → t` with `ρ·h`.
//! A cut that keeps vertex set `A` on the source side pays
//! `Σ_v deg(v) − h·(|Ψ(A)| − ρ|A|)`, so the *minimum* cut maximizes
//! `|Ψ(A)| − ρ|A|`, and:
//!
//! * the minimal source side is the smallest maximizer — empty iff no
//!   subgraph is denser than `ρ` (`IsDensest`, equivalently: `G` is
//!   h-clique `ρ`-compact);
//! * the maximal source side at threshold `ρ − 1/n²` is the union of
//!   all maximal `ρ`-compact subgraphs (Theorem 5).
//!
//! ## Network reuse
//! Every routine above probes the *same* network at several thresholds:
//! the Goldberg ladder of [`InstanceSolver::densest_decomposition`],
//! the marginal-density iteration of
//! [`InstanceSolver::next_density_level`], and the final ε-perturbed
//! `DeriveCompact` all share the gadget arcs and differ only in the
//! ρ-dependent terminal capacities. [`InstanceSolver`] therefore builds
//! **one** [`ParametricNetwork`] per instance (lazily, on the first
//! probe) and re-tunes it between solves, warm-starting from the
//! retained residual flow when the change is monotone. The free
//! functions below are thin compatibility wrappers that build a
//! throwaway solver; hot paths hold an `InstanceSolver` instead.
//! Because minimal/maximal min-cut source sides are canonical
//! (flow-independent) and uniform capacity scaling preserves them, the
//! reuse path is bit-identical to rebuilding from scratch — pinned by
//! the `flow_reuse` equivalence suites.

use lhcds_clique::CliqueSet;
use lhcds_flow::parametric::ReusePolicy;
use lhcds_flow::rational::lcm_up_to;
use lhcds_flow::{FlowReuse, GgtSolver, ParametricNetwork, Ratio};
use lhcds_graph::VertexId;

/// A clique of the parent graph that straddles the local universe:
/// only `inside` (local ids, `1 ≤ |inside| < h`) of its `h` members are
/// local. Used by the fast verifier's reduced network (Figure 7).
#[derive(Debug, Clone)]
pub struct BoundaryClique {
    /// Local ids of the members inside the universe (`cnt = len()`).
    pub inside: Vec<u32>,
}

/// A relabelled sub-universe with its interior (and optionally boundary)
/// h-cliques.
#[derive(Debug, Clone)]
pub struct LocalInstance {
    /// Number of local vertices.
    pub n: usize,
    /// Clique size.
    pub h: usize,
    /// Interior cliques, `h` local ids each.
    pub full: Vec<u32>,
    /// Boundary cliques (empty unless the caller opts into Figure 7).
    pub boundary: Vec<BoundaryClique>,
}

impl LocalInstance {
    /// Number of interior cliques.
    pub fn clique_count(&self) -> usize {
        self.full.len().checked_div(self.h).unwrap_or(0)
    }

    /// h-clique density of the whole local universe (interior cliques
    /// only). `None` for an empty universe.
    pub fn density(&self) -> Option<Ratio> {
        if self.n == 0 {
            None
        } else {
            Some(Ratio::new(self.clique_count() as i128, self.n as i128))
        }
    }
}

/// Extracts the [`LocalInstance`] induced by `set` (parent vertex ids)
/// from a parent clique store. Returns the instance and the local→parent
/// mapping (ascending). Boundary cliques are *not* collected here — the
/// fast verifier adds them separately when configured to.
pub fn local_instance(cliques: &CliqueSet, set: &[VertexId]) -> (LocalInstance, Vec<VertexId>) {
    let mut to_parent: Vec<VertexId> = set.to_vec();
    to_parent.sort_unstable();
    to_parent.dedup();
    let h = cliques.h();
    let mut full = Vec::new();

    // Adaptive id translation: dense arrays are O(n + |Ψ|) per call,
    // which dominates when the pipeline processes many small candidate
    // regions; hash maps keep the cost proportional to the region.
    let dense = to_parent.len().saturating_mul(16) >= cliques.n();
    if dense {
        let mut local = vec![u32::MAX; cliques.n()];
        for (i, &v) in to_parent.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut stamp = vec![false; cliques.len()];
        for &v in &to_parent {
            for &ci in cliques.cliques_of(v) {
                let ci = ci as usize;
                if stamp[ci] {
                    continue;
                }
                stamp[ci] = true;
                let members = cliques.members(ci);
                if members.iter().all(|&w| local[w as usize] != u32::MAX) {
                    for &w in members {
                        full.push(local[w as usize]);
                    }
                }
            }
        }
    } else {
        let local: std::collections::HashMap<VertexId, u32> = to_parent
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for &v in &to_parent {
            for &ci in cliques.cliques_of(v) {
                if !seen.insert(ci) {
                    continue;
                }
                let members = cliques.members(ci as usize);
                if let Some(ids) = members
                    .iter()
                    .map(|w| local.get(w).copied())
                    .collect::<Option<Vec<u32>>>()
                {
                    full.extend(ids);
                }
            }
        }
    }
    (
        LocalInstance {
            n: to_parent.len(),
            h,
            full,
            boundary: Vec::new(),
        },
        to_parent,
    )
}

/// A [`LocalInstance`] bundled with its lazily built, reusable flow
/// network.
///
/// Node layout (identical to the historical per-call builder): `0 = s`,
/// `1..=n` local vertices, then interior clique nodes, then boundary
/// clique nodes, `t` last. Gadget arcs (`v → ψ`, `ψ → v`) are *static*
/// — expressed once at base scale `lcm(1..=h)`; the ρ-dependent
/// terminal arcs (`s → v`, `v → t`) and the boundary in-arcs are
/// *parametric* and re-tuned per probe. Every probe of every method
/// reuses the same [`ParametricNetwork`], warm-starting when the
/// capacity change is monotone.
///
/// The [`FlowReuse`] tier ([`InstanceSolver::with_reuse`]) picks the
/// cost model: [`FlowReuse::Scratch`] rebuilds the network before every
/// solve (the pre-parametric model), [`FlowReuse::Warm`] keeps it but
/// resets the flow on capacity decreases (PR 5), and the default
/// [`FlowReuse::Ggt`] never resets — decreases retract the flow along
/// its own paths, and the full-ladder entry point
/// [`InstanceSolver::ggt_ladder`] replaces the probe schedule by GGT
/// divide-and-conquer. Results are bit-identical across all tiers.
///
/// The instance parameter is generic over ownership: long-lived holders
/// (the IPPV driver's [`crate::verify::BasicVerifier`], the
/// dense-decomposition ladder) own their `LocalInstance`, while
/// one-shot callers (the free wrapper functions below) borrow it —
/// neither pays a copy of the clique slab.
#[derive(Debug, Clone)]
pub struct InstanceSolver<I: std::borrow::Borrow<LocalInstance> = LocalInstance> {
    inst: I,
    reuse: FlowReuse,
    boundary_enabled: bool,
    /// Worker threads for [`InstanceSolver::ggt_ladder`]'s GGT
    /// recursion (1 = serial; the result never depends on it).
    threads: usize,
    net: Option<ParametricNetwork>,
    /// Per-vertex base-scale degree from interior cliques.
    deg_interior: Vec<i128>,
    /// Per-vertex base-scale degree from boundary cliques.
    deg_boundary: Vec<i128>,
    /// Base-scale capacity of each boundary in-arc, in network order.
    boundary_in_base: Vec<i128>,
}

impl<I: std::borrow::Borrow<LocalInstance>> InstanceSolver<I> {
    /// Wraps `inst` (owned or borrowed) at the default reuse tier
    /// ([`FlowReuse::Ggt`]).
    pub fn new(inst: I) -> InstanceSolver<I> {
        InstanceSolver::with_reuse(inst, FlowReuse::default())
    }

    /// Wraps `inst` at an explicit [`FlowReuse`] tier.
    pub fn with_reuse(inst: I, reuse: FlowReuse) -> InstanceSolver<I> {
        let instance = inst.borrow();
        let n = instance.n;
        let h = instance.h as i128;
        let base = lcm_up_to(instance.h as u32);
        let mut deg_interior = vec![0i128; n];
        let mut deg_boundary = vec![0i128; n];
        let mut boundary_in_base = Vec::new();
        for members in instance.full.chunks_exact(instance.h) {
            for &v in members {
                deg_interior[v as usize] += base;
            }
        }
        for b in &instance.boundary {
            let cnt = b.inside.len() as i128;
            debug_assert!(cnt >= 1 && cnt < h, "boundary clique must straddle");
            let incap = h * base / cnt; // exact: cnt | lcm(1..=h)
            for &v in &b.inside {
                deg_boundary[v as usize] += incap;
                boundary_in_base.push(incap);
            }
        }
        InstanceSolver {
            inst,
            reuse,
            boundary_enabled: true,
            threads: 1,
            net: None,
            deg_interior,
            deg_boundary,
            boundary_in_base,
        }
    }

    /// Sets the worker-thread count for [`InstanceSolver::ggt_ladder`]'s
    /// divide-and-conquer (clamped to at least 1). Ladder output is
    /// byte-identical at every thread count; only wall time changes.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &LocalInstance {
        self.inst.borrow()
    }

    /// Enables/disables the boundary cliques *in the shared network*
    /// (their in-arcs drop to capacity 0 and their degree contribution
    /// vanishes): the Figure 6 vs Figure 7 ablation on one network
    /// instead of two — the hook behind the ISSUE's "share the instance
    /// network across boundary-clique variants" (exercised by the
    /// ablation-oriented tests; production pipelines keep the default).
    /// Affects [`InstanceSolver::derive_compact`]-style probes; the
    /// decomposition methods require the default (enabled) state so
    /// clique counting and the network agree.
    pub fn set_boundary_enabled(&mut self, on: bool) {
        self.boundary_enabled = on;
    }

    /// Builds the arc structure once; capacities are installed per
    /// solve.
    fn build_network(inst: &LocalInstance) -> ParametricNetwork {
        let n = inst.n;
        let h = inst.h as i128;
        let fc = inst.clique_count();
        let bc = inst.boundary.len();
        let t = (1 + n + fc + bc) as u32;
        let base = lcm_up_to(inst.h as u32);
        let mut pn = ParametricNetwork::new(t as usize + 1, 0, t, base);
        // parametric arc layout: [0, n) = s→v; [n, 2n) = v→t; then the
        // boundary in-arcs in boundary/member order
        for v in 0..n as u32 {
            pn.add_parametric(0, v + 1);
        }
        for v in 0..n as u32 {
            pn.add_parametric(v + 1, t);
        }
        for (i, members) in inst.full.chunks_exact(inst.h).enumerate() {
            let cnode = (1 + n + i) as u32;
            for &v in members {
                pn.add_static(v + 1, cnode, base);
                pn.add_static(cnode, v + 1, (h - 1) * base);
            }
        }
        for (j, b) in inst.boundary.iter().enumerate() {
            let cnode = (1 + n + fc + j) as u32;
            for &v in &b.inside {
                pn.add_parametric(v + 1, cnode);
                pn.add_static(cnode, v + 1, (h - 1) * base);
            }
        }
        pn
    }

    /// Re-tunes the network to threshold `rho` (optionally pinning
    /// `forced` vertices to the source side with an effectively
    /// infinite `s → v` capacity) and solves it.
    fn solve(&mut self, rho: Ratio, forced: Option<&[bool]>) {
        if self.reuse == FlowReuse::Scratch {
            self.net = None;
        }
        if self.net.is_none() {
            self.net = Some(Self::build_network(self.inst.borrow()));
        }
        let (n, h, gadget_nodes) = {
            let inst = self.inst.borrow();
            (
                inst.n,
                inst.h as i128,
                (inst.clique_count() + inst.boundary.len() + 1) as i128,
            )
        };
        let pn = self.net.as_mut().expect("just built");
        let scale = pn.scale_for(rho.den());
        let factor = scale / pn.base_scale();
        let vt_cap = (rho * Ratio::from_int(h)).scale_to_int(scale);
        assert!(vt_cap >= 0, "threshold must be non-negative");
        // "infinite" = more than any finite cut can carry
        let inf = (h * scale)
            .saturating_mul(gadget_nodes)
            .saturating_add(vt_cap.saturating_mul(n as i128 + 1))
            .saturating_add(1);
        let mut caps = Vec::with_capacity(pn.param_count());
        for v in 0..n {
            let dv = self.deg_interior[v]
                + if self.boundary_enabled {
                    self.deg_boundary[v]
                } else {
                    0
                };
            caps.push(if forced.is_some_and(|f| f[v]) {
                inf
            } else {
                dv * factor
            });
        }
        caps.resize(2 * n, vt_cap);
        for &incap in &self.boundary_in_base {
            caps.push(if self.boundary_enabled {
                incap * factor
            } else {
                0
            });
        }
        let policy = if self.reuse == FlowReuse::Ggt {
            ReusePolicy::Retract
        } else {
            ReusePolicy::Reset
        };
        pn.solve_with(scale, &caps, policy);
    }

    fn vertex_side(&self, side: &[bool]) -> Vec<bool> {
        (0..self.instance().n).map(|v| side[v + 1]).collect()
    }

    /// Minimal maximizer of `|Ψ(A)| − ρ|A|` over vertex subsets: the
    /// minimal min-cut source side. Empty iff the maximum is 0, i.e. no
    /// subgraph has h-clique density exceeding `rho`.
    pub fn max_excess_set(&mut self, rho: Ratio) -> Vec<bool> {
        if self.instance().n == 0 {
            return Vec::new();
        }
        self.solve(rho, None);
        let side = self.net.as_ref().expect("solved").min_cut_source_side();
        self.vertex_side(&side)
    }

    /// `IsDensest`: whether no subgraph of the local universe has
    /// h-clique density strictly greater than `rho`.
    pub fn is_densest(&mut self, rho: Ratio) -> bool {
        self.max_excess_set(rho).iter().all(|&b| !b)
    }

    /// `DeriveCompact(G, ρ − 1/n², P)`: membership of the union of all
    /// maximal h-clique `ρ`-compact subgraphs (Theorem 5) — the maximal
    /// min-cut source side at the perturbed threshold.
    pub fn derive_compact(&mut self, rho: Ratio) -> Vec<bool> {
        let n = self.instance().n;
        if n == 0 {
            return Vec::new();
        }
        let eps = Ratio::new(1, (n as i128) * (n as i128));
        let thr = (rho - eps).max(Ratio::zero());
        self.solve(thr, None);
        let side = self.net.as_ref().expect("solved").max_cut_source_side();
        self.vertex_side(&side)
    }

    /// Exact densest-subgraph decomposition of the local universe by
    /// Goldberg-style iteration: returns `(ρ*, U)` where `ρ*` is the
    /// maximum h-clique density over all subsets and `U` the union of
    /// all maximal `ρ*`-compact subgraphs. `None` when the universe
    /// holds no clique.
    ///
    /// The minimal maximizers are nested as `ρ` increases, so the
    /// iteration performs at most `n` max-flows (2–5 in practice) — all
    /// on the one retained network, warm-started while ρ climbs.
    pub fn densest_decomposition(&mut self) -> Option<(Ratio, Vec<bool>)> {
        assert!(
            self.boundary_enabled || self.instance().boundary.is_empty(),
            "decomposition needs the boundary cliques enabled"
        );
        if self.instance().n == 0 || self.instance().clique_count() == 0 {
            return None;
        }
        let mut rho = self.instance().density().expect("non-empty");
        let mut guard = 0usize;
        loop {
            let set = self.max_excess_set(rho);
            let size = set.iter().filter(|&&b| b).count();
            if size == 0 {
                break;
            }
            let inside = count_inside(self.instance(), &set);
            let denser = Ratio::new(inside as i128, size as i128);
            debug_assert!(denser > rho, "density must strictly increase");
            rho = denser;
            guard += 1;
            assert!(
                guard <= self.instance().n + 2,
                "densest-subgraph iteration failed to converge"
            );
        }
        Some((rho, self.derive_compact(rho)))
    }

    /// Marginal-density step of the dense decomposition: given the
    /// union `forced` of all higher levels, finds the next level — the
    /// maximal set `A ⊇ forced` maximizing the marginal density
    /// `(|Ψ(A)| − |Ψ(forced)|) / (|A| − |forced|)` — by Goldberg
    /// iteration with the forced vertices pinned to the source side.
    /// Returns the marginal density and the *new* vertices (level
    /// members), or `None` when no vertex outside `forced` participates
    /// in any clique gain. One retained network serves the whole ladder
    /// across calls with growing `forced` sets.
    pub fn next_density_level(&mut self, forced: &[bool]) -> Option<(Ratio, Vec<bool>)> {
        assert!(
            self.boundary_enabled || self.instance().boundary.is_empty(),
            "decomposition needs the boundary cliques enabled"
        );
        let n = self.instance().n;
        let forced_count = forced.iter().filter(|&&f| f).count();
        if n == 0 || forced_count == n {
            return None;
        }
        let base_inside = count_inside(self.instance(), forced) as i128;

        // Marginal gain of the full universe; if zero, no further level.
        let full = vec![true; n];
        let total = count_inside(self.instance(), &full) as i128;
        if total == base_inside {
            return None;
        }
        let mut rho = Ratio::new(total - base_inside, (n - forced_count) as i128);

        // Goldberg iteration on the marginal density: the minimal
        // maximizer of |Ψ(A)| − ρ|A| over A ⊇ forced shrinks as ρ grows.
        let mut guard = 0usize;
        let mut best = rho;
        loop {
            self.solve(rho, Some(forced));
            let side = self.net.as_ref().expect("solved").min_cut_source_side();
            let set = self.vertex_side(&side);
            let new_count = set
                .iter()
                .zip(forced)
                .filter(|&(&inside, &f)| inside && !f)
                .count();
            if new_count == 0 {
                break;
            }
            let inside = count_inside(self.instance(), &set) as i128;
            let marginal = Ratio::new(inside - base_inside, new_count as i128);
            debug_assert!(marginal >= rho);
            if marginal == best && marginal == rho {
                best = marginal;
                break;
            }
            best = marginal;
            rho = marginal;
            guard += 1;
            assert!(guard <= n + 2, "marginal-density iteration diverged");
        }

        // Largest maximizer at the final level (ε-perturbed threshold).
        let eps = Ratio::new(1, (n as i128) * (n as i128));
        let thr = (best - eps).max(Ratio::zero());
        self.solve(thr, Some(forced));
        let side = self.net.as_ref().expect("solved").max_cut_source_side();
        let level: Vec<bool> = (0..n).map(|v| side[v + 1] && !forced[v]).collect();
        debug_assert!(level.iter().any(|&b| b), "level must be non-empty");
        Some((best, level))
    }

    /// The *entire* dense-decomposition ladder in one GGT
    /// divide-and-conquer: marginal densities with their level
    /// memberships, strictly descending, computed on a single shared
    /// network whose flow is never reset (see [`GgtSolver`]).
    ///
    /// The instance network is exactly a GGT parametric family — the
    /// `s → v` clique-degree arcs are constant and the `v → t` arcs grow
    /// as `ρ·h` — and its principal-partition breakpoints are the
    /// marginal densities, with the partition classes the levels. Levels
    /// at density ≤ 0 (vertices in no clique) are part of the raw
    /// partition; callers building a [`crate::density::DenseDecomposition`]
    /// drop them, exactly like the probe-walk path does.
    pub fn ggt_ladder(&mut self) -> Vec<(Ratio, Vec<bool>)> {
        assert!(
            self.boundary_enabled || self.instance().boundary.is_empty(),
            "decomposition needs the boundary cliques enabled"
        );
        let inst = self.inst.borrow();
        let n = inst.n;
        if n == 0 {
            return Vec::new();
        }
        let h = inst.h as i128;
        let fc = inst.clique_count();
        let bc = inst.boundary.len();
        let t = (1 + n + fc + bc) as u32;
        let base = lcm_up_to(inst.h as u32);
        // Same node layout and capacities as `build_network`, with the
        // terminal arcs as the λ-ladder: src = clique degree, slope = h.
        let mut g = GgtSolver::new(t as usize + 1, 0, t, base);
        for v in 0..n {
            let dv = self.deg_interior[v] + self.deg_boundary[v];
            g.ladder_node((v + 1) as u32, dv, h);
        }
        for (i, members) in inst.full.chunks_exact(inst.h).enumerate() {
            let cnode = (1 + n + i) as u32;
            for &v in members {
                g.add_static(v + 1, cnode, base);
                g.add_static(cnode, v + 1, (h - 1) * base);
            }
        }
        for (j, b) in inst.boundary.iter().enumerate() {
            let cnode = (1 + n + fc + j) as u32;
            let cnt = b.inside.len() as i128;
            for &v in &b.inside {
                g.add_static(v + 1, cnode, h * base / cnt);
                g.add_static(cnode, v + 1, (h - 1) * base);
            }
        }
        g.principal_partition_par(self.threads)
    }
}

/// Minimal maximizer of `|Ψ(A)| − ρ|A|` over vertex subsets (see
/// [`InstanceSolver::max_excess_set`]). Compatibility wrapper over a
/// throwaway borrowing solver; probe-heavy callers should hold an
/// [`InstanceSolver`].
pub fn max_excess_set(inst: &LocalInstance, rho: Ratio) -> Vec<bool> {
    InstanceSolver::new(inst).max_excess_set(rho)
}

/// `IsDensest` (see [`InstanceSolver::is_densest`]). Compatibility
/// wrapper over a throwaway solver.
pub fn is_densest(inst: &LocalInstance, rho: Ratio) -> bool {
    InstanceSolver::new(inst).is_densest(rho)
}

/// `DeriveCompact(G, ρ − 1/n², P)` (see
/// [`InstanceSolver::derive_compact`]). Compatibility wrapper over a
/// throwaway solver.
pub fn derive_compact(inst: &LocalInstance, rho: Ratio) -> Vec<bool> {
    InstanceSolver::new(inst).derive_compact(rho)
}

/// Exact densest-subgraph decomposition (see
/// [`InstanceSolver::densest_decomposition`]). The wrapper still reuses
/// one network across the whole Goldberg ladder of this call.
pub fn densest_decomposition(inst: &LocalInstance) -> Option<(Ratio, Vec<bool>)> {
    InstanceSolver::new(inst).densest_decomposition()
}

/// Marginal-density step (see
/// [`InstanceSolver::next_density_level`]). Ladder-walking callers
/// should hold an [`InstanceSolver`] so all levels share one network.
pub fn next_density_level(inst: &LocalInstance, forced: &[bool]) -> Option<(Ratio, Vec<bool>)> {
    InstanceSolver::new(inst).next_density_level(forced)
}

/// Number of interior cliques fully inside `set` plus boundary cliques
/// whose inside members are all in `set` (each counts as one clique, as
/// in the Figure 7 network).
pub fn count_inside(inst: &LocalInstance, set: &[bool]) -> u64 {
    let mut c = 0u64;
    'full: for members in inst.full.chunks_exact(inst.h) {
        for &v in members {
            if !set[v as usize] {
                continue 'full;
            }
        }
        c += 1;
    }
    'bnd: for b in &inst.boundary {
        for &v in &b.inside {
            if !set[v as usize] {
                continue 'bnd;
            }
        }
        c += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn instance_of(g: &CsrGraph, h: usize) -> LocalInstance {
        let cs = CliqueSet::enumerate(g, h);
        let all: Vec<VertexId> = g.vertices().collect();
        local_instance(&cs, &all).0
    }

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn local_instance_filters_interior_cliques() {
        // triangle 0-1-2 and triangle 2-3-4; restrict to {0,1,2,3}:
        // only the first triangle is interior.
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let cs = CliqueSet::enumerate(&g, 3);
        let (inst, map) = local_instance(&cs, &[0, 1, 2, 3]);
        assert_eq!(inst.n, 4);
        assert_eq!(inst.clique_count(), 1);
        assert_eq!(map, vec![0, 1, 2, 3]);
    }

    #[test]
    fn complete_graph_is_self_densest() {
        let inst = instance_of(&complete(6), 3);
        let rho = inst.density().unwrap();
        assert_eq!(rho, Ratio::new(20, 6));
        assert!(is_densest(&inst, rho));
        // but not densest at any smaller threshold
        assert!(!is_densest(&inst, rho - Ratio::new(1, 100)));
    }

    #[test]
    fn pendant_makes_graph_not_self_densest() {
        // K5 + pendant vertex: overall density 10/6 < inner K5's 10/5.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        let inst = instance_of(&b.build(), 3);
        let rho = inst.density().unwrap();
        assert_eq!(rho, Ratio::new(10, 6));
        assert!(!is_densest(&inst, rho));
        // the excess set is exactly the K5
        let set = max_excess_set(&inst, rho);
        assert_eq!(set, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn densest_decomposition_finds_inner_k5() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5).add_edge(5, 6);
        let inst = instance_of(&b.build(), 3);
        let (rho, members) = densest_decomposition(&inst).unwrap();
        assert_eq!(rho, Ratio::from_int(2)); // 10 triangles / 5 vertices
        assert_eq!(members, vec![true, true, true, true, true, false, false]);
    }

    #[test]
    fn decomposition_returns_all_tied_regions() {
        // two disjoint K4s: both maximal 1-compact (4 triangles / 4
        // vertices = 1); the union must contain both.
        let mut b = GraphBuilder::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        let inst = instance_of(&b.build(), 3);
        let (rho, members) = densest_decomposition(&inst).unwrap();
        assert_eq!(rho, Ratio::from_int(1));
        assert!(members.iter().all(|&m| m));
    }

    #[test]
    fn clique_free_universe_has_no_decomposition() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let inst = instance_of(&g, 3);
        assert!(densest_decomposition(&inst).is_none());
    }

    #[test]
    fn figure2_s1_density_13_over_6() {
        // K6 minus two adjacent edges (the paper's S1): 13 triangles on
        // 6 vertices, self-densest at 13/6.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                if (u, v) == (0, 1) || (u, v) == (0, 2) {
                    continue; // remove two edges sharing vertex 0
                }
                b.add_edge(u, v);
            }
        }
        let inst = instance_of(&b.build(), 3);
        let (rho, members) = densest_decomposition(&inst).unwrap();
        assert_eq!(rho, Ratio::new(13, 6));
        assert!(members.iter().all(|&m| m));
        assert!(is_densest(&inst, rho));
    }

    #[test]
    fn boundary_clique_counts_when_inside_members_kept() {
        // Universe = one edge {0, 1} (no interior triangle), plus a
        // boundary triangle with cnt = 2 inside members. Keeping both
        // members yields 1 clique at density 1/2.
        let inst = LocalInstance {
            n: 2,
            h: 3,
            full: Vec::new(),
            boundary: vec![BoundaryClique { inside: vec![0, 1] }],
        };
        let all = vec![true, true];
        assert_eq!(count_inside(&inst, &all), 1);
        // at rho = 1/2 the pair is exactly compact: no denser subset
        assert!(is_densest(&inst, Ratio::new(1, 2)));
        // at a smaller threshold the pair (or a single vertex) has
        // positive excess
        let set = max_excess_set(&inst, Ratio::new(1, 3));
        assert!(set.iter().any(|&b| b));
        // derive_compact at 1/2 keeps both members
        let kept = derive_compact(&inst, Ratio::new(1, 2));
        assert_eq!(kept, vec![true, true]);
    }

    #[test]
    fn derive_compact_drops_subthreshold_fringe() {
        // K5 with pendant: maximal 2-compact subgraph = the K5 alone.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        let inst = instance_of(&b.build(), 3);
        let kept = derive_compact(&inst, Ratio::from_int(2));
        assert_eq!(kept, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn solver_reuse_matches_scratch_on_a_ladder() {
        // K5 + pendant + tail: the decomposition ladder runs several
        // probes; a single reused network must answer each identically
        // to the rebuild-per-probe mode, and to the free wrappers.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5).add_edge(5, 6);
        let g = b.build();
        let cs = CliqueSet::enumerate(&g, 3);
        let all: Vec<VertexId> = g.vertices().collect();
        let (inst, _) = local_instance(&cs, &all);

        let mut reused = InstanceSolver::new(inst.clone());
        let a = reused.densest_decomposition().unwrap();
        for tier in [FlowReuse::Scratch, FlowReuse::Warm, FlowReuse::Ggt] {
            let mut s = InstanceSolver::with_reuse(inst.clone(), tier);
            assert_eq!(a, s.densest_decomposition().unwrap(), "{tier}");
        }
        assert_eq!(a, densest_decomposition(&inst).unwrap());
        // (the work-counter contracts — one network per ladder, warm
        // hits along it — live in tests/flow_reuse.rs, which owns its
        // process so the global counters are quiet)

        // per-threshold probes agree too, on yet another shared network
        let mut probe = InstanceSolver::new(inst.clone());
        for rho in [
            Ratio::zero(),
            Ratio::new(1, 3),
            Ratio::new(10, 6),
            Ratio::from_int(2),
            Ratio::new(5, 2),
        ] {
            assert_eq!(probe.max_excess_set(rho), max_excess_set(&inst, rho));
            assert_eq!(probe.derive_compact(rho), derive_compact(&inst, rho));
            assert_eq!(probe.is_densest(rho), is_densest(&inst, rho));
        }
    }

    /// Walks the marginal-density ladder probe-by-probe (the Goldberg
    /// path) and returns `(density, level-mask)` pairs, for comparing
    /// against [`InstanceSolver::ggt_ladder`].
    fn walk_ladder(inst: &LocalInstance) -> Vec<(Ratio, Vec<bool>)> {
        let mut solver = InstanceSolver::with_reuse(inst, FlowReuse::Scratch);
        let mut forced = vec![false; inst.n];
        let mut out = Vec::new();
        while let Some((rho, level)) = solver.next_density_level(&forced) {
            for (f, &l) in forced.iter_mut().zip(&level) {
                *f = *f || l;
            }
            out.push((rho, level));
        }
        out
    }

    #[test]
    fn ggt_ladder_matches_the_probe_walk() {
        // K5 + pendant + tail (three levels incl. density-0 fringe) and
        // the Figure 2 S1 block (a single level: degenerate ladder)
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5).add_edge(5, 6);
        for inst in [instance_of(&b.build(), 3), instance_of(&complete(6), 3)] {
            let ggt = InstanceSolver::new(inst.clone()).ggt_ladder();
            let walk = walk_ladder(&inst);
            // the walk stops before density-0 fringes; the raw GGT
            // partition includes them as breakpoint-0 classes
            let positive: Vec<_> = ggt
                .iter()
                .filter(|(rho, _)| *rho > Ratio::zero())
                .cloned()
                .collect();
            let walk_pos: Vec<_> = walk
                .into_iter()
                .filter(|(rho, _)| *rho > Ratio::zero())
                .collect();
            assert_eq!(positive, walk_pos);
        }
    }

    #[test]
    fn ggt_ladder_covers_boundary_cliques() {
        let inst = LocalInstance {
            n: 2,
            h: 3,
            full: Vec::new(),
            boundary: vec![BoundaryClique { inside: vec![0, 1] }],
        };
        let ladder = InstanceSolver::new(inst.clone()).ggt_ladder();
        assert_eq!(ladder, vec![(Ratio::new(1, 2), vec![true, true])]);
    }

    #[test]
    fn boundary_toggle_shares_one_network_across_variants() {
        // An edge with one boundary triangle: with the boundary clique
        // enabled the pair is 1/2-compact; disabled, the instance holds
        // no clique at all and DeriveCompact keeps nothing.
        let inst = LocalInstance {
            n: 2,
            h: 3,
            full: Vec::new(),
            boundary: vec![BoundaryClique { inside: vec![0, 1] }],
        };
        let mut solver = InstanceSolver::new(inst.clone());
        assert_eq!(solver.derive_compact(Ratio::new(1, 2)), vec![true, true]);
        solver.set_boundary_enabled(false);
        assert_eq!(solver.derive_compact(Ratio::new(1, 2)), vec![false, false]);
        solver.set_boundary_enabled(true);
        assert_eq!(solver.derive_compact(Ratio::new(1, 2)), vec![true, true]);
        // the disabled variant equals a boundary-free instance
        let bare = LocalInstance {
            n: 2,
            h: 3,
            full: Vec::new(),
            boundary: Vec::new(),
        };
        assert_eq!(derive_compact(&bare, Ratio::new(1, 2)), vec![false, false]);
    }

    #[test]
    fn empty_universe_edge_cases() {
        let inst = LocalInstance {
            n: 0,
            h: 3,
            full: Vec::new(),
            boundary: Vec::new(),
        };
        assert!(max_excess_set(&inst, Ratio::from_int(1)).is_empty());
        assert!(derive_compact(&inst, Ratio::from_int(1)).is_empty());
        assert!(inst.density().is_none());
    }
}
