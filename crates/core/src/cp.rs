//! The convex program `CP(G, h)` and its SEQ-kClist++ solver (§4.2.2).
//!
//! Each h-clique distributes one unit of weight among its `h` member
//! vertices (`α[u, ψ] ≥ 0`, `Σ_{u∈ψ} α[u,ψ] = 1`); `r(u)` is the total
//! weight landing on `u`. `CP(G,h)` minimizes `Σ_u r(u)²`, and at the
//! optimum `r*(u)` equals the h-clique compact number `φh(u)`
//! (Theorem 2). SEQ-kClist++ (Sun et al., adapted as the paper's
//! Algorithm 2 lines 5–13) approximates the optimum with Frank–Wolfe
//! style rounds: at round `t` all weights shrink by `1 − γ_t`
//! (`γ_t = 1/(t+1)`) and each clique donates `γ_t` to its currently
//! poorest member — updating `r` *sequentially* within the round, which
//! converges markedly faster than the batch variant and needs no second
//! weight array.

use lhcds_clique::CliqueSet;

/// A feasible solution `(α, r)` of `CP(G, h)`.
#[derive(Debug, Clone)]
pub struct CpState {
    /// `alpha[i*h + j]` = weight clique `i` assigns to its j-th member.
    pub alpha: Vec<f64>,
    /// `r[u]` = Σ of alpha over cliques containing `u`.
    pub r: Vec<f64>,
}

impl CpState {
    /// `α` entries of clique `i`.
    #[inline]
    pub fn alpha_of(&self, h: usize, i: usize) -> &[f64] {
        &self.alpha[i * h..(i + 1) * h]
    }

    /// Recomputes `r` from `alpha` (used after redistribution).
    pub fn recompute_r(&mut self, cliques: &CliqueSet) {
        let h = cliques.h();
        self.r.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..cliques.len() {
            for (j, &v) in cliques.members(i).iter().enumerate() {
                self.r[v as usize] += self.alpha[i * h + j];
            }
        }
    }
}

/// Runs `iterations` rounds of SEQ-kClist++ and returns the feasible
/// solution. With `iterations == 0` this is the uniform initialization
/// (`α = 1/h`, `r(u) = deg(u, ψh)/h`).
pub fn seq_kclist_pp(cliques: &CliqueSet, iterations: usize) -> CpState {
    seq_kclist_pp_threaded(cliques, iterations, 1)
}

/// Minimum slice length per worker before the element-wise phases of a
/// round are split across threads; below this the spawn cost dominates.
const CP_MIN_CHUNK: usize = 1 << 14;

/// Scales every element of `xs` by `keep`, splitting the slice across at
/// most `threads` scoped workers. Each element sees exactly one multiply
/// regardless of how the slice is chunked, so the result is bit-identical
/// to the serial loop at any thread count.
fn scale_chunked(xs: &mut [f64], keep: f64, threads: usize) {
    let workers = threads.min(xs.len() / CP_MIN_CHUNK).max(1);
    if workers == 1 {
        xs.iter_mut().for_each(|x| *x *= keep);
        return;
    }
    let chunk = xs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for part in xs.chunks_mut(chunk) {
            scope.spawn(move || part.iter_mut().for_each(|x| *x *= keep));
        }
    });
}

/// [`seq_kclist_pp`] with the *round-permitting* phases parallelized.
///
/// Only two pieces of a round are order-independent: the uniform
/// initialization (`r(u) = deg(u)/h`, each vertex on its own) and the
/// per-round shrink (`α *= 1−γ_t`, `r *= 1−γ_t`, element-wise). Those
/// run chunked across scoped workers and stay bit-identical because
/// every element's float operation sequence is unchanged. The donation
/// loop does **not** permit parallelism: clique `i`'s argmin reads the
/// `r` updates of every earlier clique in the same round — that strict
/// chain is the "SEQ" in SEQ-kClist++ and the reason it converges faster
/// than the batch variant — so it stays serial at every thread count.
pub fn seq_kclist_pp_threaded(cliques: &CliqueSet, iterations: usize, threads: usize) -> CpState {
    let h = cliques.h();
    let n = cliques.n();
    let count = cliques.len();
    let threads = threads.max(1);

    let mut alpha = vec![1.0 / h as f64; count * h];
    let mut r = vec![0.0f64; n];
    {
        let workers = threads.min(n / CP_MIN_CHUNK).max(1);
        if workers == 1 {
            for (v, x) in r.iter_mut().enumerate() {
                *x = cliques.degree(v as u32) as f64 / h as f64;
            }
        } else {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (ci, part) in r.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for (j, x) in part.iter_mut().enumerate() {
                            let v = (ci * chunk + j) as u32;
                            *x = cliques.degree(v) as f64 / h as f64;
                        }
                    });
                }
            });
        }
    }

    for t in 1..=iterations {
        let gamma = 1.0 / (t as f64 + 1.0);
        let keep = 1.0 - gamma;
        scale_chunked(&mut alpha, keep, threads);
        scale_chunked(&mut r, keep, threads);
        for i in 0..count {
            let members = cliques.members(i);
            // argmin r over members (first minimum wins, deterministic)
            let mut jmin = 0usize;
            let mut rmin = r[members[0] as usize];
            for (j, &v) in members.iter().enumerate().skip(1) {
                let rv = r[v as usize];
                if rv < rmin {
                    rmin = rv;
                    jmin = j;
                }
            }
            alpha[i * h + jmin] += gamma;
            r[members[jmin] as usize] += gamma;
        }
    }

    CpState { alpha, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Weight conservation: Σ_u r(u) = |Ψh| after any number of rounds.
    #[test]
    fn r_mass_is_conserved() {
        let g = complete(6);
        let cs = CliqueSet::enumerate(&g, 3);
        for iters in [0, 1, 5, 40] {
            let st = seq_kclist_pp(&cs, iters);
            let total: f64 = st.r.iter().sum();
            assert!(
                (total - cs.len() as f64).abs() < 1e-9,
                "iters={iters}: Σr = {total}, |Ψ| = {}",
                cs.len()
            );
        }
    }

    /// Per-clique feasibility: Σ_{u∈ψ} α[u,ψ] = 1.
    #[test]
    fn alpha_rows_sum_to_one() {
        let g = complete(5);
        let cs = CliqueSet::enumerate(&g, 3);
        let st = seq_kclist_pp(&cs, 25);
        for i in 0..cs.len() {
            let s: f64 = st.alpha_of(3, i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "clique {i}: Σα = {s}");
            assert!(st.alpha_of(3, i).iter().all(|&a| a >= 0.0));
        }
    }

    /// On a vertex-transitive graph the optimum is uniform: r*(u) =
    /// |Ψ|·h / (h·n) = |Ψ|/n for all u; SEQ-kClist++ should approach it.
    #[test]
    fn converges_to_uniform_on_complete_graph() {
        let g = complete(6);
        let cs = CliqueSet::enumerate(&g, 3);
        let st = seq_kclist_pp(&cs, 200);
        let expect = cs.len() as f64 / 6.0; // 20/6
        for &rv in &st.r {
            assert!((rv - expect).abs() < 0.15, "r = {rv}, expected ≈ {expect}");
        }
    }

    /// Figure 4 of the paper: in K5 with h = 3, the optimal r*(v) = 2
    /// for every vertex.
    #[test]
    fn figure4_k5_r_star_is_two() {
        let g = complete(5);
        let cs = CliqueSet::enumerate(&g, 3);
        let st = seq_kclist_pp(&cs, 300);
        for &rv in &st.r {
            assert!((rv - 2.0).abs() < 0.1, "r = {rv}");
        }
    }

    /// Two cliques of different sizes: r separates the dense region
    /// (higher r) from the sparse one after a few rounds.
    #[test]
    fn separates_dense_from_sparse() {
        // K5 on 0..5 and a lone triangle 5-6-7.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(5, 6).add_edge(6, 7).add_edge(7, 5);
        let cs = CliqueSet::enumerate(&b.build(), 3);
        let st = seq_kclist_pp(&cs, 50);
        let min_dense = st.r[0..5].iter().cloned().fold(f64::MAX, f64::min);
        let max_sparse = st.r[5..8].iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            min_dense > max_sparse,
            "dense {min_dense} should exceed sparse {max_sparse}"
        );
    }

    #[test]
    fn recompute_r_matches_incremental() {
        let g = complete(6);
        let cs = CliqueSet::enumerate(&g, 4);
        let mut st = seq_kclist_pp(&cs, 13);
        let incremental = st.r.clone();
        st.recompute_r(&cs);
        for (a, b) in incremental.iter().zip(&st.r) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    /// SEQ-kClist++ iterates cliques in store order, so the run is only
    /// reproducible because a parallel-enumerated store is byte-identical
    /// to the serial one — assert that contract end-to-end here.
    #[test]
    fn parallel_store_reproduces_cp_state_exactly() {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in u + 1..8 {
                if (u + v) % 3 != 0 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let serial = seq_kclist_pp(&CliqueSet::enumerate(&g, 3), 25);
        for t in [2usize, 4] {
            let cs = CliqueSet::enumerate_with(&g, 3, &lhcds_clique::Parallelism::threads(t));
            let par = seq_kclist_pp(&cs, 25);
            // bit-for-bit, not approximately: same store order ⇒ same
            // float operation sequence
            assert_eq!(par.r, serial.r, "threads={t}");
            assert_eq!(par.alpha, serial.alpha, "threads={t}");
        }
    }

    /// The threaded variant must be bit-identical to the serial solver:
    /// only the element-wise phases are chunked, and chunking never
    /// changes any individual element's float operation sequence. The
    /// graph is sized so `alpha` is long enough to actually split across
    /// workers (`count·h > CP_MIN_CHUNK`).
    #[test]
    fn threaded_rounds_are_bit_identical() {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut b = GraphBuilder::new();
        for u in 0..300u32 {
            for v in u + 1..300 {
                if rng() % 5 == 0 {
                    b.add_edge(u, v);
                }
            }
        }
        let cs = CliqueSet::enumerate(&b.build(), 3);
        assert!(
            cs.len() * 3 > CP_MIN_CHUNK,
            "graph too small to exercise chunking: {} cliques",
            cs.len()
        );
        let serial = seq_kclist_pp(&cs, 8);
        for t in [2usize, 4, 8] {
            let par = seq_kclist_pp_threaded(&cs, 8, t);
            assert_eq!(par.alpha, serial.alpha, "threads={t}");
            assert_eq!(par.r, serial.r, "threads={t}");
        }
    }

    #[test]
    fn empty_clique_set_is_fine() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2)]);
        let cs = CliqueSet::enumerate(&g, 3);
        let st = seq_kclist_pp(&cs, 10);
        assert!(st.r.iter().all(|&x| x == 0.0));
        assert!(st.alpha.is_empty());
    }
}
