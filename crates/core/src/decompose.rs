//! Tentative graph decomposition (`TentativeGD`, §4.2.3).
//!
//! Given an approximate CP solution `(α, r)`:
//!
//! 1. sort vertices by `r` descending;
//! 2. find the prefix positions that maximize the h-clique density of
//!    the prefix over every extension (the paper's breakpoint set `P`,
//!    Algorithm 2 line 16) — these cut the order into the initial
//!    partition `Ŝ₁ … Ŝ_l`;
//! 3. reassign the weight of every clique that straddles several parts
//!    entirely to its members in the *last* part it touches (the part
//!    with the lowest r values), evening out the weights the straddling
//!    clique contributed to higher parts;
//! 4. recompute `r`.
//!
//! After step 3 every clique's weight lives entirely inside one part,
//! which is what makes the stable-group conditions of Definition 6
//! checkable part-by-part (module [`crate::stable`]).

use crate::cp::CpState;
use lhcds_clique::CliqueSet;
use lhcds_graph::VertexId;

/// The tentative partition `Ŝ₁ … Ŝ_l` (descending r order).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Parts in order; concatenated they are the full r-descending order.
    pub parts: Vec<Vec<VertexId>>,
    /// `part_of[v]` = index of the part containing `v`.
    pub part_of: Vec<u32>,
}

impl Decomposition {
    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the decomposition has no parts (empty graph).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// Runs `TentativeGD`, mutating `state` (weight redistribution +
/// recomputed `r`) and returning the partition.
pub fn tentative_gd(cliques: &CliqueSet, state: &mut CpState) -> Decomposition {
    let n = cliques.n();
    let h = cliques.h();
    if n == 0 {
        return Decomposition {
            parts: Vec::new(),
            part_of: Vec::new(),
        };
    }

    // 1. Sort vertices by r descending (id ascending as tiebreak for
    // determinism).
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by(|&a, &b| {
        state.r[b as usize]
            .partial_cmp(&state.r[a as usize])
            .expect("r values are finite")
            .then(a.cmp(&b))
    });
    let mut rank = vec![0u32; n]; // rank in the order, 0-based
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }

    // 2. Prefix clique counts: a clique belongs to prefix q iff the max
    // rank of its members is < q (0-based ranks, prefix length q).
    let mut cliques_ending_at = vec![0u64; n];
    for i in 0..cliques.len() {
        let max_rank = cliques
            .members(i)
            .iter()
            .map(|&v| rank[v as usize])
            .max()
            .expect("non-empty clique");
        cliques_ending_at[max_rank as usize] += 1;
    }
    // density of prefix length q (1-based): cnt(q)/q. Breakpoints: q is a
    // breakpoint iff density(q) ≥ density(q') for all q' ≥ q. Computed by
    // a reverse sweep comparing exact fractions (cross-multiplication in
    // u128 to avoid both overflow and float ties).
    let mut breakpoints = Vec::new();
    let mut cnt = vec![0u64; n + 1];
    for q in 1..=n {
        cnt[q] = cnt[q - 1] + cliques_ending_at[q - 1];
    }
    let mut best_num = 0u64; // density numerator of best suffix candidate
    let mut best_den = 1u64;
    for q in (1..=n).rev() {
        // density(q) ≥ best ⟺ cnt[q] * best_den ≥ best_num * q
        if (cnt[q] as u128) * (best_den as u128) >= (best_num as u128) * (q as u128) {
            best_num = cnt[q];
            best_den = q as u64;
            breakpoints.push(q);
        }
    }
    breakpoints.reverse();
    debug_assert_eq!(*breakpoints.last().expect("n is a breakpoint"), n);

    // Partition the order at the breakpoints.
    let mut parts = Vec::with_capacity(breakpoints.len());
    let mut part_of = vec![0u32; n];
    let mut start = 0usize;
    for (pi, &bp) in breakpoints.iter().enumerate() {
        let part: Vec<VertexId> = order[start..bp].to_vec();
        for &v in &part {
            part_of[v as usize] = pi as u32;
        }
        parts.push(part);
        start = bp;
    }

    // 3. Redistribute straddling cliques' weight into their last part.
    for i in 0..cliques.len() {
        let members = cliques.members(i);
        let last_part = members
            .iter()
            .map(|&v| part_of[v as usize])
            .max()
            .expect("non-empty clique");
        let in_last: usize = members
            .iter()
            .filter(|&&v| part_of[v as usize] == last_part)
            .count();
        if in_last == members.len() {
            continue; // fully inside one part
        }
        let base = i * h;
        let mut moved = 0.0f64;
        for (j, &v) in members.iter().enumerate() {
            if part_of[v as usize] != last_part {
                moved += state.alpha[base + j];
                state.alpha[base + j] = 0.0;
            }
        }
        let share = moved / in_last as f64;
        for (j, &v) in members.iter().enumerate() {
            if part_of[v as usize] == last_part {
                state.alpha[base + j] += share;
            }
        }
    }

    // 4. Recompute r.
    state.recompute_r(cliques);

    Decomposition { parts, part_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::seq_kclist_pp;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn k5_plus_triangle() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        // triangle 5-6-7 attached to the K5 by edge 4-5
        b.add_edge(5, 6)
            .add_edge(6, 7)
            .add_edge(7, 5)
            .add_edge(4, 5);
        b.build()
    }

    #[test]
    fn parts_cover_all_vertices_once() {
        let g = k5_plus_triangle();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut st = seq_kclist_pp(&cs, 30);
        let d = tentative_gd(&cs, &mut st);
        let mut seen = vec![false; g.n()];
        for (pi, part) in d.parts.iter().enumerate() {
            for &v in part {
                assert!(!seen[v as usize], "vertex {v} appears twice");
                seen[v as usize] = true;
                assert_eq!(d.part_of[v as usize] as usize, pi);
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn dense_region_lands_in_first_part() {
        let g = k5_plus_triangle();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut st = seq_kclist_pp(&cs, 50);
        let d = tentative_gd(&cs, &mut st);
        // The K5 (vertices 0..5) is the densest prefix: the first part
        // must consist exactly of it.
        let mut first = d.parts[0].clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn alpha_mass_is_preserved_by_redistribution() {
        let g = k5_plus_triangle();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut st = seq_kclist_pp(&cs, 20);
        let before: f64 = st.alpha.iter().sum();
        let _ = tentative_gd(&cs, &mut st);
        let after: f64 = st.alpha.iter().sum();
        assert!((before - after).abs() < 1e-9);
        // feasibility still holds per clique
        for i in 0..cs.len() {
            let s: f64 = st.alpha_of(3, i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn straddling_weight_moves_to_last_part() {
        let g = k5_plus_triangle();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut st = seq_kclist_pp(&cs, 50);
        let d = tentative_gd(&cs, &mut st);
        for i in 0..cs.len() {
            let members = cs.members(i);
            let last = members
                .iter()
                .map(|&v| d.part_of[v as usize])
                .max()
                .unwrap();
            for (j, &v) in members.iter().enumerate() {
                if d.part_of[v as usize] != last {
                    assert_eq!(st.alpha[i * 3 + j], 0.0, "clique {i} member {v}");
                }
            }
        }
    }

    #[test]
    fn single_part_for_uniform_graph() {
        // complete graph: single densest prefix = everything
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut st = seq_kclist_pp(&cs, 100);
        let d = tentative_gd(&cs, &mut st);
        assert_eq!(d.len(), 1);
        assert_eq!(d.parts[0].len(), 6);
    }

    #[test]
    fn empty_graph_gives_empty_decomposition() {
        let g = CsrGraph::from_edges(0, []);
        let cs = CliqueSet::enumerate(&g, 3);
        let mut st = seq_kclist_pp(&cs, 5);
        let d = tentative_gd(&cs, &mut st);
        assert!(d.is_empty());
    }
}
