//! Exact h-clique dense decomposition and compact numbers.
//!
//! The paper's §5.1 connects LhCDS discovery to the *diminishingly
//! dense decomposition* of supermodular functions: the vertex set
//! splits into nested levels of strictly decreasing density, and by
//! Theorem 2 the level value of a vertex is exactly its h-clique
//! compact number `φh` (the optimum `r*` of `CP(G, h)`).
//!
//! This module computes the decomposition **exactly** with max-flow:
//! the first level is the union of all maximal `ρ*`-compact subgraphs
//! at the maximum subgraph density `ρ*`; each subsequent level
//! maximizes the *marginal* density over supersets of the union of the
//! higher levels (the classic principal-partition construction, solved
//! by [`crate::compact::next_density_level`] with the higher levels
//! pinned to the source side of the cut).
//!
//! Exact compact numbers are a strictly stronger deliverable than the
//! bounds the IPPV pipeline maintains — they answer "how locally dense
//! is *this* vertex" for every vertex at once — and they provide
//! independent golden values for the pipeline's tests (every LhCDS
//! member's compact number equals the subgraph density, Theorem 1).

use crate::compact::{local_instance, InstanceSolver};
use lhcds_clique::CliqueSet;
use lhcds_flow::{FlowReuse, Ratio};
use lhcds_graph::{CsrGraph, VertexId};

/// One level of the dense decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityLevel {
    /// The level value: the common h-clique compact number of the
    /// level's vertices.
    pub density: Ratio,
    /// Level members (ascending vertex ids).
    pub vertices: Vec<VertexId>,
}

/// The full dense decomposition of a graph.
#[derive(Debug, Clone)]
pub struct DenseDecomposition {
    /// Levels in strictly decreasing density order. Vertices in no
    /// h-clique are omitted (their compact number is 0).
    pub levels: Vec<DensityLevel>,
    /// Exact compact number `φh(v)` per vertex (0 for vertices in no
    /// h-clique).
    pub phi: Vec<Ratio>,
}

/// Computes the exact dense decomposition (and thereby all h-clique
/// compact numbers) of `g`.
pub fn dense_decomposition(g: &CsrGraph, h: usize) -> DenseDecomposition {
    assert!(h >= 2, "h-clique decomposition requires h >= 2");
    let cliques = CliqueSet::enumerate(g, h);
    dense_decomposition_with(g, &cliques)
}

/// Same as [`dense_decomposition`] with a pre-built instance store
/// (also used for general pattern decompositions).
pub fn dense_decomposition_with(g: &CsrGraph, cliques: &CliqueSet) -> DenseDecomposition {
    dense_decomposition_opts(g, cliques, FlowReuse::default())
}

/// [`dense_decomposition_with`] with the flow-network reuse tier
/// explicit. Under [`FlowReuse::Ggt`] (the default) the whole ladder is
/// one GGT principal-partition divide-and-conquer on a single
/// never-reset network ([`InstanceSolver::ggt_ladder`]); the other
/// tiers walk the marginal-density probe schedule, with
/// [`FlowReuse::Warm`] retaining one network across the walk and
/// [`FlowReuse::Scratch`] rebuilding per probe (the historical cost
/// model; the `flowreuse` bench A/Bs all three). Output is bit-identical
/// across tiers.
pub fn dense_decomposition_opts(
    g: &CsrGraph,
    cliques: &CliqueSet,
    flow_reuse: FlowReuse,
) -> DenseDecomposition {
    dense_decomposition_threaded(g, cliques, flow_reuse, 1)
}

/// [`dense_decomposition_opts`] with an explicit worker-thread count
/// for the GGT divide-and-conquer (ignored by the probe-walk tiers,
/// which are inherently sequential — each probe's threshold depends on
/// the previous cut). Output is byte-identical at every thread count.
pub fn dense_decomposition_threaded(
    g: &CsrGraph,
    cliques: &CliqueSet,
    flow_reuse: FlowReuse,
    threads: usize,
) -> DenseDecomposition {
    let n = g.n();
    let mut phi = vec![Ratio::zero(); n];
    let mut levels = Vec::new();
    if cliques.is_empty() {
        return DenseDecomposition { levels, phi };
    }
    let all: Vec<VertexId> = g.vertices().collect();
    let (inst, map) = local_instance(cliques, &all);
    let mut solver = InstanceSolver::with_reuse(inst, flow_reuse);
    solver.set_threads(threads);

    if flow_reuse == FlowReuse::Ggt {
        // One divide-and-conquer recovers every level; the classes come
        // back in strictly descending breakpoint order, exactly like
        // the probe walk emits them.
        for (density, level_mask) in solver.ggt_ladder() {
            if density <= Ratio::zero() {
                continue; // vertices in no clique: φ stays 0
            }
            let mut vertices = Vec::new();
            for (local, &m) in level_mask.iter().enumerate() {
                if m {
                    let v = map[local];
                    phi[v as usize] = density;
                    vertices.push(v);
                }
            }
            vertices.sort_unstable();
            levels.push(DensityLevel { density, vertices });
        }
        return DenseDecomposition { levels, phi };
    }

    let mut forced = vec![false; solver.instance().n];
    let mut last: Option<Ratio> = None;
    while let Some((density, level_mask)) = solver.next_density_level(&forced) {
        if let Some(prev) = last {
            debug_assert!(density < prev, "levels must strictly decrease");
        }
        last = Some(density);
        if density <= Ratio::zero() {
            break;
        }
        let mut vertices = Vec::new();
        for (local, &m) in level_mask.iter().enumerate() {
            if m {
                forced[local] = true;
                let v = map[local];
                phi[v as usize] = density;
                vertices.push(v);
            }
        }
        vertices.sort_unstable();
        levels.push(DensityLevel { density, vertices });
    }
    DenseDecomposition { levels, phi }
}

/// Exact h-clique compact numbers for every vertex (`φh`, Definition 4).
pub fn compact_numbers(g: &CsrGraph, h: usize) -> Vec<Ratio> {
    dense_decomposition(g, h).phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }

    #[test]
    fn k5_compact_numbers_match_figure4() {
        // Figure 4: every K5 vertex has φ3 = 2.
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        let g = b.build();
        let phi = compact_numbers(&g, 3);
        assert!(phi.iter().all(|&p| p == Ratio::from_int(2)));
    }

    #[test]
    fn separated_regions_form_levels() {
        // K5 (φ = 2), disjoint K4 (φ = 1), pendant path (φ = 0)
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(8, 9).add_edge(9, 10);
        let g = b.build();
        let d = dense_decomposition(&g, 3);
        assert_eq!(d.levels.len(), 2);
        assert_eq!(d.levels[0].density, Ratio::from_int(2));
        assert_eq!(d.levels[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.levels[1].density, Ratio::from_int(1));
        assert_eq!(d.levels[1].vertices, vec![5, 6, 7, 8]);
        assert_eq!(d.phi[9], Ratio::zero());
        assert_eq!(d.phi[10], Ratio::zero());
    }

    #[test]
    fn tied_regions_share_one_level() {
        // two disjoint K4s at φ = 1: one level with both
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3]);
        complete_on(&mut b, &[4, 5, 6, 7]);
        let g = b.build();
        let d = dense_decomposition(&g, 3);
        assert_eq!(d.levels.len(), 1);
        assert_eq!(d.levels[0].vertices.len(), 8);
        assert_eq!(d.levels[0].density, Ratio::from_int(1));
    }

    #[test]
    fn levels_strictly_decrease_and_cover_clique_vertices() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4, 5]);
        complete_on(&mut b, &[6, 7, 8, 9]);
        b.add_edge(5, 6);
        b.add_edge(9, 10).add_edge(10, 11).add_edge(11, 9);
        let g = b.build();
        let d = dense_decomposition(&g, 3);
        for w in d.levels.windows(2) {
            assert!(w[0].density > w[1].density);
        }
        let covered: usize = d.levels.iter().map(|l| l.vertices.len()).sum();
        let with_cliques = lhcds_clique::count_per_vertex(&g, 3)
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert_eq!(covered, with_cliques);
    }

    #[test]
    fn lhcds_members_have_phi_equal_density() {
        // Theorem 1 cross-check against the pipeline.
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(9, 10);
        let g = b.build();
        let phi = compact_numbers(&g, 3);
        let res = crate::pipeline::top_k_lhcds(
            &g,
            3,
            usize::MAX,
            &crate::pipeline::IppvConfig::default(),
        );
        for s in &res.subgraphs {
            for &v in &s.vertices {
                assert_eq!(phi[v as usize], s.density, "vertex {v}");
            }
        }
    }

    #[test]
    fn h2_decomposition_on_star() {
        // star K1,4 at h = 2: the whole star has edge density 4/5 and
        // every subgraph is sparser; φ2 = 4/5 for all 5 vertices.
        let g = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let d = dense_decomposition(&g, 2);
        assert_eq!(d.levels.len(), 1);
        assert_eq!(d.levels[0].density, Ratio::new(4, 5));
        assert_eq!(d.levels[0].vertices.len(), 5);
    }

    #[test]
    fn ladder_shares_one_network_and_matches_scratch() {
        // K5, K4, triangle at distinct levels: a multi-level ladder.
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(9, 10).add_edge(10, 11).add_edge(11, 9);
        let g = b.build();
        let cliques = CliqueSet::enumerate(&g, 3);
        let scratch = dense_decomposition_opts(&g, &cliques, FlowReuse::Scratch);
        assert_eq!(scratch.levels.len(), 3);
        for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
            let d = dense_decomposition_opts(&g, &cliques, tier);
            assert_eq!(d.levels, scratch.levels, "{tier} tier diverged");
            assert_eq!(d.phi, scratch.phi, "{tier} tier diverged");
        }
        // (the one-network-per-ladder counter contract lives in
        // tests/flow_reuse.rs, whose process owns the global counters)
    }

    #[test]
    fn threaded_ggt_ladder_is_byte_identical() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(9, 10).add_edge(10, 11).add_edge(11, 9);
        let g = b.build();
        let cliques = CliqueSet::enumerate(&g, 3);
        let serial = dense_decomposition_opts(&g, &cliques, FlowReuse::Ggt);
        for threads in [2usize, 4, 8] {
            let d = dense_decomposition_threaded(&g, &cliques, FlowReuse::Ggt, threads);
            assert_eq!(d.levels, serial.levels, "{threads} threads diverged");
            assert_eq!(d.phi, serial.phi, "{threads} threads diverged");
        }
    }

    #[test]
    fn clique_free_graph_has_empty_decomposition() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = dense_decomposition(&g, 3);
        assert!(d.levels.is_empty());
        assert!(d.phi.iter().all(|&p| p == Ratio::zero()));
    }
}
