//! The servable decomposition index — compute once, query many.
//!
//! A full IPPV run is a compute-once artifact: the LhCDSes it emits are
//! pairwise disjoint and totally ordered by exact density, so *every*
//! top-k query, per-vertex density lookup, and membership test is a
//! pure read over the finished decomposition. [`DecompositionIndex`]
//! freezes one run (one graph, one `h`) into a compact, immutable
//! answer table:
//!
//! * `top_k(k)` — the k densest LhCDSes, in `O(answer size)`;
//! * `density_of(v)` — the exact density of the LhCDS containing `v`;
//! * `membership(v)` — which LhCDS (rank + boundaries) `v` belongs to.
//!
//! No query ever touches the flow network: the index stores only plain
//! arrays (a CSR-style member slab with per-subgraph offsets, exact
//! `i128` density fractions, and a per-vertex rank table), and
//! construction is the only place the pipeline runs. Tests pin this
//! with [`lhcds_flow::max_flow_invocations`].
//!
//! The index is built from the **complete** decomposition
//! (`k = usize::MAX`), so membership answers are exact for every
//! vertex; [`IndexConfig::k_max`] only bounds the *served* top-k range
//! (the paper's evaluation never needs `k > 20`; serving layers want a
//! hard cap so a hostile `k` cannot request an unbounded answer).
//! Because the IPPV driver emits results in exact density order and its
//! candidate processing never depends on `k` except for stopping early,
//! `top_k(k)` of the index equals a fresh `top_k_lhcds(g, h, k, ..)`
//! run for every `k` in range — the integration suite asserts this
//! identity per (h, k) pair.
//!
//! ```
//! use lhcds_core::index::{DecompositionIndex, IndexConfig};
//! use lhcds_graph::CsrGraph;
//!
//! // Two triangles joined by a path: two LhCDSes at density 1/3.
//! let g = CsrGraph::from_edges(
//!     8,
//!     [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 5)],
//! );
//! let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
//! assert_eq!(idx.len(), 2);
//! let top = idx.top_k(1).unwrap();
//! assert_eq!(top[0].density.to_string(), "1/3");
//! assert_eq!(idx.membership(0).unwrap().rank, top[0].rank);
//! assert!(idx.density_of(4).is_none()); // path vertex: in no LhCDS
//! ```

use crate::pipeline::{top_k_lhcds, IppvConfig, Lhcds};
use lhcds_flow::Ratio;
use lhcds_graph::{CsrGraph, VertexId};

/// Sentinel in the per-vertex rank table: vertex is in no LhCDS.
const NO_RANK: u32 = u32::MAX;

/// Index construction options.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Largest `k` the index will serve. The underlying decomposition
    /// is always complete; this caps only the answer range a serving
    /// layer exposes (and therefore the size of a worst-case answer).
    pub k_max: usize,
    /// Pipeline configuration used for the one-time construction run.
    pub ippv: IppvConfig,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            k_max: 32,
            ippv: IppvConfig::default(),
        }
    }
}

/// Errors a query can produce (construction panics like the pipeline —
/// it is a build-time activity; queries must never panic a server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// `k` exceeds the configured serving range.
    KOutOfRange {
        /// The requested k.
        k: usize,
        /// The index's configured maximum.
        k_max: usize,
    },
    /// `k = 0` carries no information; reject it loudly.
    KZero,
    /// The vertex id is not a vertex of the indexed graph.
    VertexOutOfRange {
        /// The requested vertex.
        vertex: u64,
        /// Vertex count of the indexed graph.
        n: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::KOutOfRange { k, k_max } => {
                write!(
                    f,
                    "k = {k} exceeds the index's serving range (k_max = {k_max})"
                )
            }
            QueryError::KZero => write!(f, "k must be at least 1"),
            QueryError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (graph has {n} vertices)")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One indexed LhCDS, viewed by reference into the index's slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgraphView<'a> {
    /// 1-based density rank (rank 1 = densest).
    pub rank: usize,
    /// Member vertices, ascending.
    pub vertices: &'a [VertexId],
    /// Exact h-clique density.
    pub density: Ratio,
    /// Number of h-cliques inside the subgraph.
    pub clique_count: u64,
}

/// Errors raised when reassembling an index from untrusted parts (a
/// deserialized `LHCDSIDX` payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidIndex(pub String);

impl std::fmt::Display for InvalidIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid decomposition index: {}", self.0)
    }
}

impl std::error::Error for InvalidIndex {}

/// Raw index parts, as produced by [`DecompositionIndex::as_parts`] and
/// consumed by [`DecompositionIndex::try_from_parts`]. This is the
/// serialization contract of the `LHCDSIDX` on-disk format in
/// `lhcds-data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexParts {
    /// Clique size the index answers for.
    pub h: usize,
    /// Pattern key naming the decomposition this index froze
    /// (`clique.h{h}` for the h-clique pipeline; a pattern name such as
    /// `4-loop` or `custom.<fnv>` for an LhxPDS run). Must be non-empty
    /// and filename-safe (ASCII alphanumerics plus `-`, `.`, `_`).
    pub pattern: String,
    /// Configured serving cap.
    pub k_max: usize,
    /// Vertex count of the indexed graph.
    pub n: usize,
    /// Per-subgraph offsets into `members` (`len = count + 1`).
    pub offsets: Vec<usize>,
    /// Concatenated member lists, ascending within each subgraph.
    pub members: Vec<VertexId>,
    /// Exact density numerators, per subgraph (rank order).
    pub density_num: Vec<i128>,
    /// Exact density denominators, per subgraph (rank order).
    pub density_den: Vec<i128>,
    /// h-clique counts, per subgraph (rank order).
    pub clique_counts: Vec<u64>,
}

/// A frozen locally h-clique densest decomposition, queryable in
/// `O(answer size)` with no flow network anywhere on the read path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompositionIndex {
    h: usize,
    /// Pattern key of the frozen decomposition (see [`IndexParts`]).
    pattern: String,
    k_max: usize,
    n: usize,
    /// CSR-style subgraph storage, density-rank order.
    offsets: Vec<usize>,
    members: Vec<VertexId>,
    densities: Vec<Ratio>,
    clique_counts: Vec<u64>,
    /// vertex → 0-based rank of its LhCDS, `NO_RANK` when in none.
    /// Derived from `members` (never serialized — it cannot disagree).
    rank_of: Vec<u32>,
}

impl DecompositionIndex {
    /// Runs the IPPV pipeline to completion and freezes the result.
    ///
    /// This is the only expensive call in the module; everything below
    /// is array reads.
    pub fn build(g: &CsrGraph, h: usize, cfg: &IndexConfig) -> DecompositionIndex {
        let result = top_k_lhcds(g, h, usize::MAX, &cfg.ippv);
        Self::from_subgraphs(g.n(), h, cfg.k_max, &result.subgraphs)
    }

    /// Freezes an already-computed full decomposition (`subgraphs` must
    /// be a *complete* decomposition in emission order, as returned by
    /// `top_k_lhcds(g, h, usize::MAX, ..)`).
    pub fn from_subgraphs(
        n: usize,
        h: usize,
        k_max: usize,
        subgraphs: &[Lhcds],
    ) -> DecompositionIndex {
        let mut offsets = Vec::with_capacity(subgraphs.len() + 1);
        let mut members = Vec::new();
        let mut densities = Vec::with_capacity(subgraphs.len());
        let mut clique_counts = Vec::with_capacity(subgraphs.len());
        offsets.push(0);
        for s in subgraphs {
            members.extend_from_slice(&s.vertices);
            offsets.push(members.len());
            densities.push(s.density);
            clique_counts.push(s.clique_count);
        }
        let rank_of = derive_rank_table(n, &offsets, &members)
            .expect("pipeline output is a valid disjoint decomposition");
        DecompositionIndex {
            h,
            pattern: default_pattern_key(h),
            k_max: k_max.max(1),
            n,
            offsets,
            members,
            densities,
            clique_counts,
            rank_of,
        }
    }

    /// Relabels the index with an explicit pattern key (builder style).
    ///
    /// [`DecompositionIndex::build`] and
    /// [`DecompositionIndex::from_subgraphs`] default to the h-clique
    /// key `clique.h{h}`; an LhxPDS construction freezes
    /// `top_k_lhxpds(g, p, usize::MAX, ..).subgraphs` via
    /// `from_subgraphs` (with `h` = pattern arity) and then names the
    /// result with the pattern's key.
    ///
    /// # Panics
    /// Panics if `key` is empty or not filename-safe (construction is a
    /// build-time activity; see [`DecompositionIndex::try_from_parts`]
    /// for the error-returning path used on untrusted input).
    pub fn with_pattern(mut self, key: impl Into<String>) -> Self {
        let key = key.into();
        assert!(valid_pattern_key(&key), "invalid pattern key {key:?}");
        self.pattern = key;
        self
    }

    /// Clique size this index answers for.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Pattern key of the frozen decomposition (`clique.h{h}` for the
    /// h-clique pipeline).
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Largest `k` the index serves.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Narrows the serving cap to `min(current, k_max)` (never widens —
    /// answers beyond the built range do not exist). Serving layers
    /// call this after loading a persisted index that was built with a
    /// wider cap than the operator configured, so the configured
    /// `--k-max` is always the one actually enforced.
    pub fn clamp_k_max(&mut self, k_max: usize) {
        self.k_max = self.k_max.min(k_max.max(1));
    }

    /// Vertex count of the indexed graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of LhCDSes in the full decomposition.
    pub fn len(&self) -> usize {
        self.densities.len()
    }

    /// Whether the graph has no LhCDS at all (no h-clique anywhere).
    pub fn is_empty(&self) -> bool {
        self.densities.is_empty()
    }

    /// The subgraph at 0-based `rank`, if any.
    pub fn subgraph(&self, rank: usize) -> Option<SubgraphView<'_>> {
        if rank >= self.len() {
            return None;
        }
        Some(SubgraphView {
            rank: rank + 1,
            vertices: &self.members[self.offsets[rank]..self.offsets[rank + 1]],
            density: self.densities[rank],
            clique_count: self.clique_counts[rank],
        })
    }

    /// The top-k LhCDSes, densest first — identical to a fresh
    /// `top_k_lhcds(g, h, k, ..)` run, in `O(answer size)` time.
    pub fn top_k(&self, k: usize) -> Result<Vec<SubgraphView<'_>>, QueryError> {
        if k == 0 {
            return Err(QueryError::KZero);
        }
        if k > self.k_max {
            return Err(QueryError::KOutOfRange {
                k,
                k_max: self.k_max,
            });
        }
        Ok((0..k.min(self.len()))
            .map(|r| self.subgraph(r).expect("rank in range"))
            .collect())
    }

    /// Exact density of the LhCDS containing `v` (`None`: in none).
    pub fn density_of(&self, v: VertexId) -> Option<Ratio> {
        match self.rank_of.get(v as usize) {
            Some(&r) if r != NO_RANK => Some(self.densities[r as usize]),
            _ => None,
        }
    }

    /// The LhCDS containing `v`, with its rank and boundaries
    /// (`None`: `v` is in no LhCDS).
    pub fn membership(&self, v: VertexId) -> Option<SubgraphView<'_>> {
        match self.rank_of.get(v as usize) {
            Some(&r) if r != NO_RANK => self.subgraph(r as usize),
            _ => None,
        }
    }

    /// Checked variant of [`DecompositionIndex::membership`] for
    /// serving layers: distinguishes "no such vertex" (protocol error)
    /// from "vertex in no LhCDS" (a valid `null` answer).
    pub fn membership_checked(&self, v: u64) -> Result<Option<SubgraphView<'_>>, QueryError> {
        if v >= self.n as u64 {
            return Err(QueryError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        Ok(self.membership(v as VertexId))
    }

    /// Decomposes the index into its raw serializable parts.
    pub fn as_parts(&self) -> IndexParts {
        IndexParts {
            h: self.h,
            pattern: self.pattern.clone(),
            k_max: self.k_max,
            n: self.n,
            offsets: self.offsets.clone(),
            members: self.members.clone(),
            density_num: self.densities.iter().map(|d| d.num()).collect(),
            density_den: self.densities.iter().map(|d| d.den()).collect(),
            clique_counts: self.clique_counts.clone(),
        }
    }

    /// Rebuilds an index from untrusted parts, re-validating every
    /// structural invariant (a deserialized payload that survives its
    /// checksum can still be semantically nonsense):
    ///
    /// * offsets start at 0, end at `members.len()`, non-decreasing,
    ///   with no empty subgraph;
    /// * members in `0..n`, strictly ascending within each subgraph,
    ///   and globally disjoint across subgraphs;
    /// * densities positive, normalized, and non-increasing in rank
    ///   order; parallel arrays of equal length.
    pub fn try_from_parts(parts: IndexParts) -> Result<DecompositionIndex, InvalidIndex> {
        let IndexParts {
            h,
            pattern,
            k_max,
            n,
            offsets,
            members,
            density_num,
            density_den,
            clique_counts,
        } = parts;
        if h < 2 {
            return Err(InvalidIndex(format!("h = {h} (must be at least 2)")));
        }
        if !valid_pattern_key(&pattern) {
            return Err(InvalidIndex(format!(
                "pattern key {pattern:?} is empty or not filename-safe"
            )));
        }
        if k_max == 0 {
            return Err(InvalidIndex("k_max must be at least 1".into()));
        }
        let count = offsets
            .len()
            .checked_sub(1)
            .ok_or_else(|| InvalidIndex("offsets must hold at least the leading 0".into()))?;
        if density_num.len() != count || density_den.len() != count || clique_counts.len() != count
        {
            return Err(InvalidIndex(format!(
                "parallel arrays disagree: {count} subgraphs but {} numerators, \
                 {} denominators, {} clique counts",
                density_num.len(),
                density_den.len(),
                clique_counts.len()
            )));
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") != members.len() {
            return Err(InvalidIndex(
                "offsets must start at 0 and end at the member count".into(),
            ));
        }
        for w in offsets.windows(2) {
            if w[0] >= w[1] {
                return Err(InvalidIndex(
                    "offsets must be strictly increasing (no empty subgraph)".into(),
                ));
            }
        }
        for (rank, pair) in offsets.windows(2).enumerate() {
            let vs = &members[pair[0]..pair[1]];
            for w in vs.windows(2) {
                if w[0] >= w[1] {
                    return Err(InvalidIndex(format!(
                        "subgraph {rank} members must be strictly ascending"
                    )));
                }
            }
            if vs.last().is_some_and(|&v| v as usize >= n) {
                return Err(InvalidIndex(format!(
                    "subgraph {rank} has a member outside 0..{n}"
                )));
            }
        }
        let mut densities = Vec::with_capacity(count);
        for (rank, (&num, &den)) in density_num.iter().zip(&density_den).enumerate() {
            if num <= 0 || den <= 0 {
                return Err(InvalidIndex(format!(
                    "subgraph {rank} density {num}/{den} is not positive"
                )));
            }
            let r = Ratio::new(num, den);
            if (r.num(), r.den()) != (num, den) {
                return Err(InvalidIndex(format!(
                    "subgraph {rank} density {num}/{den} is not in lowest terms"
                )));
            }
            if let Some(&prev) = densities.last() {
                if r > prev {
                    return Err(InvalidIndex(format!(
                        "densities must be non-increasing (rank {rank} rose to {r})"
                    )));
                }
            }
            densities.push(r);
        }
        let rank_of = derive_rank_table(n, &offsets, &members)
            .ok_or_else(|| InvalidIndex("subgraphs overlap — LhCDSes are disjoint".into()))?;
        Ok(DecompositionIndex {
            h,
            pattern,
            k_max,
            n,
            offsets,
            members,
            densities,
            clique_counts,
            rank_of,
        })
    }
}

/// The h-clique pipeline's pattern key for clique size `h`.
pub fn default_pattern_key(h: usize) -> String {
    format!("clique.h{h}")
}

/// Whether `key` may name a persisted decomposition: non-empty ASCII
/// from the filename-safe alphabet (alphanumerics plus `-`, `.`, `_`).
pub fn valid_pattern_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "-._".contains(c))
}

/// Builds the vertex → rank table; `None` if two subgraphs overlap.
fn derive_rank_table(n: usize, offsets: &[usize], members: &[VertexId]) -> Option<Vec<u32>> {
    let mut rank_of = vec![NO_RANK; n];
    for (rank, pair) in offsets.windows(2).enumerate() {
        for &v in &members[pair[0]..pair[1]] {
            let slot = rank_of.get_mut(v as usize)?;
            if *slot != NO_RANK {
                return None;
            }
            *slot = rank as u32;
        }
    }
    Some(rank_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }

    fn k5_k4_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(8, 9).add_edge(9, 10);
        b.build()
    }

    #[test]
    fn index_matches_fresh_runs_for_every_k_in_range() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        assert_eq!(idx.len(), 2);
        for k in 1..=idx.k_max() {
            let fresh = top_k_lhcds(&g, 3, k, &IppvConfig::default());
            let served = idx.top_k(k).unwrap();
            assert_eq!(served.len(), fresh.subgraphs.len(), "k={k}");
            for (a, b) in served.iter().zip(&fresh.subgraphs) {
                assert_eq!(a.vertices, &b.vertices[..]);
                assert_eq!(a.density, b.density);
                assert_eq!(a.clique_count, b.clique_count);
            }
        }
    }

    #[test]
    fn membership_and_density_lookups() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        for v in 0..5u32 {
            assert_eq!(idx.density_of(v), Some(Ratio::from_int(2)), "K5 vertex {v}");
            assert_eq!(idx.membership(v).unwrap().rank, 1);
        }
        for v in 5..9u32 {
            assert_eq!(idx.density_of(v), Some(Ratio::from_int(1)), "K4 vertex {v}");
            assert_eq!(idx.membership(v).unwrap().rank, 2);
            assert_eq!(idx.membership(v).unwrap().vertices, &[5, 6, 7, 8]);
        }
        for v in 9..11u32 {
            assert!(idx.density_of(v).is_none(), "path vertex {v}");
            assert!(idx.membership(v).is_none());
        }
        // out of range is a protocol error, not a panic
        assert!(matches!(
            idx.membership_checked(11),
            Err(QueryError::VertexOutOfRange { vertex: 11, n: 11 })
        ));
        assert!(idx.membership_checked(9).unwrap().is_none());
        assert!(idx.membership_checked(0).unwrap().is_some());
    }

    #[test]
    fn query_range_is_enforced() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(
            &g,
            3,
            &IndexConfig {
                k_max: 4,
                ..IndexConfig::default()
            },
        );
        assert!(idx.top_k(4).is_ok());
        assert_eq!(
            idx.top_k(5),
            Err(QueryError::KOutOfRange { k: 5, k_max: 4 })
        );
        assert_eq!(idx.top_k(0), Err(QueryError::KZero));
        // k beyond the decomposition size (but in range) returns all
        assert_eq!(idx.top_k(4).unwrap().len(), 2);
    }

    #[test]
    fn queries_are_flow_free() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        let before = lhcds_flow::max_flow_invocations();
        for _ in 0..3 {
            let _ = idx.top_k(idx.k_max());
            for v in 0..g.n() as u32 {
                let _ = idx.density_of(v);
                let _ = idx.membership(v);
            }
        }
        assert_eq!(
            lhcds_flow::max_flow_invocations(),
            before,
            "index queries must never run a max-flow"
        );
    }

    #[test]
    fn parts_round_trip_is_identity() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        let back = DecompositionIndex::try_from_parts(idx.as_parts()).unwrap();
        assert_eq!(back, idx);
        // and the parts themselves are stable
        assert_eq!(back.as_parts(), idx.as_parts());
    }

    #[test]
    fn try_from_parts_rejects_corruption() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        let good = idx.as_parts();

        let mut p = good.clone();
        p.members[0] = p.members[1]; // non-ascending
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.members[5] = 0; // overlap with subgraph 0 (and unsorted)
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.offsets[1] = p.offsets[0]; // empty subgraph
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.density_num[1] = p.density_num[0] + 100; // density rises
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.density_num[0] = 4;
        p.density_den[0] = 2; // 4/2 not in lowest terms
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.density_den[0] = 0;
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.n = 6; // members out of the shrunken range
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.clique_counts.pop(); // parallel array mismatch
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good.clone();
        p.h = 1;
        assert!(DecompositionIndex::try_from_parts(p).is_err());

        let mut p = good;
        p.offsets.clear();
        assert!(DecompositionIndex::try_from_parts(p).is_err());
    }

    #[test]
    fn pattern_key_defaults_relabels_and_validates() {
        let g = k5_k4_graph();
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        assert_eq!(idx.pattern(), "clique.h3");

        let named = idx.clone().with_pattern("4-loop");
        assert_eq!(named.pattern(), "4-loop");
        let back = DecompositionIndex::try_from_parts(named.as_parts()).unwrap();
        assert_eq!(back, named);
        assert_ne!(back, idx, "the key is part of the index identity");

        let mut p = named.as_parts();
        p.pattern = "has space".into();
        assert!(DecompositionIndex::try_from_parts(p).is_err());
        let mut p = named.as_parts();
        p.pattern.clear();
        assert!(DecompositionIndex::try_from_parts(p).is_err());
    }

    #[test]
    fn empty_decomposition_is_servable() {
        // star: no triangle → empty index that still answers queries
        let g = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        assert!(idx.is_empty());
        assert!(idx.top_k(3).unwrap().is_empty());
        assert!(idx.density_of(0).is_none());
        let back = DecompositionIndex::try_from_parts(idx.as_parts()).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn h2_index_works() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3]);
        b.add_edge(4, 5).add_edge(5, 6).add_edge(6, 4);
        let g = b.build();
        let idx = DecompositionIndex::build(&g, 2, &IndexConfig::default());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.top_k(1).unwrap()[0].density, Ratio::new(6, 4));
        assert_eq!(idx.density_of(4), Some(Ratio::from_int(1)));
    }
}
