//! # lhcds-core
//!
//! Exact top-k **locally h-clique densest subgraph** (LhCDS) discovery —
//! the IPPV (“Iterative Propose–Prune-and-Verify”) algorithm of
//! *Xu et al., “An Efficient and Exact Algorithm for Locally h-Clique
//! Densest Subgraph Discovery”* (SIGMOD 2025).
//!
//! An LhCDS (Definition 2) is a connected subgraph `G[S]` that is
//! `ρ`-compact for `ρ = d_ψh(G[S])` (removing any `U ⊆ S` destroys at
//! least `ρ·|U|` h-cliques) and maximal with that property. LhCDSes are
//! pairwise disjoint, so the top-k of them describe the k strongest
//! non-overlapping near-clique regions of a graph.
//!
//! Pipeline stages, one module each:
//!
//! | Module | Paper element |
//! |---|---|
//! | [`bounds`] | Algorithm 1 — initial compact-number bounds from `(k, ψh)`-cores |
//! | [`cp`] | §4.2.2 — convex program `CP(G, h)` and the SEQ-kClist++ iterations |
//! | [`decompose`] | §4.2.3 — tentative graph decomposition (`TentativeGD`) |
//! | [`stable`] | §4.2.4 — stable h-clique groups (`DeriveSG`), bound tightening |
//! | [`prune`] | §4.3 — Algorithm 3, Proposition 5 pruning rules |
//! | [`compact`] | Figures 6/7 — `DeriveCompact` flow network, `IsDensest` |
//! | [`verify`] | §4.4 — basic (Alg. 4) and fast (Alg. 5) LhCDS verification |
//! | [`pipeline`] | §4.5 — Algorithm 6, the exact top-k driver |
//! | [`density`] | §5.1 — exact dense decomposition / compact numbers via marginal-density cuts |
//! | [`index`] | servable decomposition index — compute once, query many (flow-free reads) |
//! | [`bruteforce`] | Definition-level oracle for small graphs (test anchor) |
//!
//! ## Quick start
//!
//! ```
//! use lhcds_core::pipeline::{IppvConfig, top_k_lhcds};
//! use lhcds_graph::CsrGraph;
//!
//! // Two disjoint triangles joined by a path: each triangle is a
//! // locally 3-clique densest subgraph with density 1/3.
//! let g = CsrGraph::from_edges(
//!     8,
//!     [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 5)],
//! );
//! let result = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
//! assert_eq!(result.subgraphs.len(), 2);
//! assert_eq!(result.subgraphs[0].density.to_string(), "1/3");
//! ```
//!
//! In the workspace DAG this crate consumes `lhcds-graph`,
//! `lhcds-clique`, and `lhcds-flow`, and is consumed by
//! `lhcds-patterns` (which re-instantiates the pipeline over pattern
//! stores) and `lhcds-baselines` (which shares its verification
//! machinery).

#![warn(missing_docs)]

pub mod bounds;
pub mod bruteforce;
pub mod compact;
pub mod cp;
pub mod decompose;
pub mod density;
pub mod index;
pub mod pipeline;
pub mod prune;
pub mod stable;
pub mod verify;

pub use bounds::{initialize_bounds, Bounds};
pub use compact::InstanceSolver;
pub use index::{DecompositionIndex, IndexConfig, QueryError, SubgraphView};
pub use pipeline::{top_k_lhcds, IppvConfig, IppvResult, IppvStats, Lhcds};
// The exact-rational density currency of the whole pipeline, the
// flow-layer work counters (networks/arcs built, flow invocations,
// warm/retract/cold parametric solves, GGT recursion telemetry), and
// the flow-reuse tier selector. Re-exported so higher layers (patterns,
// baselines, service, the facade's consumers) never need a direct
// dependency on the flow substrate.
pub use lhcds_flow::{flow_stats, FlowReuse, FlowStats, Ratio};
