//! The IPPV top-k driver (Algorithm 6) — exact top-k LhCDS discovery.
//!
//! ## Structure
//!
//! **Propose** — enumerate h-cliques, initialize compact-number bounds
//! from `(k, ψh)`-cores (Alg. 1), run SEQ-kClist++ (Alg. 2), decompose
//! tentatively (`TentativeGD`), derive stable groups (`DeriveSG`) and
//! tighten bounds (Thm. 4). **Prune** — drop vertices provably in no
//! LhCDS (Prop. 5). **Verify** — process candidate regions from the
//! densest down; inside each region an exact local densest
//! decomposition (Goldberg-style, [`crate::compact`]) extracts the
//! maximal locally-dense components, which the fast verifier
//! ([`crate::verify`]) accepts or rejects against the *full* graph.
//!
//! ## Exactness invariants (Theorem 7 analog)
//!
//! * every emitted subgraph is verified `ρ`-compact, connected and
//!   maximal by exact integer min-cuts — no float ever decides an
//!   output;
//! * emission order is exact: a verified subgraph is emitted only once
//!   its density dominates the (valid) upper bound of every vertex
//!   still in play, or when no candidates remain (then the buffer is
//!   flushed in exact density order);
//! * no LhCDS is lost: non-pruned vertices always belong to some
//!   candidate; failed candidates are refined (split along the local
//!   decomposition), grown (replaced by the maximal `ρ`-compact
//!   superset the verifier returns), or — only with a proof — killed.
//!   The kill proof: when a candidate region covers a whole connected
//!   component of the remaining universe (the *escalated* state) and
//!   the verifier's superset adds only already-output vertices, any
//!   LhCDS through the candidate would need density above the
//!   component's maximum subgraph density — impossible.
//!
//! Zero-density regions (no h-clique) are never reported: a
//! "locally densest" subgraph without a single h-clique is the trivial
//! whole-component answer and carries no signal.
//!
//! ## Parallel verification
//!
//! The flow-heavy head of every candidate verification — the exact
//! local densest decomposition — is a *pure* function of the component
//! vertex list: it reads only the immutable clique store and builds a
//! private [`InstanceSolver`]. When [`IppvConfig::parallelism`] grants
//! more than one thread, the driver therefore runs these decompositions
//! speculatively on a work-stealing worker pool over the pending
//! candidate stream (each worker owns its flow scratch — one fresh
//! solver per component, never a shared network), caches the results
//! keyed by the exact component, and *commits* verdicts strictly in the
//! serial processing order on the driver thread. A cache hit is always
//! exact (purity), a changed candidate simply misses and recomputes, and
//! the mutable verification state — bounds, output mask, the shared
//! fast-verifier network — is only ever touched by the commit thread.
//! Outputs are byte-identical at every thread count; only wall time and
//! the speculative flow-work counters change.

use crate::bounds::{initialize_bounds, Bounds, DEFAULT_SLACK};
use crate::compact::{local_instance, InstanceSolver};
use crate::cp::seq_kclist_pp_threaded;
use crate::decompose::tentative_gd;
use crate::prune::prune;
use crate::stable::derive_stable_groups;
use crate::verify::{
    verify_fast_with, BasicVerifier, FastConfig, FastVerifier, SharedFastSlot, Verdict,
};
use lhcds_clique::{CliqueSet, Parallelism};
use lhcds_flow::{FlowReuse, Ratio};
use lhcds_graph::traversal::components_within;
use lhcds_graph::{CsrGraph, VertexId};

/// Tuning knobs of the IPPV pipeline. Defaults match the paper's
/// experimental configuration (`T = 20` CP iterations, fast
/// verification, no boundary cliques — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct IppvConfig {
    /// Number of SEQ-kClist++ rounds (`T`; Figure 16 sweeps this).
    pub cp_iterations: usize,
    /// Use the reduced-network fast verifier (Algorithm 5) instead of
    /// the full-graph basic verifier (Algorithm 4).
    pub fast_verify: bool,
    /// Add Figure 7 boundary cliques to the fast verifier's network.
    pub boundary_cliques: bool,
    /// Safety slack around float-derived bounds (see [`crate::bounds`]).
    pub bound_slack: f64,
    /// Run the convex-program proposal stage (SEQ-kClist++ +
    /// TentativeGD + DeriveSG). Disabling it starts from one whole-graph
    /// candidate with only core-based bounds — the configuration of the
    /// flow-only baselines (LDSflow / LTDS) in `lhcds-baselines`.
    pub use_cp: bool,
    /// Apply Proposition 5 pruning.
    pub use_prune: bool,
    /// Thread policy shared by the h-clique enumeration stage and the
    /// post-enumeration verification stream (speculative parallel local
    /// decompositions; see the module docs). Every stage is
    /// byte-identical for every policy, so this setting affects wall
    /// time only, never results.
    pub parallelism: Parallelism,
    /// Flow-network reuse tier. [`FlowReuse::Scratch`] rebuilds a
    /// network per ρ-probe (the historical cost model),
    /// [`FlowReuse::Warm`] retains one [`InstanceSolver`] network per
    /// candidate region / basic-verifier run and warm-starts monotone
    /// re-solves, and the default [`FlowReuse::Ggt`] never resets a
    /// flow: decomposition ladders run as one GGT principal-partition
    /// divide-and-conquer, and the fast verifier's flow-deciding calls
    /// share one whole-graph network re-tuned per candidate. Affects
    /// wall time and the flow work counters only — every output is
    /// bit-identical (pinned by the `flow_reuse` equivalence suites).
    pub flow_reuse: FlowReuse,
    /// Build the whole-graph verifier networks on the `(h−1)`-core
    /// instead of all of `G` (the Core-Exact trick: every h-clique
    /// lives inside the `(h−1)`-core, so no verdict changes — pinned by
    /// the `core_prune` equivalence suite). Off by default; vertices in
    /// no h-clique are already excluded from candidate regions
    /// regardless, so this flag only shrinks the shared networks.
    pub core_prune: bool,
}

impl Default for IppvConfig {
    fn default() -> Self {
        IppvConfig {
            cp_iterations: 20,
            fast_verify: true,
            boundary_cliques: false,
            bound_slack: DEFAULT_SLACK,
            use_cp: true,
            use_prune: true,
            parallelism: Parallelism::serial(),
            flow_reuse: FlowReuse::default(),
            core_prune: false,
        }
    }
}

/// One verified locally h-clique densest subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lhcds {
    /// Member vertices, ascending.
    pub vertices: Vec<VertexId>,
    /// Exact h-clique density `|Ψh(G[S])| / |S|`.
    pub density: Ratio,
    /// Number of h-cliques inside the subgraph.
    pub clique_count: u64,
}

/// Stage timings and work counters (Figure 10 / Figure 15 material).
#[derive(Debug, Clone, Default)]
pub struct IppvStats {
    /// Clique size h.
    pub h: usize,
    /// Number of h-cliques enumerated.
    pub clique_count: usize,
    /// Milliseconds enumerating cliques.
    pub clique_ms: f64,
    /// Milliseconds in SEQ-kClist++.
    pub cp_ms: f64,
    /// Milliseconds in TentativeGD + DeriveSG.
    pub decompose_ms: f64,
    /// Milliseconds in pruning.
    pub prune_ms: f64,
    /// Milliseconds in verification (local decompositions + verifier).
    pub verify_ms: f64,
    /// Vertices removed by pruning.
    pub pruned_vertices: usize,
    /// Stable groups proposed by the first decomposition.
    pub initial_candidates: usize,
    /// Local densest decompositions run.
    pub local_decompositions: usize,
    /// Local decompositions served from the speculative parallel wave
    /// cache instead of being computed inline (0 on serial runs).
    pub prefetched_decompositions: usize,
    /// Verification calls.
    pub verifications: usize,
    /// Verifications decided by the reduced/basic flow network.
    pub flow_verifications: usize,
    /// Fast-verifier shortcut accepts (no flow).
    pub shortcut_accepts: usize,
    /// Fast-verifier early rejects (no flow needed for the verdict).
    pub early_rejects: usize,
    /// Candidates replaced by a strictly larger compact superset.
    pub absorptions: usize,
    /// Escalations (global reprocessing rounds).
    pub escalations: usize,
    /// Vertices proven to belong to no LhCDS during verification.
    pub killed_vertices: usize,
}

/// Result of a top-k run.
#[derive(Debug, Clone)]
pub struct IppvResult {
    /// The top-k LhCDSes, ordered by density descending (ties broken by
    /// smallest member id for determinism).
    pub subgraphs: Vec<Lhcds>,
    /// Stage statistics.
    pub stats: IppvStats,
}

/// Discovers the top-k locally h-clique densest subgraphs of `g`.
///
/// `h ≥ 2` (h-cliques degenerate to vertices at `h = 1`). Use
/// `k = usize::MAX` to list every LhCDS.
pub fn top_k_lhcds(g: &CsrGraph, h: usize, k: usize, cfg: &IppvConfig) -> IppvResult {
    assert!(h >= 2, "LhCDS requires h >= 2 (h = 2 is the classic LDS)");
    let sp = lhcds_obs::span("enumerate");
    let cliques = CliqueSet::enumerate_with(g, h, &cfg.parallelism);
    let clique_ms = sp.elapsed_ms();
    sp.counter("cliques", cliques.len() as u64);
    drop(sp);
    let mut res = top_k_with_instances(g, &cliques, k, cfg);
    res.stats.clique_ms = clique_ms;
    res
}

/// Same as [`top_k_lhcds`] but with a pre-built instance store. This is
/// the entry point `lhcds-patterns` uses to run the pipeline on general
/// pattern instances (Algorithm 7): any [`CliqueSet`]-shaped store of
/// h-vertex instances works, because every stage only consumes
/// membership and incidence.
pub fn top_k_with_instances(
    g: &CsrGraph,
    cliques: &CliqueSet,
    k: usize,
    cfg: &IppvConfig,
) -> IppvResult {
    assert_eq!(cliques.n(), g.n(), "instance store does not match graph");
    let mut stats = IppvStats {
        h: cliques.h(),
        clique_count: cliques.len(),
        ..IppvStats::default()
    };
    if cliques.is_empty() || k == 0 {
        return IppvResult {
            subgraphs: Vec::new(),
            stats,
        };
    }

    // ---- Propose -------------------------------------------------
    let mut bounds = initialize_bounds(cliques, cfg.bound_slack);

    let groups: Vec<Vec<VertexId>> = if cfg.use_cp {
        let sp = lhcds_obs::span("cp");
        let mut state = seq_kclist_pp_threaded(
            cliques,
            cfg.cp_iterations,
            cfg.parallelism.effective_threads(g.n()),
        );
        stats.cp_ms = sp.elapsed_ms();
        sp.counter("iterations", cfg.cp_iterations as u64);
        drop(sp);

        let sp = lhcds_obs::span("decompose");
        let decomp = tentative_gd(cliques, &mut state);
        let stable = derive_stable_groups(cliques, &state, &decomp, &mut bounds);
        stats.decompose_ms = sp.elapsed_ms();
        sp.counter("groups", stable.groups.len() as u64);
        drop(sp);
        stable.groups
    } else {
        // flow-only baseline: one whole-graph candidate
        vec![g.vertices().collect()]
    };
    stats.initial_candidates = groups.len();

    // ---- Prune ---------------------------------------------------
    let sp = lhcds_obs::span("prune");
    let mut eligible = vec![true; g.n()];
    // Vertices in no h-clique at all can never join an LhCDS (every
    // member of a positive-density compact subgraph loses at least one
    // clique when removed, so it must be in one). This cheap exact rule
    // clears the sparse background regardless of `use_prune`.
    for (v, e) in eligible.iter_mut().enumerate() {
        if cliques.degree(v as VertexId) == 0 {
            *e = false;
            stats.pruned_vertices += 1;
        }
    }
    if cfg.use_prune {
        stats.pruned_vertices += prune(g, cliques, &bounds, &mut eligible);
    }
    let pruned: Vec<bool> = eligible.iter().map(|&e| !e).collect();
    stats.prune_ms = sp.elapsed_ms();
    sp.counter("pruned_vertices", stats.pruned_vertices as u64);
    drop(sp);

    // ---- Verify (candidate loop) ----------------------------------
    let sp = lhcds_obs::span("verify");
    // Core-Exact restriction for the whole-graph verifier networks:
    // the (h−1)-core hosts every h-clique.
    let core_universe: Option<Vec<VertexId>> = cfg.core_prune.then(|| {
        let deg = lhcds_graph::core_decomp::degeneracy_order(g);
        let k = (cliques.h() as u32).saturating_sub(1);
        (0..g.n() as VertexId)
            .filter(|&v| deg.core[v as usize] >= k)
            .collect()
    });
    let mut driver = Driver {
        g,
        cliques,
        cfg,
        bounds,
        pruned,
        output: vec![false; g.n()],
        killed: vec![false; g.n()],
        owner: vec![NO_OWNER; g.n()],
        next_id: 0,
        stack: Vec::new(),
        stuck: Vec::new(),
        failed_memo: std::collections::HashSet::new(),
        buffer: Vec::new(),
        results: Vec::new(),
        basic: None,
        fast_shared: None,
        core_universe,
        threads: cfg.parallelism.effective_threads(g.n()),
        decomp_cache: std::collections::HashMap::new(),
        stats: &mut stats,
    };
    // highest-r group on top of the stack
    for group in groups.iter().rev() {
        let verts: Vec<VertexId> = group
            .iter()
            .copied()
            .filter(|&v| !driver.pruned[v as usize])
            .collect();
        if !verts.is_empty() {
            driver.push_candidate(verts, false);
        }
    }
    driver.run(k);
    let results = std::mem::take(&mut driver.results);
    stats.verify_ms = sp.elapsed_ms();
    sp.counter("verifications", stats.verifications as u64);
    sp.counter("flow_verifications", stats.flow_verifications as u64);
    sp.counter("local_decompositions", stats.local_decompositions as u64);
    sp.counter("prefetched", stats.prefetched_decompositions as u64);
    drop(sp);

    IppvResult {
        subgraphs: results,
        stats,
    }
}

const NO_OWNER: u32 = u32::MAX;

struct Candidate {
    id: u32,
    verts: Vec<VertexId>,
    /// Whether this candidate covers entire connected components of the
    /// remaining universe — the state in which failed verifications may
    /// exactly *kill* vertices instead of deferring them.
    escalated: bool,
}

struct Driver<'a> {
    g: &'a CsrGraph,
    cliques: &'a CliqueSet,
    cfg: &'a IppvConfig,
    bounds: Bounds,
    pruned: Vec<bool>,
    output: Vec<bool>,
    killed: Vec<bool>,
    owner: Vec<u32>,
    next_id: u32,
    stack: Vec<Candidate>,
    stuck: Vec<Candidate>,
    buffer: Vec<Lhcds>,
    results: Vec<Lhcds>,
    /// Failed verifications seen so far. A candidate that fails twice
    /// with the same `(vertices, ρ)` is cycling through absorption (its
    /// blocking superset weaves through already-output regions); it is
    /// deferred and later resolved exactly in escalated mode.
    failed_memo: std::collections::HashSet<(Vec<VertexId>, Ratio)>,
    /// Whole-graph basic verifier, built lazily on first use so its
    /// Figure 6 network (the same arcs for every candidate — only ρ
    /// differs) is constructed once per run, not once per verification.
    basic: Option<BasicVerifier>,
    /// Shared whole-graph network for the fast verifier's flow-deciding
    /// calls, built lazily on first use. Engaged only at the
    /// [`FlowReuse::Ggt`] tier without boundary-clique inflation; other
    /// configurations keep the per-candidate reduced networks.
    fast_shared: Option<FastVerifier>,
    /// Verifier universe under `core_prune` (the `(h−1)`-core).
    core_universe: Option<Vec<VertexId>>,
    /// Worker threads for the verification stream (1 = serial driver).
    threads: usize,
    /// Pure local-decomposition results computed speculatively by the
    /// wave workers, keyed by the exact component vertex list. A hit is
    /// always exact; a component whose live set changed simply misses.
    decomp_cache: std::collections::HashMap<Vec<VertexId>, Option<(Ratio, Vec<bool>)>>,
    stats: &'a mut IppvStats,
}

impl<'a> Driver<'a> {
    fn push_candidate(&mut self, verts: Vec<VertexId>, escalated: bool) {
        debug_assert!(!verts.is_empty());
        let id = self.next_id;
        self.next_id += 1;
        for &v in &verts {
            self.owner[v as usize] = id;
        }
        self.stack.push(Candidate {
            id,
            verts,
            escalated,
        });
    }

    /// Vertices of `cand` still owned by it and not yet output.
    fn live_verts(&self, cand: &Candidate) -> Vec<VertexId> {
        cand.verts
            .iter()
            .copied()
            .filter(|&v| self.owner[v as usize] == cand.id && !self.output[v as usize])
            .collect()
    }

    /// Upper bound on the density of any *future* LhCDS: max valid
    /// upper bound over vertices that may still appear in one.
    fn remaining_upper_bound(&self) -> f64 {
        let mut ub = f64::NEG_INFINITY;
        for v in 0..self.g.n() {
            if !self.output[v] && !self.killed[v] && !self.pruned[v] {
                ub = ub.max(self.bounds.upper[v]);
            }
        }
        ub
    }

    fn flush_buffer(&mut self, k: usize, force: bool) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_by(|a, b| {
            b.density
                .cmp(&a.density)
                .then_with(|| a.vertices[0].cmp(&b.vertices[0]))
        });
        let ub = if force {
            f64::NEG_INFINITY
        } else {
            self.remaining_upper_bound()
        };
        while self.results.len() < k {
            match self.buffer.first() {
                Some(top) if force || top.density.to_f64() >= ub - 1e-12 => {
                    self.results.push(self.buffer.remove(0));
                }
                _ => break,
            }
        }
    }

    fn run(&mut self, k: usize) {
        // Safety valve: the refinement loop provably terminates, but a
        // generous cap turns a logic regression into a loud failure
        // instead of a hang.
        let mut fuel = 64 * self.g.n() + 4096;
        while self.results.len() < k {
            assert!(
                {
                    fuel -= 1;
                    fuel > 0
                },
                "IPPV refinement loop exceeded its fuel budget — this is a bug"
            );
            self.flush_buffer(k, false);
            if self.results.len() >= k {
                break;
            }
            let cand = match self.stack.pop() {
                Some(c) => c,
                None => {
                    if self.stuck.is_empty() {
                        self.flush_buffer(k, true);
                        break;
                    }
                    // Escalate: merge all deferred candidates; their
                    // union covers whole remaining components, enabling
                    // the exact kill rule.
                    self.stats.escalations += 1;
                    let stuck = std::mem::take(&mut self.stuck);
                    let mut verts: Vec<VertexId> = Vec::new();
                    for c in &stuck {
                        verts.extend(self.live_verts(c));
                    }
                    verts.sort_unstable();
                    verts.dedup();
                    if verts.is_empty() {
                        self.flush_buffer(k, true);
                        break;
                    }
                    self.push_candidate(verts, true);
                    continue;
                }
            };
            let verts = self.live_verts(&cand);
            if verts.is_empty() {
                continue;
            }
            let comps = components_within(self.g, &verts);
            if comps.len() > 1 {
                // split; each piece inherits the escalated flag (each is
                // a whole component of the remaining universe iff the
                // parent covered whole components)
                for comp in comps.into_iter().rev() {
                    self.push_candidate(comp, cand.escalated);
                }
                continue;
            }
            let comp = comps.into_iter().next().expect("nonempty candidate");
            self.process_component(comp, cand.escalated);
        }
        self.flush_buffer(k, self.stack.is_empty() && self.stuck.is_empty());
    }

    /// Pure flow-heavy head of a component's verification: builds a
    /// private solver over the component and runs its exact local
    /// densest decomposition. No driver state is read or written, which
    /// is what lets the wave workers run this concurrently.
    fn decompose_component(
        cliques: &CliqueSet,
        reuse: FlowReuse,
        comp: &[VertexId],
        parent: lhcds_obs::SpanId,
    ) -> Option<(Ratio, Vec<bool>)> {
        // Explicit parent id: wave workers run this on scoped threads,
        // where the tracer's thread-local nesting would otherwise lose
        // the verify-phase attribution.
        let sp = lhcds_obs::span_under(parent, "local-decompose");
        sp.counter("vertices", comp.len() as u64);
        // One reusable network serves the component's whole Goldberg
        // ladder (every ρ-probe of the local densest decomposition).
        let (inst, map) = local_instance(cliques, comp);
        debug_assert_eq!(map, comp, "components are sorted and unique");
        InstanceSolver::with_reuse(inst, reuse).densest_decomposition()
    }

    /// Speculative verification wave: the component about to be
    /// processed missed the cache, so its decomposition must run now —
    /// run it together with the pending stack candidates' components on
    /// a work-stealing pool (a shared claim counter over the target
    /// list; idle workers steal the next unclaimed component). Each
    /// worker builds its own [`InstanceSolver`] per component — the
    /// per-worker flow-scratch rule — and the driver thread commits the
    /// results in its unchanged serial order, so outputs stay
    /// byte-identical.
    fn prefetch_decompositions(&mut self, first: &[VertexId]) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut targets: Vec<Vec<VertexId>> = vec![first.to_vec()];
        let mut seen: std::collections::HashSet<Vec<VertexId>> = targets.iter().cloned().collect();
        for cand in self.stack.iter().rev() {
            let verts = self.live_verts(cand);
            if verts.is_empty() {
                continue;
            }
            for comp in components_within(self.g, &verts) {
                if !self.decomp_cache.contains_key(&comp) && seen.insert(comp.clone()) {
                    targets.push(comp);
                }
            }
        }
        let workers = self.threads.min(targets.len());
        let (cliques, reuse) = (self.cliques, self.cfg.flow_reuse);
        let next = AtomicUsize::new(0);
        let targets_ref = &targets;
        let wave_parent = lhcds_obs::current();
        type WaveBatch = Vec<(usize, Option<(Ratio, Vec<bool>)>)>;
        let collected: Vec<WaveBatch> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut acc = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= targets_ref.len() {
                                break;
                            }
                            acc.push((
                                i,
                                Self::decompose_component(
                                    cliques,
                                    reuse,
                                    &targets_ref[i],
                                    wave_parent,
                                ),
                            ));
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verification wave worker panicked"))
                .collect()
        });
        for (i, res) in collected.into_iter().flatten() {
            self.decomp_cache
                .insert(std::mem::take(&mut targets[i]), res);
        }
    }

    fn process_component(&mut self, comp: Vec<VertexId>, escalated: bool) {
        if std::env::var_os("LHCDS_TRACE").is_some() {
            eprintln!("process_component comp={comp:?} escalated={escalated}");
        }
        self.stats.local_decompositions += 1;
        if self.threads > 1 && !self.stack.is_empty() && !self.decomp_cache.contains_key(&comp) {
            self.prefetch_decompositions(&comp);
        }
        let decomp = match self.decomp_cache.remove(&comp) {
            Some(d) => {
                self.stats.prefetched_decompositions += 1;
                d
            }
            None => Self::decompose_component(
                self.cliques,
                self.cfg.flow_reuse,
                &comp,
                lhcds_obs::current(),
            ),
        };
        let Some((rho_star, members)) = decomp else {
            // No h-clique inside this component.
            if escalated {
                self.kill(&comp);
            } else {
                self.defer(comp);
            }
            return;
        };
        let u: Vec<VertexId> = comp
            .iter()
            .zip(&members)
            .filter(|&(_, &m)| m)
            .map(|(&v, _)| v)
            .collect();
        let rest: Vec<VertexId> = {
            let mut in_u = vec![false; self.g.n()];
            for &v in &u {
                in_u[v as usize] = true;
            }
            comp.iter()
                .copied()
                .filter(|&v| !in_u[v as usize])
                .collect()
        };
        if !rest.is_empty() {
            // Extracting U breaks the whole-component property of rest.
            self.push_candidate(rest, false);
        }
        let mut in_comp = vec![false; self.g.n()];
        for &v in &comp {
            in_comp[v as usize] = true;
        }
        for m in components_within(self.g, &u) {
            self.verify_candidate(m, rho_star, &in_comp, escalated);
        }
    }

    /// Verifies one maximal locally-dense component `m` (density exactly
    /// `rho`, `ρ`-compact, connected — guaranteed by the local densest
    /// decomposition over the component marked in `in_comp`).
    ///
    /// On rejection the verifier hands back `X`, the maximal `ρ`-compact
    /// subgraph of `G` containing `m`. Every not-yet-found LhCDS `L`
    /// touching `m` satisfies `L ⊆ X` (its density is `≥ ρ`, so it is
    /// `ρ`-compact and merges with `X` unless contained), avoids output
    /// and killed vertices, and is connected — so `L` lives inside the
    /// connected component `C` of `X ∖ outputs` that contains `m`.
    /// Therefore:
    ///
    /// * if `C` offers no *eligible* vertex outside the decomposed
    ///   component, then `L ⊆ comp`, hence `d(L) ≤ ρ`; combined with
    ///   `m` being the maximal `ρ`-compact component of `comp` this
    ///   forces `L ⊆ m`, and `m` itself is not maximal — no such `L`
    ///   exists and `m`'s vertices are killed (exact);
    /// * otherwise `C` is pushed as a replacement candidate — strict
    ///   progress, since it co-locates `m` with new territory.
    fn verify_candidate(
        &mut self,
        m: Vec<VertexId>,
        rho: Ratio,
        in_comp: &[bool],
        escalated: bool,
    ) {
        self.stats.verifications += 1;
        let verdict = if self.cfg.fast_verify {
            // At the GGT tier all flow-deciding fast verifications share
            // one whole-graph network — built lazily inside the flow
            // tail, so shortcut-resolved candidates never build it;
            // boundary-clique inflation keeps per-candidate networks.
            let shared = if self.cfg.flow_reuse == FlowReuse::Ggt && !self.cfg.boundary_cliques {
                Some(SharedFastSlot {
                    slot: &mut self.fast_shared,
                    universe: self.core_universe.as_deref(),
                })
            } else {
                None
            };
            let (verdict, info) = verify_fast_with(
                self.g,
                self.cliques,
                &m,
                rho,
                &self.bounds,
                &self.output,
                &FastConfig {
                    boundary_cliques: self.cfg.boundary_cliques,
                    need_superset: true,
                },
                shared,
            );
            if info.shortcut_accept {
                self.stats.shortcut_accepts += 1;
            }
            if info.early_reject {
                self.stats.early_rejects += 1;
            }
            if info.used_flow {
                self.stats.flow_verifications += 1;
            }
            verdict
        } else {
            self.stats.flow_verifications += 1;
            let (g, cliques, reuse) = (self.g, self.cliques, self.cfg.flow_reuse);
            let core = &self.core_universe;
            self.basic
                .get_or_insert_with(|| match core {
                    Some(u) => BasicVerifier::on_universe(cliques, u, reuse),
                    None => BasicVerifier::new(g, cliques, reuse),
                })
                .verify(g, &m, rho)
        };
        if std::env::var_os("LHCDS_TRACE").is_some() {
            eprintln!("verify m={m:?} rho={rho} -> {verdict:?}");
        }
        match verdict {
            Verdict::Lhcds => {
                let count = (rho * Ratio::from_int(m.len() as i128)).num();
                debug_assert!(rho.den() == 1 || (m.len() as i128) % rho.den() == 0);
                for &v in &m {
                    self.output[v as usize] = true;
                    self.bounds.pin_exact(v as usize, rho);
                }
                self.buffer.push(Lhcds {
                    vertices: m,
                    density: rho,
                    clique_count: count as u64,
                });
            }
            Verdict::Superset(x) => {
                let x_live: Vec<VertexId> = x
                    .iter()
                    .copied()
                    .filter(|&v| !self.output[v as usize])
                    .collect();
                // connected component of X ∖ outputs containing m
                let c = components_within(self.g, &x_live)
                    .into_iter()
                    .find(|c| c.binary_search(&m[0]).is_ok())
                    .expect("m survives output removal");
                let grows = c.iter().any(|&v| {
                    let vi = v as usize;
                    !in_comp[vi] && !self.pruned[vi] && !self.killed[vi]
                });
                if !grows || escalated {
                    // No eligible growth beyond the decomposed component
                    // (or the component already covered everything the
                    // remaining universe connects to m): any LhCDS
                    // through m would be confined to the component and
                    // capped at its maximum density, forcing it to be m
                    // itself — which just failed. Exact kill.
                    self.kill(&m);
                } else if !self.failed_memo.insert((m.clone(), rho)) {
                    // Second failure with the same (m, ρ): absorption is
                    // cycling through output-adjacent territory. Defer m
                    // for exact whole-component (escalated) treatment.
                    self.defer(m);
                } else {
                    self.stats.absorptions += 1;
                    self.push_candidate(c, false);
                }
            }
            Verdict::NotMaximal => unreachable!("driver always requests the superset"),
        }
    }

    fn defer(&mut self, verts: Vec<VertexId>) {
        let id = self.next_id;
        self.next_id += 1;
        for &v in &verts {
            self.owner[v as usize] = id;
        }
        self.stuck.push(Candidate {
            id,
            verts,
            escalated: false,
        });
    }

    fn kill(&mut self, verts: &[VertexId]) {
        for &v in verts {
            self.killed[v as usize] = true;
            self.owner[v as usize] = NO_OWNER;
        }
        self.stats.killed_vertices += verts.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = CsrGraph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        );
        let res = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 2);
        for s in &res.subgraphs {
            assert_eq!(s.density, Ratio::new(1, 3));
            assert_eq!(s.clique_count, 1);
            assert_eq!(s.vertices.len(), 3);
        }
        let mut all: Vec<u32> = res
            .subgraphs
            .iter()
            .flat_map(|s| s.vertices.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 5, 6, 7]);
    }

    #[test]
    fn k5_beats_k4_disjoint() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        let g = b.build();
        let res = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 2);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(res.subgraphs[0].density, Ratio::from_int(2));
        assert_eq!(res.subgraphs[1].vertices, vec![5, 6, 7, 8]);
        assert_eq!(res.subgraphs[1].density, Ratio::from_int(1));
    }

    #[test]
    fn bridged_k4_is_absorbed_not_reported() {
        // A K4 bridged to a K5 is not maximal at its own density (the
        // union is 1-compact), so only the K5 is an LhCDS. This
        // exercises the stuck→escalate→kill path of the driver.
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(4, 5); // bridge, no new triangles
        let g = b.build();
        let res = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 1);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(res.subgraphs[0].density, Ratio::from_int(2));
    }

    #[test]
    fn top_1_only() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        let g = b.build();
        let res = top_k_lhcds(&g, 3, 1, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 1);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k6_is_single_lhcds_not_fragments() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4, 5]);
        let g = b.build();
        let res = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 1);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(res.subgraphs[0].density, Ratio::new(20, 6));
    }

    #[test]
    fn no_cliques_no_output() {
        // star graph: no triangle
        let g = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let res = top_k_lhcds(&g, 3, 3, &IppvConfig::default());
        assert!(res.subgraphs.is_empty());
    }

    #[test]
    fn h2_degenerates_to_lds() {
        // For h = 2 the density is m/n: K4 (6/4) vs triangle (3/3 = 1).
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3]);
        b.add_edge(4, 5).add_edge(5, 6).add_edge(6, 4);
        let g = b.build();
        let res = top_k_lhcds(&g, 2, 2, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 2);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(res.subgraphs[0].density, Ratio::new(6, 4));
        assert_eq!(res.subgraphs[1].vertices, vec![4, 5, 6]);
        assert_eq!(res.subgraphs[1].density, Ratio::from_int(1));
    }

    #[test]
    fn basic_and_fast_configs_agree() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[4, 5, 6, 7]);
        complete_on(&mut b, &[8, 9, 10]);
        b.add_edge(7, 8);
        let g = b.build();
        let fast = top_k_lhcds(&g, 3, 10, &IppvConfig::default());
        let basic = top_k_lhcds(
            &g,
            3,
            10,
            &IppvConfig {
                fast_verify: false,
                ..IppvConfig::default()
            },
        );
        assert_eq!(fast.subgraphs, basic.subgraphs);
    }

    #[test]
    fn overlapping_k5s_merge_into_one_region() {
        // Two K5s sharing vertex 4: the union is one connected dense
        // region; LhCDSes must be disjoint, so at most one of them can
        // survive as a fragment — the true answer is the maximal
        // 2-compact subgraph containing both (density = 20/9 < 2… check
        // against brute force in integration tests; here: disjointness
        // and verification sanity only).
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[4, 5, 6, 7, 8]);
        let g = b.build();
        let res = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
        // outputs are pairwise disjoint
        let mut seen = vec![false; g.n()];
        for s in &res.subgraphs {
            for &v in &s.vertices {
                assert!(!seen[v as usize], "overlap at {v}");
                seen[v as usize] = true;
            }
        }
        // densities are non-increasing
        for w in res.subgraphs.windows(2) {
            assert!(w[0].density >= w[1].density);
        }
    }

    #[test]
    fn parallel_enumeration_matches_serial_pipeline() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[4, 5, 6, 7]);
        complete_on(&mut b, &[8, 9, 10]);
        b.add_edge(7, 8);
        let g = b.build();
        let serial = top_k_lhcds(&g, 3, 10, &IppvConfig::default());
        for t in [2usize, 4, 8] {
            let cfg = IppvConfig {
                parallelism: Parallelism::threads(t),
                ..IppvConfig::default()
            };
            let par = top_k_lhcds(&g, 3, 10, &cfg);
            assert_eq!(par.subgraphs, serial.subgraphs, "threads={t}");
            assert_eq!(par.stats.clique_count, serial.stats.clique_count);
        }
    }

    /// The reuse tier is invisible in the outputs, for both verifier
    /// families. (The work-counter side of the contract — fewer
    /// networks than ρ-probes — lives in tests/flow_reuse.rs, whose
    /// process owns the global flow counters.)
    #[test]
    fn flow_reuse_is_invisible_in_outputs() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[4, 5, 6, 7]);
        complete_on(&mut b, &[8, 9, 10]);
        b.add_edge(7, 8).add_edge(10, 11);
        let g = b.build();
        for fast in [true, false] {
            let mk = |flow_reuse: FlowReuse| IppvConfig {
                fast_verify: fast,
                flow_reuse,
                ..IppvConfig::default()
            };
            let scratch = top_k_lhcds(&g, 3, 10, &mk(FlowReuse::Scratch));
            for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
                let res = top_k_lhcds(&g, 3, 10, &mk(tier));
                assert_eq!(res.subgraphs, scratch.subgraphs, "fast={fast} {tier}");
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        b.add_edge(4, 5).add_edge(5, 6);
        let g = b.build();
        let res = top_k_lhcds(&g, 3, 1, &IppvConfig::default());
        let st = &res.stats;
        assert_eq!(st.h, 3);
        assert_eq!(st.clique_count, 10);
        assert!(st.verifications >= 1);
        assert!(st.initial_candidates >= 1);
    }

    #[test]
    #[should_panic(expected = "h >= 2")]
    fn h1_rejected() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        top_k_lhcds(&g, 1, 1, &IppvConfig::default());
    }

    #[test]
    fn k_zero_returns_empty() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let res = top_k_lhcds(&g, 3, 0, &IppvConfig::default());
        assert!(res.subgraphs.is_empty());
    }
}
