//! Invalid-vertex pruning (Proposition 5, Algorithm 3).
//!
//! Two sound rules remove vertices that provably belong to no LhCDS:
//!
//! 1. **Edge rule** — an edge `(u, v)` with `φ̲(u) > φ̄(v)` proves
//!    `φ(u) > φ(v)`, and by Proposition 4 a vertex adjacent to a
//!    strictly-more-compact vertex cannot itself sit in an LhCDS: `v` is
//!    invalid.
//! 2. **Core rule** — in the graph `G'` left after removals, the
//!    h-clique core number upper-bounds the compact number *within G'*;
//!    since any LhCDS avoids invalid vertices entirely, a member `u`
//!    must satisfy `φ^{G'}(u) ≥ φ^G(u) ≥ φ̲(u)`. If
//!    `core^{G'}(u) < φ̲(u)`, `u` is invalid. Removals can lower other
//!    vertices' cores, so the rule iterates to a fixpoint.
//!
//! Pruned vertices never re-enter candidate groups, but they *do* remain
//! visible to the verification algorithms (maximality is a property of
//! the full graph).

use crate::bounds::Bounds;
use lhcds_clique::CliqueSet;
use lhcds_graph::{CsrGraph, VertexId};

/// Applies both pruning rules to the `alive` mask in place. Returns the
/// number of vertices removed.
pub fn prune(g: &CsrGraph, cliques: &CliqueSet, bounds: &Bounds, alive: &mut [bool]) -> usize {
    let mut removed = 0usize;

    // Rule 1: one pass over edges (bounds are global and unaffected by
    // removals, so one pass reaches the rule's fixpoint).
    for u in g.vertices() {
        if !alive[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            if alive[v as usize] && bounds.lower[u as usize] > bounds.upper[v as usize] {
                alive[v as usize] = false;
                removed += 1;
            }
        }
    }

    // Rule 2: peel by restricted clique-core until the fixpoint.
    loop {
        let core = clique_core_restricted(cliques, alive);
        let mut killed = 0usize;
        for (v, &c) in core.iter().enumerate() {
            if alive[v] && (c as f64) < bounds.lower[v] {
                alive[v] = false;
                killed += 1;
            }
        }
        if killed == 0 {
            break;
        }
        removed += killed;
    }
    removed
}

/// `(k, ψh)`-core numbers of the subgraph induced by `alive`, counting
/// only cliques whose members are all alive. Dead vertices get core 0.
pub fn clique_core_restricted(cliques: &CliqueSet, alive: &[bool]) -> Vec<u64> {
    let n = cliques.n();
    let mut clique_dead = vec![false; cliques.len()];
    let mut degree = vec![0usize; n];
    for (i, dead) in clique_dead.iter_mut().enumerate() {
        let ok = cliques.members(i).iter().all(|&v| alive[v as usize]);
        if ok {
            for &v in cliques.members(i) {
                degree[v as usize] += 1;
            }
        } else {
            *dead = true;
        }
    }
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut bucket: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    let mut live_count = 0usize;
    for v in 0..n {
        if alive[v] {
            bucket[degree[v]].push(v as VertexId);
            live_count += 1;
        }
    }

    let mut removed = vec![false; n];
    let mut core = vec![0u64; n];
    let mut cur = 0usize;
    let mut level = 0u64;
    for _ in 0..live_count {
        let v = loop {
            while cur <= max_deg && bucket[cur].is_empty() {
                cur += 1;
            }
            debug_assert!(cur <= max_deg);
            let v = bucket[cur].pop().expect("non-empty bucket");
            if !removed[v as usize] && degree[v as usize] == cur {
                break v;
            }
        };
        removed[v as usize] = true;
        level = level.max(cur as u64);
        core[v as usize] = level;
        for &ci in cliques.cliques_of(v) {
            let ci = ci as usize;
            if clique_dead[ci] {
                continue;
            }
            clique_dead[ci] = true;
            for &w in cliques.members(ci) {
                let wi = w as usize;
                if alive[wi] && !removed[wi] {
                    degree[wi] -= 1;
                    bucket[degree[wi]].push(w);
                    if degree[wi] < cur {
                        cur = degree[wi];
                    }
                }
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::initialize_bounds;
    use lhcds_graph::GraphBuilder;

    /// K5 (vertices 0..5) with a pendant path 4-5-6. The path vertices
    /// have tiny compact numbers and prune away once bounds separate.
    fn k5_with_path() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5).add_edge(5, 6);
        b.build()
    }

    #[test]
    fn edge_rule_prunes_low_upper_neighbors() {
        let g = k5_with_path();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut bounds = initialize_bounds(&cs, 1e-6);
        // Simulate tight CP bounds: K5 members pinned at 2.
        for v in 0..5 {
            bounds.lower[v] = 2.0;
            bounds.upper[v] = 2.0;
        }
        // path vertices have core 0 → upper 0 → rule 1 kills 5 via edge
        // (4, 5); then 6 has no clique anyway.
        let mut alive = vec![true; g.n()];
        let removed = prune(&g, &cs, &bounds, &mut alive);
        assert!(removed >= 1);
        assert!(!alive[5]);
        assert!((0..5).all(|v| alive[v]));
    }

    #[test]
    fn core_rule_cascades() {
        // Diamond (two triangles sharing edge 1-2) + a triangle 3-4-5
        // sharing vertex 3. If vertex 4 is forced out by an artificially
        // high lower bound on its neighbor's side, the remaining
        // triangle loses its clique and 5's restricted core drops to 0.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 2)
            .add_edge(1, 3);
        b.add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 3);
        let g = b.build();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut bounds = initialize_bounds(&cs, 1e-6);
        let mut alive = vec![true; g.n()];
        alive[4] = false; // pretend 4 was already pruned
                          // demand that 5 keeps a compact number of at least 1/2
        bounds.lower[5] = 0.5;
        let removed = prune(&g, &cs, &bounds, &mut alive);
        assert!(!alive[5], "5 must fall: its only triangle used 4");
        assert!(removed >= 1);
    }

    #[test]
    fn nothing_pruned_with_loose_bounds() {
        let g = k5_with_path();
        let cs = CliqueSet::enumerate(&g, 3);
        let bounds = initialize_bounds(&cs, 1e-6);
        let mut alive = vec![true; g.n()];
        // initial core bounds alone cannot separate K5 from its pendant
        // path: lower(u) = core/3 = 2 for K5, upper(5) = 0 → rule 1 fires!
        let removed = prune(&g, &cs, &bounds, &mut alive);
        // 5 has upper 0 < lower(4) = 2 → pruned; 6 likewise isolated.
        assert!(!alive[5]);
        assert!(removed >= 1);
        assert!((0..5).all(|v| alive[v]));
    }

    #[test]
    fn restricted_core_matches_full_core_when_all_alive() {
        let g = k5_with_path();
        let cs = CliqueSet::enumerate(&g, 3);
        let alive = vec![true; g.n()];
        let restricted = clique_core_restricted(&cs, &alive);
        let full = lhcds_clique::clique_core(&cs);
        assert_eq!(restricted, full.core);
    }

    /// Pruning decisions depend on the incidence index; a
    /// parallel-enumerated store must reproduce them exactly.
    #[test]
    fn parallel_store_reproduces_pruning_exactly() {
        let g = k5_with_path();
        let serial_cs = CliqueSet::enumerate(&g, 3);
        let bounds = initialize_bounds(&serial_cs, 1e-6);
        let mut serial_alive = vec![true; g.n()];
        let serial_removed = prune(&g, &serial_cs, &bounds, &mut serial_alive);
        for t in [2usize, 4] {
            let cs = CliqueSet::enumerate_with(&g, 3, &lhcds_clique::Parallelism::threads(t));
            let mut alive = vec![true; g.n()];
            let removed = prune(&g, &cs, &initialize_bounds(&cs, 1e-6), &mut alive);
            assert_eq!(removed, serial_removed, "threads={t}");
            assert_eq!(alive, serial_alive, "threads={t}");
            assert_eq!(
                clique_core_restricted(&cs, &alive),
                clique_core_restricted(&serial_cs, &serial_alive)
            );
        }
    }

    #[test]
    fn dead_vertices_have_zero_restricted_core() {
        let g = k5_with_path();
        let cs = CliqueSet::enumerate(&g, 3);
        let mut alive = vec![true; g.n()];
        alive[0] = false;
        let core = clique_core_restricted(&cs, &alive);
        assert_eq!(core[0], 0);
        // K5 minus a vertex = K4: triangle degree 3 per member.
        for (v, &c) in core.iter().enumerate().take(5).skip(1) {
            assert_eq!(c, 3, "v={v}");
        }
    }
}
