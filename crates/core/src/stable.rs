//! Stable h-clique groups (`DeriveSG`, Definition 6, Theorem 4).
//!
//! A vertex group `S` is *stable* w.r.t. a feasible CP solution `(α, r)`
//! when (1) every outside vertex's `r` lies strictly outside
//! `[min_S r, max_S r]`, (2) cliques shared with higher-`r` outsiders
//! give those outsiders zero weight, and (3) cliques shared with
//! lower-`r` outsiders give the `S` members zero weight. Theorem 4 then
//! bounds every member's true compact number by the group's `r`-range —
//! the bound-tightening engine of the pipeline.
//!
//! `derive_stable_groups` greedily merges consecutive parts of the
//! tentative decomposition until each merged run is stable, emitting the
//! stable runs as LhCDS candidate groups and tightening the global
//! bounds from them. The check is *conservative*: float ties within the
//! tolerance count as violations, which can only cause extra merging
//! (coarser candidates), never an invalid bound.
//!
//! ## Complexity
//!
//! After `TentativeGD`, each clique's weight lives entirely in its
//! *last* part (the lowest-`r` part it touches), which reduces the
//! Definition 6 conditions on a run of parts `[a..=b]` to two
//! aggregates:
//!
//! * **condition 3** — a clique whose last part lies in `[a, b]` must
//!   not reach below the run's minimum `r`: per-part minima of member
//!   `r` are folded into a running minimum;
//! * **condition 2** — a clique straddling the `b` boundary must not
//!   hold weight on a member above the run's maximum `r`: straddling
//!   cliques are kept in a lazy max-heap keyed by their weighted-member
//!   `r`, entries expiring once the boundary passes their last part.
//!
//! Condition 1 (interval separation) is a binary-search count over the
//! sorted `r` values. The whole derivation is
//! `O((n + h·|Ψh|) log n)` — one pass, no per-check rescans.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bounds::Bounds;
use crate::cp::CpState;
use crate::decompose::Decomposition;
use lhcds_clique::CliqueSet;
use lhcds_graph::VertexId;

/// Result of `DeriveSG`.
#[derive(Debug, Clone)]
pub struct StableGroups {
    /// Stable groups in descending-r order; they partition the vertex
    /// set (concatenation = the tentative order).
    pub groups: Vec<Vec<VertexId>>,
    /// For each group, whether the stability conditions were verified.
    /// A trailing remainder that could not be stabilized is emitted with
    /// `false` and receives no bound updates.
    pub verified: Vec<bool>,
}

/// Weight below which an `α` entry counts as zero (redistribution
/// writes exact zeros; this guards accumulated dust).
const ALPHA_ZERO: f64 = 1e-12;

/// A straddling-clique entry in the condition-2 heap: the maximum `r`
/// among its weighted members, expiring after its last part.
struct OpenClique {
    weighted_max_r: f64,
    last_part: u32,
}

impl PartialEq for OpenClique {
    fn eq(&self, other: &Self) -> bool {
        self.weighted_max_r == other.weighted_max_r
    }
}
impl Eq for OpenClique {}
impl PartialOrd for OpenClique {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenClique {
    fn cmp(&self, other: &Self) -> Ordering {
        self.weighted_max_r
            .partial_cmp(&other.weighted_max_r)
            .expect("finite r")
    }
}

/// Greedy stabilization of the tentative parts + Theorem 4 bound
/// tightening (only from groups whose stability was verified).
pub fn derive_stable_groups(
    cliques: &CliqueSet,
    state: &CpState,
    decomp: &Decomposition,
    bounds: &mut Bounds,
) -> StableGroups {
    let tol = bounds.slack;
    let h = cliques.h();
    let parts = &decomp.parts;
    if parts.is_empty() {
        return StableGroups {
            groups: Vec::new(),
            verified: Vec::new(),
        };
    }

    // Sorted r values for the interval-separation check (condition 1).
    let mut sorted_r: Vec<f64> = state.r.clone();
    sorted_r.sort_by(|a, b| a.partial_cmp(b).expect("finite r"));

    // Per-clique aggregates: first part touched, last part touched
    // (where all its weight lives), min member r (condition 3), and the
    // max r among weighted members (condition 2; relevant only to
    // straddling cliques).
    let mut open_at: Vec<Vec<OpenClique>> = (0..parts.len()).map(|_| Vec::new()).collect();
    let mut part_cond3_min: Vec<f64> = vec![f64::INFINITY; parts.len()];
    for ci in 0..cliques.len() {
        let members = cliques.members(ci);
        let mut first_part = u32::MAX;
        let mut last_part = 0u32;
        let mut min_r = f64::INFINITY;
        let mut weighted_max_r = f64::NEG_INFINITY;
        for (j, &v) in members.iter().enumerate() {
            let p = decomp.part_of[v as usize];
            first_part = first_part.min(p);
            last_part = last_part.max(p);
            min_r = min_r.min(state.r[v as usize]);
            if state.alpha[ci * h + j] > ALPHA_ZERO {
                weighted_max_r = weighted_max_r.max(state.r[v as usize]);
            }
        }
        // condition 3 material: the clique "belongs" to its last part
        let c3 = &mut part_cond3_min[last_part as usize];
        *c3 = c3.min(min_r);
        // condition 2 material: straddling cliques with any weight
        if first_part != last_part && weighted_max_r > f64::NEG_INFINITY {
            open_at[first_part as usize].push(OpenClique {
                weighted_max_r,
                last_part,
            });
        }
    }

    let mut heap: BinaryHeap<OpenClique> = BinaryHeap::new();
    let mut groups: Vec<Vec<VertexId>> = Vec::new();
    let mut verified: Vec<bool> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut cond3_min = f64::INFINITY;

    for (b, part) in parts.iter().enumerate() {
        for oc in std::mem::take(&mut open_at[b]) {
            heap.push(oc);
        }
        for &v in part {
            let rv = state.r[v as usize];
            lo = lo.min(rv);
            hi = hi.max(rv);
        }
        cond3_min = cond3_min.min(part_cond3_min[b]);
        current.extend_from_slice(part);

        // expire straddling cliques fully absorbed by the run
        while let Some(top) = heap.peek() {
            if top.last_part as usize <= b {
                heap.pop();
            } else {
                break;
            }
        }

        // condition 1: exactly |current| vertices inside the widened
        // interval
        let from = sorted_r.partition_point(|&x| x < lo - tol);
        let to = sorted_r.partition_point(|&x| x <= hi + tol);
        let cond1 = to - from == current.len();
        // condition 2: no live straddling clique reaches above hi
        let cond2 = heap.peek().is_none_or(|top| top.weighted_max_r <= hi + tol);
        // condition 3: no clique owned by the run reaches below lo
        let cond3 = cond3_min >= lo - tol;

        if cond1 && cond2 && cond3 {
            groups.push(std::mem::take(&mut current));
            verified.push(true);
            lo = f64::INFINITY;
            hi = f64::NEG_INFINITY;
            cond3_min = f64::INFINITY;
        }
    }
    if !current.is_empty() {
        // Trailing run never stabilized (float ties at the bottom of the
        // order). Emit it unverified; it still participates as a
        // candidate but contributes no Theorem-4 bounds.
        groups.push(current);
        verified.push(false);
    }

    // Theorem 4: tighten bounds from verified groups.
    for (gi, group) in groups.iter().enumerate() {
        if !verified[gi] || group.is_empty() {
            continue;
        }
        let mut glo = f64::MAX;
        let mut ghi = f64::MIN;
        for &v in group {
            glo = glo.min(state.r[v as usize]);
            ghi = ghi.max(state.r[v as usize]);
        }
        for &v in group {
            bounds.tighten_upper_approx(v as usize, ghi);
            bounds.tighten_lower_approx(v as usize, glo);
        }
    }

    StableGroups { groups, verified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{initialize_bounds, DEFAULT_SLACK};
    use crate::cp::seq_kclist_pp;
    use crate::decompose::tentative_gd;
    use lhcds_graph::{CsrGraph, GraphBuilder};

    fn k5_far_triangle() -> CsrGraph {
        // K5 on 0..5, disjoint triangle 5-6-7 (no bridge).
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(5, 6).add_edge(6, 7).add_edge(7, 5);
        b.build()
    }

    fn run_pipeline_upto_stable(
        g: &CsrGraph,
        h: usize,
        iters: usize,
    ) -> (CliqueSet, CpState, StableGroups, Bounds) {
        let cs = CliqueSet::enumerate(g, h);
        let mut st = seq_kclist_pp(&cs, iters);
        let d = tentative_gd(&cs, &mut st);
        let mut bounds = initialize_bounds(&cs, DEFAULT_SLACK);
        let sg = derive_stable_groups(&cs, &st, &d, &mut bounds);
        (cs, st, sg, bounds)
    }

    /// Reference implementation of Definition 6 used to validate the
    /// aggregate-based checker on small inputs.
    fn is_stable_reference(
        cliques: &CliqueSet,
        state: &CpState,
        group: &[VertexId],
        tol: f64,
    ) -> bool {
        let n = cliques.n();
        let mut inside = vec![false; n];
        for &v in group {
            inside[v as usize] = true;
        }
        let lo = group
            .iter()
            .map(|&v| state.r[v as usize])
            .fold(f64::INFINITY, f64::min);
        let hi = group
            .iter()
            .map(|&v| state.r[v as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        for (v, &is_in) in inside.iter().enumerate() {
            if !is_in && state.r[v] >= lo - tol && state.r[v] <= hi + tol {
                return false;
            }
        }
        let h = cliques.h();
        for ci in 0..cliques.len() {
            let members = cliques.members(ci);
            if !members.iter().any(|&v| inside[v as usize]) {
                continue;
            }
            let has_lower = members
                .iter()
                .any(|&v| !inside[v as usize] && state.r[v as usize] < lo);
            for (j, &v) in members.iter().enumerate() {
                let a = state.alpha[ci * h + j];
                if !inside[v as usize] && state.r[v as usize] > hi && a > ALPHA_ZERO {
                    return false;
                }
                if has_lower && inside[v as usize] && a > ALPHA_ZERO {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn groups_partition_vertices() {
        let g = k5_far_triangle();
        let (_, _, sg, _) = run_pipeline_upto_stable(&g, 3, 40);
        let mut seen = vec![false; g.n()];
        for group in &sg.groups {
            for &v in group {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn separates_k5_from_triangle() {
        let g = k5_far_triangle();
        let (_, _, sg, _) = run_pipeline_upto_stable(&g, 3, 60);
        // first stable group must be exactly the K5
        let mut first = sg.groups[0].clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
        assert!(sg.verified[0]);
    }

    #[test]
    fn verified_groups_pass_reference_check() {
        // randomized structures: every group the fast checker verifies
        // must satisfy the literal Definition 6
        let mut state = 0xABCDEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..25 {
            let n = 12;
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for u in 0..n {
                for v in u + 1..n {
                    if rng() % 100 < 40 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            let cs = CliqueSet::enumerate(&g, 3);
            if cs.is_empty() {
                continue;
            }
            let mut st = seq_kclist_pp(&cs, 15);
            let d = tentative_gd(&cs, &mut st);
            let mut bounds = initialize_bounds(&cs, DEFAULT_SLACK);
            let sg = derive_stable_groups(&cs, &st, &d, &mut bounds);
            for (gi, group) in sg.groups.iter().enumerate() {
                if sg.verified[gi] {
                    assert!(
                        is_stable_reference(&cs, &st, group, 0.0),
                        "fast checker verified an unstable group {group:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_bracket_true_compact_numbers() {
        let g = k5_far_triangle();
        let (_, _, _, bounds) = run_pipeline_upto_stable(&g, 3, 60);
        // true φ3: K5 members = 2, triangle members = 1/3.
        for v in 0..5 {
            assert!(
                bounds.lower[v] <= 2.0 + 1e-9,
                "lower[{v}]={}",
                bounds.lower[v]
            );
            assert!(
                bounds.upper[v] >= 2.0 - 1e-9,
                "upper[{v}]={}",
                bounds.upper[v]
            );
        }
        for v in 5..8 {
            assert!(bounds.lower[v] <= 1.0 / 3.0 + 1e-9);
            assert!(bounds.upper[v] >= 1.0 / 3.0 - 1e-9);
        }
    }

    #[test]
    fn bounds_actually_tighten_after_stabilization() {
        let g = k5_far_triangle();
        let cs = CliqueSet::enumerate(&g, 3);
        let initial = initialize_bounds(&cs, DEFAULT_SLACK);
        let (_, _, _, tightened) = run_pipeline_upto_stable(&g, 3, 60);
        // initial upper for K5 members is the core number 6; Theorem 4
        // should pull it near 2.
        for v in 0..5 {
            assert!(tightened.upper[v] < initial.upper[v]);
            assert!(tightened.upper[v] < 3.0);
            assert!(tightened.lower[v] > 1.5);
        }
    }

    #[test]
    fn uniform_graph_is_single_stable_group() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (_, _, sg, _) = run_pipeline_upto_stable(&g, 3, 30);
        assert_eq!(sg.groups.len(), 1);
        assert_eq!(sg.groups[0].len(), 6);
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = CsrGraph::from_edges(0, []);
        let (_, _, sg, _) = run_pipeline_upto_stable(&g, 3, 5);
        assert!(sg.groups.is_empty());
    }
}
