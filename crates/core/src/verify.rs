//! LhCDS verification (§4.4): basic (Algorithm 4) and fast (Algorithm 5).
//!
//! **Precondition** shared by both verifiers: the candidate `S` is
//! connected and h-clique `ρ`-compact for `ρ = d_ψh(G[S])` (equivalently
//! self-densest — callers establish this with the local densest
//! decomposition). What remains to check is *maximality*: no h-clique
//! `ρ`-compact supergraph of `S` exists in `G` (Definition 2, condition
//! 2).
//!
//! * [`verify_basic`] builds the Figure 6 flow network over the whole
//!   graph: `DeriveCompact(G, ρ − 1/|V|², ∅)` returns the union of all
//!   maximal `ρ`-compact subgraphs (Theorem 5); `S` is an LhCDS iff it
//!   is one of its connected components.
//! * [`verify_fast`] (Algorithm 5) restricts the network to the
//!   neighborhood `T` that could possibly host a `ρ`-compact supergraph:
//!   every vertex of a `ρ`-compact subgraph has compact number `≥ ρ`, so
//!   a BFS from `S` across vertices with upper bound `φ̄(w) ≥ ρ`
//!   provably covers the maximal `ρ`-compact supergraph of `S`. Three
//!   outcomes avoid the flow entirely:
//!   - **early reject**: a vertex adjacent to `S` has lower bound
//!     `φ̲(w) > ρ` — its own compact region merges with `S` into a
//!     larger `ρ`-compact subgraph (the union of two `ρ`-compact
//!     subgraphs joined by an edge is `ρ`-compact), so `S` is not
//!     maximal;
//!   - **early reject**: a vertex adjacent to `S` belongs to an
//!     already-verified LhCDS (its pinned compact number is `≥ ρ` for
//!     the same reason — outputs are emitted densest-first);
//!   - **shortcut accept**: the BFS never leaves `S` — no adjacent
//!     vertex can reach compact number `ρ`, so no supergraph exists.
//!
//!   Otherwise `DeriveCompact(G[T], ρ − 1/|T|², P)` decides exactly.
//!   With this `T` the paper's boundary-clique set `P` is provably
//!   empty under its own validity rule (a straddling clique would have
//!   a member with `φ̄ < ρ`, which can belong to no `ρ`-compact
//!   subgraph); `FastConfig::boundary_cliques` optionally adds the
//!   straddling cliques anyway — the Figure 7 network with `h/cnt`
//!   capacities — for the ablation benchmarks.

use crate::bounds::Bounds;
use crate::compact::{local_instance, BoundaryClique, InstanceSolver, LocalInstance};
use lhcds_clique::CliqueSet;
use lhcds_flow::Ratio;
use lhcds_graph::traversal::components_within;
use lhcds_graph::{CsrGraph, VertexId};

/// Outcome of a verification call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// `S` is a locally h-clique densest subgraph.
    Lhcds,
    /// `S` is not maximal: the given strictly-larger vertex set is the
    /// connected component of the union of maximal `ρ`-compact
    /// subgraphs that contains `S` (parent vertex ids, sorted).
    Superset(Vec<VertexId>),
    /// `S` is provably not maximal (early bound-based reject); the
    /// superset was not computed because the caller did not ask for it.
    NotMaximal,
}

/// Counters describing how a fast verification was decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastVerifyInfo {
    /// BFS frontier size `|T|` (0 when rejected before expansion ended).
    pub t_size: usize,
    /// Whether the flow network was built and solved.
    pub used_flow: bool,
    /// Whether the shortcut accept fired (`T == S`).
    pub shortcut_accept: bool,
    /// Whether an early bound-based reject fired.
    pub early_reject: bool,
    /// Interior cliques in the reduced network.
    pub local_cliques: usize,
    /// Boundary cliques added to the reduced network.
    pub boundary_cliques: usize,
}

/// Options for [`verify_fast`].
#[derive(Debug, Clone, Copy)]
pub struct FastConfig {
    /// Add straddling cliques to the reduced network with the Figure 7
    /// `h/cnt` capacities. Off by default: under this crate's (larger,
    /// provably sufficient) `T`, inflating straddling cliques can
    /// manufacture spurious compact supersets and *falsely reject* a
    /// true LhCDS — the switch exists for the ablation benchmarks only
    /// (see DESIGN.md).
    pub boundary_cliques: bool,
    /// When false, an early reject returns [`Verdict::NotMaximal`]
    /// without computing the superset (cheaper; used by benchmarks).
    /// When true, the flow still runs so the caller gets the superset.
    pub need_superset: bool,
}

impl Default for FastConfig {
    fn default() -> Self {
        FastConfig {
            boundary_cliques: false,
            need_superset: true,
        }
    }
}

/// The basic verifier (Algorithm 4) with its whole-graph flow network
/// retained across calls.
///
/// Every `verify_basic` invocation historically rebuilt the full
/// Figure 6 network over *all* of `G` — identical arcs every time, only
/// the threshold ρ differs between candidates. `BasicVerifier` builds
/// the [`InstanceSolver`] once and re-tunes it per call; the IPPV
/// driver holds one instance for its whole run when configured with the
/// basic verifier (the dominant cost of the flow-only baselines).
#[derive(Debug)]
pub struct BasicVerifier {
    solver: InstanceSolver,
    /// local → parent mapping of the whole-graph instance.
    map: Vec<VertexId>,
}

impl BasicVerifier {
    /// Builds the whole-graph instance once. `reuse = false` restores
    /// the rebuild-per-call cost model (bench A/B; results identical).
    pub fn new(g: &CsrGraph, cliques: &CliqueSet, reuse: bool) -> BasicVerifier {
        let all: Vec<VertexId> = g.vertices().collect();
        let (inst, map) = local_instance(cliques, &all);
        BasicVerifier {
            solver: InstanceSolver::with_reuse(inst, reuse),
            map,
        }
    }

    /// Basic verification (Algorithm 4): full-graph `DeriveCompact`.
    /// `s_sorted` must be sorted ascending. Returns `Lhcds` or
    /// `Superset(X)`.
    pub fn verify(&mut self, g: &CsrGraph, s_sorted: &[VertexId], rho: Ratio) -> Verdict {
        debug_assert!(s_sorted.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(
            g.n(),
            self.map.len(),
            "verify() must receive the graph this verifier was built from"
        );
        let membership = self.solver.derive_compact(rho);
        let kept: Vec<VertexId> = self
            .map
            .iter()
            .zip(&membership)
            .filter(|&(_, &m)| m)
            .map(|(&v, _)| v)
            .collect();
        component_verdict(g, s_sorted, &kept)
    }
}

/// Basic verification (Algorithm 4) as a one-shot call: builds a
/// throwaway [`BasicVerifier`]. Repeated callers should hold a
/// `BasicVerifier` so all candidates share one network.
pub fn verify_basic(
    g: &CsrGraph,
    cliques: &CliqueSet,
    s_sorted: &[VertexId],
    rho: Ratio,
) -> Verdict {
    BasicVerifier::new(g, cliques, true).verify(g, s_sorted, rho)
}

/// Fast verification (Algorithm 5). `output_mask[v]` marks vertices of
/// already-verified LhCDSes (used for the early reject — their compact
/// numbers are pinned at densities `≥ ρ`).
pub fn verify_fast(
    g: &CsrGraph,
    cliques: &CliqueSet,
    s_sorted: &[VertexId],
    rho: Ratio,
    bounds: &Bounds,
    output_mask: &[bool],
    cfg: &FastConfig,
) -> (Verdict, FastVerifyInfo) {
    debug_assert!(s_sorted.windows(2).all(|w| w[0] < w[1]));
    let mut info = FastVerifyInfo::default();
    let rho_hi = rho.to_f64() + 1e-9; // reject needs certainty above ρ
    let rho_lo = rho.to_f64() - 1e-9; // expansion includes ties at ρ

    // BFS closure of S across vertices that may reach compact number ρ.
    let mut in_t = vec![false; g.n()];
    let mut in_s = vec![false; g.n()];
    for &v in s_sorted {
        in_t[v as usize] = true;
        in_s[v as usize] = true;
    }
    let mut queue: std::collections::VecDeque<VertexId> = s_sorted.iter().copied().collect();
    let mut t: Vec<VertexId> = s_sorted.to_vec();
    let mut rejected = false;
    'bfs: while let Some(v) = queue.pop_front() {
        let v_in_s = in_s[v as usize];
        for &w in g.neighbors(v) {
            if in_t[w as usize] {
                continue;
            }
            let wi = w as usize;
            if v_in_s && (bounds.lower[wi] > rho_hi || output_mask[wi]) {
                // a neighbor of S certainly has compact number ≥ ρ: its
                // compact region merges with S — S is not maximal.
                info.early_reject = true;
                rejected = true;
                if !cfg.need_superset {
                    break 'bfs;
                }
            }
            if bounds.upper[wi] >= rho_lo {
                in_t[wi] = true;
                t.push(w);
                queue.push_back(w);
            }
        }
    }
    info.t_size = t.len();

    if rejected && !cfg.need_superset {
        return (Verdict::NotMaximal, info);
    }
    if !rejected && t.len() == s_sorted.len() {
        info.shortcut_accept = true;
        return (Verdict::Lhcds, info);
    }

    // Reduced flow network over G[T], solved through the parametric
    // layer (the boundary in-arcs stay individually tunable there, so
    // the Figure 6/7 ablation can share one network per instance).
    t.sort_unstable();
    let (mut inst, map) = local_instance(cliques, &t);
    info.local_cliques = inst.clique_count();
    if cfg.boundary_cliques {
        collect_boundary_cliques(cliques, &t, &map, &mut inst);
        info.boundary_cliques = inst.boundary.len();
    }
    info.used_flow = true;
    let membership = InstanceSolver::new(inst).derive_compact(rho);
    let kept: Vec<VertexId> = map
        .iter()
        .zip(&membership)
        .filter(|&(_, &m)| m)
        .map(|(&v, _)| v)
        .collect();
    (component_verdict(g, s_sorted, &kept), info)
}

/// Collects cliques that straddle `t` (sorted) into `inst.boundary`,
/// Figure 7 style. `map` is the local→parent mapping of `inst`.
fn collect_boundary_cliques(
    cliques: &CliqueSet,
    t_sorted: &[VertexId],
    map: &[VertexId],
    inst: &mut LocalInstance,
) {
    debug_assert_eq!(map, t_sorted);
    let mut local = vec![u32::MAX; cliques.n()];
    for (i, &v) in map.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut stamp = vec![false; cliques.len()];
    for &v in t_sorted {
        for &ci in cliques.cliques_of(v) {
            let ci = ci as usize;
            if stamp[ci] {
                continue;
            }
            stamp[ci] = true;
            let members = cliques.members(ci);
            let inside: Vec<u32> = members
                .iter()
                .filter_map(|&w| {
                    let l = local[w as usize];
                    (l != u32::MAX).then_some(l)
                })
                .collect();
            if !inside.is_empty() && inside.len() < members.len() {
                inst.boundary.push(BoundaryClique { inside });
            }
        }
    }
}

/// Shared tail: `S` is an LhCDS iff it equals its connected component
/// within the `kept` set.
fn component_verdict(g: &CsrGraph, s_sorted: &[VertexId], kept: &[VertexId]) -> Verdict {
    // S is ρ-compact, so it must be inside the union of maximal
    // ρ-compact subgraphs.
    debug_assert!(
        {
            let mut in_kept = vec![false; g.n()];
            for &v in kept {
                in_kept[v as usize] = true;
            }
            s_sorted.iter().all(|&v| in_kept[v as usize])
        },
        "ρ-compact candidate missing from DeriveCompact output"
    );
    let comps = components_within(g, kept);
    let first = s_sorted[0];
    for comp in comps {
        if comp.binary_search(&first).is_ok() {
            return if comp == s_sorted {
                Verdict::Lhcds
            } else {
                Verdict::Superset(comp)
            };
        }
    }
    // Unreachable given the debug assertion; treat conservatively.
    Verdict::Superset(kept.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{initialize_bounds, DEFAULT_SLACK};
    use lhcds_graph::GraphBuilder;

    /// Two K5s connected by a single edge. NOTE: neither K5 alone is an
    /// L3CDS — both are 2-compact and the bridge makes their union a
    /// connected 2-compact supergraph, so the unique L3CDS is the union
    /// of all ten vertices.
    fn two_k5_bridge() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(4, 5);
        b.build()
    }

    /// Two disjoint K5s: each is an L3CDS with density 2.
    fn two_k5_disjoint() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.build()
    }

    fn setup(g: &CsrGraph, h: usize) -> (CliqueSet, Bounds) {
        let cs = CliqueSet::enumerate(g, h);
        let bounds = initialize_bounds(&cs, DEFAULT_SLACK);
        (cs, bounds)
    }

    #[test]
    fn basic_accepts_true_lhcds() {
        let g = two_k5_disjoint();
        let (cs, _) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        assert_eq!(
            verify_basic(&g, &cs, &s, Ratio::from_int(2)),
            Verdict::Lhcds
        );
    }

    #[test]
    fn basic_rejects_bridged_fragment_with_union_superset() {
        // With a bridge, each K5 is 2-compact but not maximal: the
        // verifier must return the full union as the blocking superset.
        let g = two_k5_bridge();
        let (cs, _) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        match verify_basic(&g, &cs, &s, Ratio::from_int(2)) {
            Verdict::Superset(x) => assert_eq!(x, (0..10).collect::<Vec<_>>()),
            other => panic!("expected union superset, got {other:?}"),
        }
    }

    #[test]
    fn basic_rejects_fragment_of_larger_region() {
        // K6: any 5-subset has density 2 but the maximal 2-compact
        // subgraph is all of K6.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (cs, _) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        // ρ = density of the 5-subset (K5 inside K6) = 10/5 = 2
        match verify_basic(&g, &cs, &s, Ratio::from_int(2)) {
            Verdict::Superset(x) => assert_eq!(x, (0..6).collect::<Vec<_>>()),
            other => panic!("expected superset, got {other:?}"),
        }
    }

    #[test]
    fn fast_matches_basic_on_accept() {
        let g = two_k5_disjoint();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        assert_eq!(verdict, Verdict::Lhcds);
        assert!(info.t_size >= 5);
    }

    #[test]
    fn fast_rejects_bridged_fragment_with_union_superset() {
        let g = two_k5_bridge();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, _) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        match verdict {
            Verdict::Superset(x) => assert_eq!(x, (0..10).collect::<Vec<_>>()),
            other => panic!("expected union superset, got {other:?}"),
        }
    }

    #[test]
    fn fast_shortcut_fires_with_tight_bounds() {
        let g = two_k5_bridge();
        let (cs, mut bounds) = setup(&g, 3);
        // pin exact compact numbers: K5 members 2, so the *other* K5
        // (upper = 2 ≥ ρ = 2)… use the bridge structure: give the far
        // side a lower upper bound to force the shortcut.
        for v in 0..5 {
            bounds.pin_exact(v, Ratio::from_int(2));
        }
        for v in 5..10 {
            bounds.pin_exact(v, Ratio::new(3, 2)); // pretend: below ρ
        }
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        assert_eq!(verdict, Verdict::Lhcds);
        assert!(info.shortcut_accept);
        assert!(!info.used_flow);
    }

    #[test]
    fn fast_early_rejects_on_adjacent_output() {
        let g = two_k5_bridge();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let mut outputs = vec![false; g.n()];
        outputs[5..10].fill(true); // the far K5 was already output
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig {
                boundary_cliques: false,
                need_superset: false,
            },
        );
        assert_eq!(verdict, Verdict::NotMaximal);
        assert!(info.early_reject);
        assert!(!info.used_flow);
    }

    #[test]
    fn fast_rejects_fragment_with_superset() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        match verdict {
            Verdict::Superset(x) => assert_eq!(x, (0..6).collect::<Vec<_>>()),
            other => panic!("expected superset, got {other:?}"),
        }
        assert!(info.used_flow);
    }

    #[test]
    fn boundary_clique_option_is_exercised() {
        let g = two_k5_bridge();
        let (cs, mut bounds) = setup(&g, 3);
        // Force a T that cuts through the second K5: member 5 may reach
        // ρ, the rest certainly cannot (artificially tightened bounds).
        for v in 6..10 {
            bounds.pin_exact(v, Ratio::new(1, 2));
        }
        bounds.pin_exact(5, Ratio::from_int(2));
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig {
                boundary_cliques: true,
                need_superset: true,
            },
        );
        // vertex 5 is in T; its triangles with 6..10 straddle
        assert!(info.boundary_cliques > 0);
        // The inflated network credits vertex 5 with its straddling
        // triangles, keeping it in the compact set: the verdict is a
        // rejection with superset {0..5}. (The artificial pinned bounds
        // under-reported the far K5; the true answer for this graph is
        // that the union of all ten vertices is the only L3CDS.)
        match verdict {
            Verdict::Superset(x) => assert_eq!(x, (0..6).collect::<Vec<_>>()),
            other => panic!("expected superset under boundary inflation, got {other:?}"),
        }
    }

    /// One `BasicVerifier` across many candidates at different ρ must
    /// answer exactly like one-shot calls, while building one network.
    #[test]
    fn basic_verifier_reuses_one_network_across_candidates() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(9, 10); // pendant, no triangles
        let g = b.build();
        let (cs, _) = setup(&g, 3);
        let candidates: [(&[VertexId], Ratio); 3] = [
            (&[0, 1, 2, 3, 4], Ratio::from_int(2)),
            (&[5, 6, 7, 8, 9], Ratio::from_int(2)),
            (&[0, 1, 2], Ratio::from_int(1)),
        ];
        let mut shared = BasicVerifier::new(&g, &cs, true);
        let verdicts: Vec<Verdict> = candidates
            .iter()
            .map(|&(s, rho)| shared.verify(&g, s, rho))
            .collect();
        // (the one-network-for-all-candidates counter contract lives in
        // tests/flow_reuse.rs, whose process owns the global counters)
        for (&(s, rho), verdict) in candidates.iter().zip(&verdicts) {
            assert_eq!(*verdict, verify_basic(&g, &cs, s, rho), "{s:?} at {rho}");
        }
        assert_eq!(verdicts[0], Verdict::Lhcds);
        assert_eq!(verdicts[1], Verdict::Lhcds);
        assert!(matches!(verdicts[2], Verdict::Superset(_)));
    }

    /// Randomized equivalence: fast ≡ basic on small random graphs.
    #[test]
    fn fast_equals_basic_randomized() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n = 8 + (rng() % 5) as usize;
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as u32);
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng() % 100 < 45 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            let (cs, bounds) = setup(&g, 3);
            if cs.is_empty() {
                continue;
            }
            // candidate: the densest decomposition of the whole graph
            let all: Vec<VertexId> = g.vertices().collect();
            let (inst, map) = local_instance(&cs, &all);
            let Some((rho, members)) = crate::compact::densest_decomposition(&inst) else {
                continue;
            };
            let kept: Vec<VertexId> = map
                .iter()
                .zip(&members)
                .filter(|&(_, &m)| m)
                .map(|(&v, _)| v)
                .collect();
            let comps = components_within(&g, &kept);
            let outputs = vec![false; g.n()];
            for comp in comps {
                let basic = verify_basic(&g, &cs, &comp, rho);
                let (fast, _) = verify_fast(
                    &g,
                    &cs,
                    &comp,
                    rho,
                    &bounds,
                    &outputs,
                    &FastConfig::default(),
                );
                assert_eq!(basic, fast, "trial {trial}: candidate {comp:?}");
            }
        }
    }
}
