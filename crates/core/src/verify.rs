//! LhCDS verification (§4.4): basic (Algorithm 4) and fast (Algorithm 5).
//!
//! **Precondition** shared by both verifiers: the candidate `S` is
//! connected and h-clique `ρ`-compact for `ρ = d_ψh(G[S])` (equivalently
//! self-densest — callers establish this with the local densest
//! decomposition). What remains to check is *maximality*: no h-clique
//! `ρ`-compact supergraph of `S` exists in `G` (Definition 2, condition
//! 2).
//!
//! * [`verify_basic`] builds the Figure 6 flow network over the whole
//!   graph: `DeriveCompact(G, ρ − 1/|V|², ∅)` returns the union of all
//!   maximal `ρ`-compact subgraphs (Theorem 5); `S` is an LhCDS iff it
//!   is one of its connected components.
//! * [`verify_fast`] (Algorithm 5) restricts the network to the
//!   neighborhood `T` that could possibly host a `ρ`-compact supergraph:
//!   every vertex of a `ρ`-compact subgraph has compact number `≥ ρ`, so
//!   a BFS from `S` across vertices with upper bound `φ̄(w) ≥ ρ`
//!   provably covers the maximal `ρ`-compact supergraph of `S`. Three
//!   outcomes avoid the flow entirely:
//!   - **early reject**: a vertex adjacent to `S` has lower bound
//!     `φ̲(w) > ρ` — its own compact region merges with `S` into a
//!     larger `ρ`-compact subgraph (the union of two `ρ`-compact
//!     subgraphs joined by an edge is `ρ`-compact), so `S` is not
//!     maximal;
//!   - **early reject**: a vertex adjacent to `S` belongs to an
//!     already-verified LhCDS (its pinned compact number is `≥ ρ` for
//!     the same reason — outputs are emitted densest-first);
//!   - **shortcut accept**: the BFS never leaves `S` — no adjacent
//!     vertex can reach compact number `ρ`, so no supergraph exists.
//!
//!   Otherwise `DeriveCompact(G[T], ρ − 1/|T|², P)` decides exactly.
//!   With this `T` the paper's boundary-clique set `P` is provably
//!   empty under its own validity rule (a straddling clique would have
//!   a member with `φ̄ < ρ`, which can belong to no `ρ`-compact
//!   subgraph); `FastConfig::boundary_cliques` optionally adds the
//!   straddling cliques anyway — the Figure 7 network with `h/cnt`
//!   capacities — for the ablation benchmarks.

use crate::bounds::Bounds;
use crate::compact::{local_instance, BoundaryClique, InstanceSolver, LocalInstance};
use lhcds_clique::CliqueSet;
use lhcds_flow::parametric::ReusePolicy;
use lhcds_flow::rational::lcm_up_to;
use lhcds_flow::{FlowReuse, ParametricNetwork, Ratio};
use lhcds_graph::traversal::components_within;
use lhcds_graph::{CsrGraph, VertexId};

/// Outcome of a verification call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// `S` is a locally h-clique densest subgraph.
    Lhcds,
    /// `S` is not maximal: the given strictly-larger vertex set is the
    /// connected component of the union of maximal `ρ`-compact
    /// subgraphs that contains `S` (parent vertex ids, sorted).
    Superset(Vec<VertexId>),
    /// `S` is provably not maximal (early bound-based reject); the
    /// superset was not computed because the caller did not ask for it.
    NotMaximal,
}

/// Counters describing how a fast verification was decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastVerifyInfo {
    /// BFS frontier size `|T|` (0 when rejected before expansion ended).
    pub t_size: usize,
    /// Whether the flow network was built and solved.
    pub used_flow: bool,
    /// Whether the shortcut accept fired (`T == S`).
    pub shortcut_accept: bool,
    /// Whether an early bound-based reject fired.
    pub early_reject: bool,
    /// Interior cliques in the reduced network (0 when the shared
    /// whole-graph network of a [`FastVerifier`] answered instead —
    /// no reduced network is materialized there).
    pub local_cliques: usize,
    /// Boundary cliques added to the reduced network.
    pub boundary_cliques: usize,
}

/// Options for [`verify_fast`].
#[derive(Debug, Clone, Copy)]
pub struct FastConfig {
    /// Add straddling cliques to the reduced network with the Figure 7
    /// `h/cnt` capacities. Off by default: under this crate's (larger,
    /// provably sufficient) `T`, inflating straddling cliques can
    /// manufacture spurious compact supersets and *falsely reject* a
    /// true LhCDS — the switch exists for the ablation benchmarks only
    /// (see DESIGN.md).
    pub boundary_cliques: bool,
    /// When false, an early reject returns [`Verdict::NotMaximal`]
    /// without computing the superset (cheaper; used by benchmarks).
    /// When true, the flow still runs so the caller gets the superset.
    pub need_superset: bool,
}

impl Default for FastConfig {
    fn default() -> Self {
        FastConfig {
            boundary_cliques: false,
            need_superset: true,
        }
    }
}

/// The basic verifier (Algorithm 4) with its whole-graph flow network
/// retained across calls.
///
/// Every `verify_basic` invocation historically rebuilt the full
/// Figure 6 network over *all* of `G` — identical arcs every time, only
/// the threshold ρ differs between candidates. `BasicVerifier` builds
/// the [`InstanceSolver`] once and re-tunes it per call; the IPPV
/// driver holds one instance for its whole run when configured with the
/// basic verifier (the dominant cost of the flow-only baselines).
#[derive(Debug)]
pub struct BasicVerifier {
    solver: InstanceSolver,
    /// local → parent mapping of the whole-graph instance.
    map: Vec<VertexId>,
}

impl BasicVerifier {
    /// Builds the whole-graph instance once at the given [`FlowReuse`]
    /// tier ([`FlowReuse::Scratch`] restores the rebuild-per-call cost
    /// model for the bench A/B; results identical across tiers).
    pub fn new(g: &CsrGraph, cliques: &CliqueSet, reuse: FlowReuse) -> BasicVerifier {
        let all: Vec<VertexId> = g.vertices().collect();
        BasicVerifier::on_universe(cliques, &all, reuse)
    }

    /// Builds the verifier on a restricted universe (Core-Exact style:
    /// the `(h−1)`-core suffices, since every h-clique lives inside it
    /// and `DeriveCompact` at the pipeline's strictly positive
    /// thresholds never keeps a clique-free vertex). Verdicts are
    /// identical to the whole-graph verifier as long as `universe`
    /// covers every clique member.
    pub fn on_universe(
        cliques: &CliqueSet,
        universe: &[VertexId],
        reuse: FlowReuse,
    ) -> BasicVerifier {
        let (inst, map) = local_instance(cliques, universe);
        debug_assert_eq!(
            inst.clique_count(),
            cliques.len(),
            "universe must cover every clique"
        );
        BasicVerifier {
            solver: InstanceSolver::with_reuse(inst, reuse),
            map,
        }
    }

    /// Basic verification (Algorithm 4): full-graph `DeriveCompact`.
    /// `s_sorted` must be sorted ascending. Returns `Lhcds` or
    /// `Superset(X)`.
    pub fn verify(&mut self, g: &CsrGraph, s_sorted: &[VertexId], rho: Ratio) -> Verdict {
        debug_assert!(s_sorted.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(
            self.map.len() <= g.n() && s_sorted.iter().all(|v| self.map.binary_search(v).is_ok()),
            "verify() must receive the graph this verifier was built from"
        );
        let membership = self.solver.derive_compact(rho);
        let kept: Vec<VertexId> = self
            .map
            .iter()
            .zip(&membership)
            .filter(|&(_, &m)| m)
            .map(|(&v, _)| v)
            .collect();
        component_verdict(g, s_sorted, &kept)
    }
}

/// Basic verification (Algorithm 4) as a one-shot call: builds a
/// throwaway [`BasicVerifier`]. Repeated callers should hold a
/// `BasicVerifier` so all candidates share one network.
pub fn verify_basic(
    g: &CsrGraph,
    cliques: &CliqueSet,
    s_sorted: &[VertexId],
    rho: Ratio,
) -> Verdict {
    BasicVerifier::new(g, cliques, FlowReuse::default()).verify(g, s_sorted, rho)
}

/// The fast verifier's flow step on **one** shared whole-graph network.
///
/// Historically every flow-deciding [`verify_fast`] call built a fresh
/// reduced network over its own `T`. The candidates differ, but their
/// networks are all fragments of the same Figure 6 shape; `FastVerifier`
/// builds the whole-graph network once and *simulates* each candidate's
/// reduced network with parametric terminal capacities alone:
///
/// * `v ∈ T` — `s → v` carries the whole-graph clique degree and
///   `v → t` the threshold `(ρ − 1/|T|²)·h`, exactly like the reduced
///   network;
/// * `v ∉ T` — `s → v` drops to 0 and `v → t` becomes effectively
///   infinite, pinning the vertex to the sink side of every min-cut.
///
/// With the outside pinned, a clique `c` straddling `T`'s boundary
/// contributes `|A ∩ c|` (linear) to every cut with source side
/// `A ⊆ T`, which cancels against the whole-graph `s → v` degrees — the
/// cut function over `A` differs from the reduced network's by a
/// constant. Min-cut source sides (the canonical maximal one included)
/// therefore coincide with the reduced network's, bit-identically.
///
/// The per-candidate re-tunes run under [`ReusePolicy::Retract`], so
/// the flow survives from candidate to candidate and is never reset —
/// the same GGT discipline the decomposition ladder uses. Only valid
/// for the default Figure 6 configuration (no boundary-clique
/// inflation); [`verify_fast_with`] falls back to the per-candidate
/// path when `FastConfig::boundary_cliques` is set.
#[derive(Debug)]
pub struct FastVerifier {
    net: ParametricNetwork,
    /// Whole-graph clique degree per local vertex, at the base scale.
    deg: Vec<i128>,
    /// local → parent ids (ascending).
    map: Vec<VertexId>,
    /// parent → local (`u32::MAX` outside the universe).
    local: Vec<u32>,
    h: i128,
}

impl FastVerifier {
    /// Builds the shared whole-graph network once.
    pub fn new(g: &CsrGraph, cliques: &CliqueSet) -> FastVerifier {
        let all: Vec<VertexId> = g.vertices().collect();
        FastVerifier::on_universe(cliques, &all)
    }

    /// Restricted-universe variant (Core-Exact: the `(h−1)`-core hosts
    /// every h-clique, so building on it shrinks the network without
    /// changing any verdict). `universe` must cover every clique member.
    pub fn on_universe(cliques: &CliqueSet, universe: &[VertexId]) -> FastVerifier {
        let (inst, map) = local_instance(cliques, universe);
        debug_assert_eq!(
            inst.clique_count(),
            cliques.len(),
            "universe must cover every clique"
        );
        let n = inst.n;
        let h = inst.h as i128;
        let base = lcm_up_to(inst.h as u32);
        let fc = inst.clique_count();
        let t = (1 + n + fc) as u32;
        let mut net = ParametricNetwork::new(t as usize + 1, 0, t, base);
        // parametric arc layout: [0, n) = s→v, [n, 2n) = v→t
        for v in 0..n as u32 {
            net.add_parametric(0, v + 1);
        }
        for v in 0..n as u32 {
            net.add_parametric(v + 1, t);
        }
        let mut deg = vec![0i128; n];
        for (i, members) in inst.full.chunks_exact(inst.h).enumerate() {
            let cnode = (1 + n + i) as u32;
            for &v in members {
                net.add_static(v + 1, cnode, base);
                net.add_static(cnode, v + 1, (h - 1) * base);
                deg[v as usize] += base;
            }
        }
        let mut local = vec![u32::MAX; cliques.n()];
        for (i, &v) in map.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        FastVerifier {
            net,
            deg,
            map,
            local,
            h,
        }
    }

    /// `DeriveCompact(G[T], ρ − 1/|T|², ∅)` via the shared network:
    /// returns the members (parent ids, ascending) of the union of all
    /// maximal `ρ`-compact subgraphs of `G[T]`. Universe members of `T`
    /// drive the cut; clique-free `T` members outside the universe are
    /// provably never kept and only enter through `|T|` in the
    /// perturbation term.
    pub fn derive_compact_within(&mut self, t_sorted: &[VertexId], rho: Ratio) -> Vec<VertexId> {
        let ts = t_sorted.len() as i128;
        let eps = Ratio::new(1, ts * ts);
        let thr = (rho - eps).max(Ratio::zero());
        let scale = self.net.scale_for(thr.den());
        let factor = scale / self.net.base_scale();
        let vt_cap = (thr * Ratio::from_int(self.h)).scale_to_int(scale);
        assert!(vt_cap >= 0, "threshold must be non-negative");
        let n = self.map.len();
        let mut in_t = vec![false; n];
        // "infinite" = strictly above the all-sink cut Σ_{v∈T} deg(v),
        // which bounds the min cut: no minimum cut can afford an
        // out-of-T vertex on the source side.
        let mut inf: i128 = 1;
        for &v in t_sorted {
            let l = self.local[v as usize];
            if l != u32::MAX {
                in_t[l as usize] = true;
                inf = inf.saturating_add(self.deg[l as usize].saturating_mul(factor));
            }
        }
        let mut caps = Vec::with_capacity(2 * n);
        for (l, &inside) in in_t.iter().enumerate() {
            caps.push(if inside { self.deg[l] * factor } else { 0 });
        }
        for &inside in &in_t {
            caps.push(if inside { vt_cap } else { inf });
        }
        self.net.solve_with(scale, &caps, ReusePolicy::Retract);
        let side = self.net.max_cut_source_side();
        (0..n)
            .filter(|&l| in_t[l] && side[l + 1])
            .map(|l| self.map[l])
            .collect()
    }
}

/// Fast verification (Algorithm 5). `output_mask[v]` marks vertices of
/// already-verified LhCDSes (used for the early reject — their compact
/// numbers are pinned at densities `≥ ρ`). Builds a reduced network per
/// flow-deciding call; see [`verify_fast_with`] to share one network
/// across candidates.
pub fn verify_fast(
    g: &CsrGraph,
    cliques: &CliqueSet,
    s_sorted: &[VertexId],
    rho: Ratio,
    bounds: &Bounds,
    output_mask: &[bool],
    cfg: &FastConfig,
) -> (Verdict, FastVerifyInfo) {
    verify_fast_with(g, cliques, s_sorted, rho, bounds, output_mask, cfg, None)
}

/// A lazily-built shared [`FastVerifier`] slot for [`verify_fast_with`]:
/// the whole-graph network is constructed on the first *flow-deciding*
/// verification and reused ever after, so candidate streams that
/// resolve entirely by shortcut/early-reject never pay for it.
pub struct SharedFastSlot<'a> {
    /// Where the verifier persists across candidates (the caller's
    /// field; `None` until the first flow-deciding verification).
    pub slot: &'a mut Option<FastVerifier>,
    /// Restricted build universe (Core-Exact pruning), if any.
    pub universe: Option<&'a [VertexId]>,
}

/// [`verify_fast`] with an optional shared [`FastVerifier`] slot: when
/// given (and boundary-clique inflation is off), the flow step re-tunes
/// the shared whole-graph network parametrically — building it on first
/// use — instead of building a reduced network for this candidate.
/// Verdicts are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn verify_fast_with(
    g: &CsrGraph,
    cliques: &CliqueSet,
    s_sorted: &[VertexId],
    rho: Ratio,
    bounds: &Bounds,
    output_mask: &[bool],
    cfg: &FastConfig,
    shared: Option<SharedFastSlot<'_>>,
) -> (Verdict, FastVerifyInfo) {
    debug_assert!(s_sorted.windows(2).all(|w| w[0] < w[1]));
    let mut info = FastVerifyInfo::default();
    let rho_hi = rho.to_f64() + 1e-9; // reject needs certainty above ρ
    let rho_lo = rho.to_f64() - 1e-9; // expansion includes ties at ρ

    // BFS closure of S across vertices that may reach compact number ρ.
    let mut in_t = vec![false; g.n()];
    let mut in_s = vec![false; g.n()];
    for &v in s_sorted {
        in_t[v as usize] = true;
        in_s[v as usize] = true;
    }
    let mut queue: std::collections::VecDeque<VertexId> = s_sorted.iter().copied().collect();
    let mut t: Vec<VertexId> = s_sorted.to_vec();
    let mut rejected = false;
    'bfs: while let Some(v) = queue.pop_front() {
        let v_in_s = in_s[v as usize];
        for &w in g.neighbors(v) {
            if in_t[w as usize] {
                continue;
            }
            let wi = w as usize;
            if v_in_s && (bounds.lower[wi] > rho_hi || output_mask[wi]) {
                // a neighbor of S certainly has compact number ≥ ρ: its
                // compact region merges with S — S is not maximal.
                info.early_reject = true;
                rejected = true;
                if !cfg.need_superset {
                    break 'bfs;
                }
            }
            if bounds.upper[wi] >= rho_lo {
                in_t[wi] = true;
                t.push(w);
                queue.push_back(w);
            }
        }
    }
    info.t_size = t.len();

    if rejected && !cfg.need_superset {
        return (Verdict::NotMaximal, info);
    }
    if !rejected && t.len() == s_sorted.len() {
        info.shortcut_accept = true;
        return (Verdict::Lhcds, info);
    }

    t.sort_unstable();
    info.used_flow = true;
    let kept: Vec<VertexId> = match shared {
        // The shared whole-graph network simulates this candidate's
        // reduced network with parametric terminal caps alone (only
        // valid without boundary-clique inflation).
        Some(sh) if !cfg.boundary_cliques => {
            let fv = sh.slot.get_or_insert_with(|| match sh.universe {
                Some(u) => FastVerifier::on_universe(cliques, u),
                None => FastVerifier::new(g, cliques),
            });
            fv.derive_compact_within(&t, rho)
        }
        _ => {
            // Reduced flow network over G[T], solved through the
            // parametric layer (the boundary in-arcs stay individually
            // tunable there, so the Figure 6/7 ablation can share one
            // network per instance).
            let (mut inst, map) = local_instance(cliques, &t);
            info.local_cliques = inst.clique_count();
            if cfg.boundary_cliques {
                collect_boundary_cliques(cliques, &t, &map, &mut inst);
                info.boundary_cliques = inst.boundary.len();
            }
            let membership = InstanceSolver::new(inst).derive_compact(rho);
            map.iter()
                .zip(&membership)
                .filter(|&(_, &m)| m)
                .map(|(&v, _)| v)
                .collect()
        }
    };
    (component_verdict(g, s_sorted, &kept), info)
}

/// Collects cliques that straddle `t` (sorted) into `inst.boundary`,
/// Figure 7 style. `map` is the local→parent mapping of `inst`.
fn collect_boundary_cliques(
    cliques: &CliqueSet,
    t_sorted: &[VertexId],
    map: &[VertexId],
    inst: &mut LocalInstance,
) {
    debug_assert_eq!(map, t_sorted);
    let mut local = vec![u32::MAX; cliques.n()];
    for (i, &v) in map.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut stamp = vec![false; cliques.len()];
    for &v in t_sorted {
        for &ci in cliques.cliques_of(v) {
            let ci = ci as usize;
            if stamp[ci] {
                continue;
            }
            stamp[ci] = true;
            let members = cliques.members(ci);
            let inside: Vec<u32> = members
                .iter()
                .filter_map(|&w| {
                    let l = local[w as usize];
                    (l != u32::MAX).then_some(l)
                })
                .collect();
            if !inside.is_empty() && inside.len() < members.len() {
                inst.boundary.push(BoundaryClique { inside });
            }
        }
    }
}

/// Shared tail: `S` is an LhCDS iff it equals its connected component
/// within the `kept` set.
fn component_verdict(g: &CsrGraph, s_sorted: &[VertexId], kept: &[VertexId]) -> Verdict {
    // S is ρ-compact, so it must be inside the union of maximal
    // ρ-compact subgraphs.
    debug_assert!(
        {
            let mut in_kept = vec![false; g.n()];
            for &v in kept {
                in_kept[v as usize] = true;
            }
            s_sorted.iter().all(|&v| in_kept[v as usize])
        },
        "ρ-compact candidate missing from DeriveCompact output"
    );
    let comps = components_within(g, kept);
    let first = s_sorted[0];
    for comp in comps {
        if comp.binary_search(&first).is_ok() {
            return if comp == s_sorted {
                Verdict::Lhcds
            } else {
                Verdict::Superset(comp)
            };
        }
    }
    // Unreachable given the debug assertion; treat conservatively.
    Verdict::Superset(kept.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{initialize_bounds, DEFAULT_SLACK};
    use lhcds_graph::GraphBuilder;

    /// Two K5s connected by a single edge. NOTE: neither K5 alone is an
    /// L3CDS — both are 2-compact and the bridge makes their union a
    /// connected 2-compact supergraph, so the unique L3CDS is the union
    /// of all ten vertices.
    fn two_k5_bridge() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(4, 5);
        b.build()
    }

    /// Two disjoint K5s: each is an L3CDS with density 2.
    fn two_k5_disjoint() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.build()
    }

    fn setup(g: &CsrGraph, h: usize) -> (CliqueSet, Bounds) {
        let cs = CliqueSet::enumerate(g, h);
        let bounds = initialize_bounds(&cs, DEFAULT_SLACK);
        (cs, bounds)
    }

    #[test]
    fn basic_accepts_true_lhcds() {
        let g = two_k5_disjoint();
        let (cs, _) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        assert_eq!(
            verify_basic(&g, &cs, &s, Ratio::from_int(2)),
            Verdict::Lhcds
        );
    }

    #[test]
    fn basic_rejects_bridged_fragment_with_union_superset() {
        // With a bridge, each K5 is 2-compact but not maximal: the
        // verifier must return the full union as the blocking superset.
        let g = two_k5_bridge();
        let (cs, _) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        match verify_basic(&g, &cs, &s, Ratio::from_int(2)) {
            Verdict::Superset(x) => assert_eq!(x, (0..10).collect::<Vec<_>>()),
            other => panic!("expected union superset, got {other:?}"),
        }
    }

    #[test]
    fn basic_rejects_fragment_of_larger_region() {
        // K6: any 5-subset has density 2 but the maximal 2-compact
        // subgraph is all of K6.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (cs, _) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        // ρ = density of the 5-subset (K5 inside K6) = 10/5 = 2
        match verify_basic(&g, &cs, &s, Ratio::from_int(2)) {
            Verdict::Superset(x) => assert_eq!(x, (0..6).collect::<Vec<_>>()),
            other => panic!("expected superset, got {other:?}"),
        }
    }

    #[test]
    fn fast_matches_basic_on_accept() {
        let g = two_k5_disjoint();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        assert_eq!(verdict, Verdict::Lhcds);
        assert!(info.t_size >= 5);
    }

    #[test]
    fn fast_rejects_bridged_fragment_with_union_superset() {
        let g = two_k5_bridge();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, _) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        match verdict {
            Verdict::Superset(x) => assert_eq!(x, (0..10).collect::<Vec<_>>()),
            other => panic!("expected union superset, got {other:?}"),
        }
    }

    #[test]
    fn fast_shortcut_fires_with_tight_bounds() {
        let g = two_k5_bridge();
        let (cs, mut bounds) = setup(&g, 3);
        // pin exact compact numbers: K5 members 2, so the *other* K5
        // (upper = 2 ≥ ρ = 2)… use the bridge structure: give the far
        // side a lower upper bound to force the shortcut.
        for v in 0..5 {
            bounds.pin_exact(v, Ratio::from_int(2));
        }
        for v in 5..10 {
            bounds.pin_exact(v, Ratio::new(3, 2)); // pretend: below ρ
        }
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        assert_eq!(verdict, Verdict::Lhcds);
        assert!(info.shortcut_accept);
        assert!(!info.used_flow);
    }

    #[test]
    fn fast_early_rejects_on_adjacent_output() {
        let g = two_k5_bridge();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let mut outputs = vec![false; g.n()];
        outputs[5..10].fill(true); // the far K5 was already output
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig {
                boundary_cliques: false,
                need_superset: false,
            },
        );
        assert_eq!(verdict, Verdict::NotMaximal);
        assert!(info.early_reject);
        assert!(!info.used_flow);
    }

    #[test]
    fn fast_rejects_fragment_with_superset() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (cs, bounds) = setup(&g, 3);
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig::default(),
        );
        match verdict {
            Verdict::Superset(x) => assert_eq!(x, (0..6).collect::<Vec<_>>()),
            other => panic!("expected superset, got {other:?}"),
        }
        assert!(info.used_flow);
    }

    #[test]
    fn boundary_clique_option_is_exercised() {
        let g = two_k5_bridge();
        let (cs, mut bounds) = setup(&g, 3);
        // Force a T that cuts through the second K5: member 5 may reach
        // ρ, the rest certainly cannot (artificially tightened bounds).
        for v in 6..10 {
            bounds.pin_exact(v, Ratio::new(1, 2));
        }
        bounds.pin_exact(5, Ratio::from_int(2));
        let s: Vec<VertexId> = (0..5).collect();
        let outputs = vec![false; g.n()];
        let (verdict, info) = verify_fast(
            &g,
            &cs,
            &s,
            Ratio::from_int(2),
            &bounds,
            &outputs,
            &FastConfig {
                boundary_cliques: true,
                need_superset: true,
            },
        );
        // vertex 5 is in T; its triangles with 6..10 straddle
        assert!(info.boundary_cliques > 0);
        // The inflated network credits vertex 5 with its straddling
        // triangles, keeping it in the compact set: the verdict is a
        // rejection with superset {0..5}. (The artificial pinned bounds
        // under-reported the far K5; the true answer for this graph is
        // that the union of all ten vertices is the only L3CDS.)
        match verdict {
            Verdict::Superset(x) => assert_eq!(x, (0..6).collect::<Vec<_>>()),
            other => panic!("expected superset under boundary inflation, got {other:?}"),
        }
    }

    /// One `BasicVerifier` across many candidates at different ρ must
    /// answer exactly like one-shot calls, while building one network.
    #[test]
    fn basic_verifier_reuses_one_network_across_candidates() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(9, 10); // pendant, no triangles
        let g = b.build();
        let (cs, _) = setup(&g, 3);
        let candidates: [(&[VertexId], Ratio); 3] = [
            (&[0, 1, 2, 3, 4], Ratio::from_int(2)),
            (&[5, 6, 7, 8, 9], Ratio::from_int(2)),
            (&[0, 1, 2], Ratio::from_int(1)),
        ];
        let mut shared = BasicVerifier::new(&g, &cs, FlowReuse::default());
        let verdicts: Vec<Verdict> = candidates
            .iter()
            .map(|&(s, rho)| shared.verify(&g, s, rho))
            .collect();
        // (the one-network-for-all-candidates counter contract lives in
        // tests/flow_reuse.rs, whose process owns the global counters)
        for (&(s, rho), verdict) in candidates.iter().zip(&verdicts) {
            assert_eq!(*verdict, verify_basic(&g, &cs, s, rho), "{s:?} at {rho}");
        }
        assert_eq!(verdicts[0], Verdict::Lhcds);
        assert_eq!(verdicts[1], Verdict::Lhcds);
        assert!(matches!(verdicts[2], Verdict::Superset(_)));
    }

    /// The shared whole-graph `FastVerifier` must answer exactly like
    /// the per-candidate reduced-network path, across a sequence of
    /// candidates on one retained network.
    #[test]
    fn shared_fast_verifier_matches_per_candidate_networks() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(4, 5); // bridge
        b.add_edge(9, 10).add_edge(10, 11).add_edge(11, 9); // triangle
        let g = b.build();
        let (cs, bounds) = setup(&g, 3);
        let outputs = vec![false; g.n()];
        let mut fv = Some(FastVerifier::new(&g, &cs));
        let candidates: [(&[VertexId], Ratio); 3] = [
            (&[0, 1, 2, 3, 4], Ratio::from_int(2)),
            (&[5, 6, 7, 8], Ratio::from_int(1)),
            (&[9, 10, 11], Ratio::new(1, 3)),
        ];
        for &(s, rho) in &candidates {
            let (legacy, li) = verify_fast_with(
                &g,
                &cs,
                s,
                rho,
                &bounds,
                &outputs,
                &FastConfig::default(),
                None,
            );
            let (shared, si) = verify_fast_with(
                &g,
                &cs,
                s,
                rho,
                &bounds,
                &outputs,
                &FastConfig::default(),
                Some(SharedFastSlot {
                    slot: &mut fv,
                    universe: None,
                }),
            );
            assert_eq!(legacy, shared, "candidate {s:?} at {rho}");
            assert_eq!(li.used_flow, si.used_flow);
            assert_eq!(li.t_size, si.t_size);
        }
    }

    /// Core-Exact restriction: the `(h−1)`-core universe changes no
    /// verdict for either verifier family.
    #[test]
    fn core_universe_changes_no_verdict() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(4, 5);
        b.add_edge(9, 10).add_edge(10, 11); // path: outside the 2-core
        let g = b.build();
        let (cs, bounds) = setup(&g, 3);
        let deg = lhcds_graph::core_decomp::degeneracy_order(&g);
        let core: Vec<VertexId> = (0..g.n() as u32)
            .filter(|&v| deg.core[v as usize] >= 2)
            .collect();
        assert!(core.len() < g.n(), "restriction must be proper");
        let outputs = vec![false; g.n()];
        let rho = Ratio::from_int(2);
        let s: Vec<VertexId> = (0..5).collect();
        let mut whole_b = BasicVerifier::new(&g, &cs, FlowReuse::default());
        let mut core_b = BasicVerifier::on_universe(&cs, &core, FlowReuse::default());
        assert_eq!(
            whole_b.verify(&g, &s, rho),
            core_b.verify(&g, &s, rho),
            "basic verifier"
        );
        // the whole-graph slot builds lazily; the core slot is seeded
        // with an explicit restricted-universe construction
        let mut whole_f: Option<FastVerifier> = None;
        let mut core_f = Some(FastVerifier::on_universe(&cs, &core));
        let (vw, _) = verify_fast_with(
            &g,
            &cs,
            &s,
            rho,
            &bounds,
            &outputs,
            &FastConfig::default(),
            Some(SharedFastSlot {
                slot: &mut whole_f,
                universe: None,
            }),
        );
        assert!(whole_f.is_some(), "flow-deciding call must build the net");
        let (vc, _) = verify_fast_with(
            &g,
            &cs,
            &s,
            rho,
            &bounds,
            &outputs,
            &FastConfig::default(),
            Some(SharedFastSlot {
                slot: &mut core_f,
                universe: Some(&core),
            }),
        );
        assert_eq!(vw, vc, "fast verifier");
    }

    /// Randomized equivalence: fast ≡ basic on small random graphs.
    #[test]
    fn fast_equals_basic_randomized() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n = 8 + (rng() % 5) as usize;
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as u32);
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng() % 100 < 45 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            let (cs, bounds) = setup(&g, 3);
            if cs.is_empty() {
                continue;
            }
            // candidate: the densest decomposition of the whole graph
            let all: Vec<VertexId> = g.vertices().collect();
            let (inst, map) = local_instance(&cs, &all);
            let Some((rho, members)) = crate::compact::densest_decomposition(&inst) else {
                continue;
            };
            let kept: Vec<VertexId> = map
                .iter()
                .zip(&members)
                .filter(|&(_, &m)| m)
                .map(|(&v, _)| v)
                .collect();
            let comps = components_within(&g, &kept);
            let outputs = vec![false; g.n()];
            let mut fv: Option<FastVerifier> = None;
            for comp in comps {
                let basic = verify_basic(&g, &cs, &comp, rho);
                let (fast, _) = verify_fast(
                    &g,
                    &cs,
                    &comp,
                    rho,
                    &bounds,
                    &outputs,
                    &FastConfig::default(),
                );
                assert_eq!(basic, fast, "trial {trial}: candidate {comp:?}");
                let (shared, _) = verify_fast_with(
                    &g,
                    &cs,
                    &comp,
                    rho,
                    &bounds,
                    &outputs,
                    &FastConfig::default(),
                    Some(SharedFastSlot {
                        slot: &mut fv,
                        universe: None,
                    }),
                );
                assert_eq!(fast, shared, "trial {trial}: shared {comp:?}");
            }
        }
    }
}
