//! Property-level guarantee for `IppvConfig::core_prune`: restricting
//! verifier universes to the (h−1)-core never changes any pipeline
//! output, on random graphs at h ∈ {2, 3, 4} and under both verifier
//! families. (The Figure 2 and community-graph pins live in the
//! workspace-level `core_prune` suite; this one hammers the space of
//! small adversarial graphs, where fringe trees and isolated vertices
//! fall out of the core.)

use lhcds_core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

fn graph_from_bits(n: usize, bits: &[bool]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    let mut idx = 0;
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if bits[idx] {
                b.add_edge(u, v);
            }
            idx += 1;
        }
    }
    b.build()
}

fn check_graph(g: &CsrGraph, h: usize) {
    for fast in [true, false] {
        let mk = |core_prune: bool| IppvConfig {
            fast_verify: fast,
            core_prune,
            ..IppvConfig::default()
        };
        let plain = top_k_lhcds(g, h, usize::MAX, &mk(false));
        let pruned = top_k_lhcds(g, h, usize::MAX, &mk(true));
        assert_eq!(
            plain.subgraphs, pruned.subgraphs,
            "h={h} fast={fast}: core pruning changed the output"
        );
    }
}

#[test]
fn fringe_trees_fall_out_of_the_core() {
    // K5 with a long pendant path and an isolated vertex: at h = 3 the
    // 2-core is exactly the K5, so the prune removes the entire fringe
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in u + 1..5 {
            b.add_edge(u, v);
        }
    }
    b.add_edge(4, 5).add_edge(5, 6).add_edge(6, 7);
    b.ensure_vertex(8);
    let g = b.build();
    for h in [2usize, 3, 4] {
        check_graph(&g, h);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse random graphs, h = 3 — most vertices miss the 2-core.
    #[test]
    fn core_prune_invisible_h3(bits in prop::collection::vec(prop::bool::weighted(0.35), 45)) {
        check_graph(&graph_from_bits(10, &bits), 3);
    }

    /// h = 2: the (h−1)-core is the 1-core, i.e. non-isolated vertices.
    #[test]
    fn core_prune_invisible_h2(bits in prop::collection::vec(prop::bool::weighted(0.3), 45)) {
        check_graph(&graph_from_bits(10, &bits), 2);
    }

    /// Dense random graphs, h = 4 against the 3-core.
    #[test]
    fn core_prune_invisible_h4(bits in prop::collection::vec(prop::bool::weighted(0.5), 45)) {
        check_graph(&graph_from_bits(10, &bits), 4);
    }
}
