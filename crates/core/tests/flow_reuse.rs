//! Flow-network reuse must be *invisible*: every output of the
//! verification stack — full decompositions, compact numbers,
//! per-threshold cut sides — is bit-identical across all three
//! `flow_reuse` tiers: `scratch` (one network per probe, the
//! historical cost model), `warm` (networks retained and warm-started
//! across monotone ρ-probes), and `ggt` (one never-reset flow with
//! retraction on decreases and principal-partition recursion, the
//! default). These suites pin that equivalence on fixtures and random
//! graphs at h ∈ {2, 3, 4}, alongside the work-counter contracts that
//! make the reuse tiers worth having.

use std::sync::Mutex;

use lhcds_core::compact::{local_instance, InstanceSolver};
use lhcds_core::density::dense_decomposition_opts;
use lhcds_core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds_core::verify::{verify_basic, BasicVerifier, Verdict};
use lhcds_core::FlowReuse;
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// The flow counters are process-wide; this file owns its process (an
/// integration-test binary), and every test serializes through this
/// mutex so no sibling test's flow work pollutes a measured delta.
static COUNTERS: Mutex<()> = Mutex::new(());

fn quiet_counters() -> std::sync::MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

fn graph_from_bits(n: usize, bits: &[bool]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    let mut idx = 0;
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if bits[idx] {
                b.add_edge(u, v);
            }
            idx += 1;
        }
    }
    b.build()
}

fn cfg(fast_verify: bool, flow_reuse: FlowReuse) -> IppvConfig {
    IppvConfig {
        fast_verify,
        flow_reuse,
        ..IppvConfig::default()
    }
}

/// Full-decomposition + ladder identity for one (graph, h), under both
/// verifier families and all three tiers, plus the network-count and
/// counter-accounting contracts.
fn check_reuse_invisible(g: &CsrGraph, h: usize) {
    for fast in [true, false] {
        let before = lhcds_flow::flow_stats();
        let scratch = top_k_lhcds(g, h, usize::MAX, &cfg(fast, FlowReuse::Scratch));
        let sd = lhcds_flow::flow_stats().since(&before);
        assert_eq!(
            sd.networks_built, sd.max_flow_invocations,
            "h={h} fast={fast}: scratch rebuilds one network per solve"
        );
        for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
            let before = lhcds_flow::flow_stats();
            let reused = top_k_lhcds(g, h, usize::MAX, &cfg(fast, tier));
            let rd = lhcds_flow::flow_stats().since(&before);
            assert_eq!(
                reused.subgraphs, scratch.subgraphs,
                "h={h} fast={fast} tier={tier}: decomposition diverged"
            );
            assert_eq!(
                rd.max_flow_invocations,
                rd.warm_solves + rd.retract_solves + rd.cold_solves(),
                "h={h} fast={fast} tier={tier}: every max-flow goes through the parametric layer"
            );
            assert!(
                rd.networks_built <= sd.networks_built,
                "h={h} fast={fast} tier={tier}: reuse built more networks than scratch — {rd:?} vs {sd:?}"
            );
            if tier == FlowReuse::Ggt {
                assert_eq!(
                    rd.infeasible_reset, 0,
                    "h={h} fast={fast}: ggt never resets a flow — {rd:?}"
                );
            }
        }
    }
    let cliques = lhcds_clique::CliqueSet::enumerate(g, h);
    let a = dense_decomposition_opts(g, &cliques, FlowReuse::Scratch);
    for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
        let b = dense_decomposition_opts(g, &cliques, tier);
        assert_eq!(
            a.levels, b.levels,
            "h={h} tier={tier}: ladder levels diverged"
        );
        assert_eq!(a.phi, b.phi, "h={h} tier={tier}: compact numbers diverged");
    }
}

/// One network per decomposition ladder, one per basic-verifier run:
/// the fine-grained counter contracts behind the asymptotic claim.
#[test]
fn ladders_and_basic_verifier_build_one_network_each() {
    let _quiet = quiet_counters();
    // K5 + pendant tail: a multi-probe Goldberg ladder
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in u + 1..5 {
            b.add_edge(u, v);
        }
    }
    b.add_edge(4, 5).add_edge(5, 6);
    let g = b.build();
    let cliques = lhcds_clique::CliqueSet::enumerate(&g, 3);
    let all: Vec<VertexId> = g.vertices().collect();
    let (inst, _) = local_instance(&cliques, &all);

    let before = lhcds_flow::flow_stats();
    let warm = InstanceSolver::with_reuse(inst.clone(), FlowReuse::Warm).densest_decomposition();
    let wd = lhcds_flow::flow_stats().since(&before);
    let before = lhcds_flow::flow_stats();
    let ggt = InstanceSolver::new(inst.clone()).densest_decomposition();
    let gd = lhcds_flow::flow_stats().since(&before);
    let before = lhcds_flow::flow_stats();
    let scratch =
        InstanceSolver::with_reuse(inst.clone(), FlowReuse::Scratch).densest_decomposition();
    let sd = lhcds_flow::flow_stats().since(&before);
    assert_eq!(warm, scratch);
    assert_eq!(ggt, scratch);
    assert_eq!(
        wd.networks_built, 1,
        "one network for the whole warm ladder"
    );
    assert!(wd.max_flow_invocations > 1);
    assert!(wd.warm_solves >= 1, "{wd:?}");
    assert_eq!(gd.networks_built, 1, "one network for the whole ggt walk");
    assert_eq!(gd.infeasible_reset, 0, "ggt never resets a flow: {gd:?}");
    assert_eq!(sd.networks_built, sd.max_flow_invocations);
    assert_eq!(
        wd.max_flow_invocations, sd.max_flow_invocations,
        "reuse changes construction work, never the probe schedule"
    );

    // the principal-partition recursion: still one network, and the
    // GGT-specific telemetry moves
    let before = lhcds_flow::flow_stats();
    let ladder = InstanceSolver::new(inst.clone()).ggt_ladder();
    let ld = lhcds_flow::flow_stats().since(&before);
    assert!(!ladder.is_empty());
    assert_eq!(ld.networks_built, 1, "one network for the whole recursion");
    assert!(ld.ggt_recursions >= 1, "{ld:?}");
    assert_eq!(ld.infeasible_reset, 0, "{ld:?}");

    // one BasicVerifier across candidates at several ρ: one network
    let candidates: [(&[VertexId], lhcds_core::Ratio); 3] = [
        (&[0, 1, 2, 3, 4], lhcds_core::Ratio::from_int(2)),
        (&[5, 6], lhcds_core::Ratio::zero()),
        (&[0, 1, 2], lhcds_core::Ratio::from_int(1)),
    ];
    for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
        let before = lhcds_flow::flow_stats();
        let mut shared = BasicVerifier::new(&g, &cliques, tier);
        let verdicts: Vec<Verdict> = candidates
            .iter()
            .map(|&(s, rho)| shared.verify(&g, s, rho))
            .collect();
        let delta = lhcds_flow::flow_stats().since(&before);
        assert_eq!(
            delta.networks_built, 1,
            "tier={tier}: one network for all candidates"
        );
        assert_eq!(delta.max_flow_invocations, candidates.len() as u64);
        for (&(s, rho), verdict) in candidates.iter().zip(&verdicts) {
            assert_eq!(
                *verdict,
                verify_basic(&g, &cliques, s, rho),
                "tier={tier} {s:?}@{rho}"
            );
        }
    }
}

#[test]
fn two_k5_fixtures_are_reuse_invariant() {
    let _quiet = quiet_counters();
    // disjoint: two LhCDSes; bridged: one (the union) — both shapes
    // drive the verifier down different paths (accepts, absorptions)
    for bridged in [false, true] {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        if bridged {
            b.add_edge(4, 5);
        }
        let g = b.build();
        for h in [2usize, 3, 4] {
            check_reuse_invisible(&g, h);
        }
    }
}

/// Per-threshold probes on a shared solver equal fresh solvers at every
/// rho of a mixed (non-monotone) schedule — the raw cut-side identity
/// underlying all higher-level equivalences. Both reuse tiers share one
/// solver: `warm` resets on the decreases, `ggt` retracts through them.
#[test]
fn mixed_threshold_schedule_matches_fresh_solvers() {
    let _quiet = quiet_counters();
    let mut b = GraphBuilder::new();
    for i in 0..6u32 {
        for j in i + 1..6 {
            if (i, j) != (0, 1) {
                b.add_edge(i, j);
            }
        }
    }
    b.add_edge(5, 6).add_edge(6, 7);
    let g = b.build();
    let cliques = lhcds_clique::CliqueSet::enumerate(&g, 3);
    let all: Vec<VertexId> = g.vertices().collect();
    let (inst, _) = local_instance(&cliques, &all);
    let schedule = [
        lhcds_core::Ratio::new(1, 3),
        lhcds_core::Ratio::from_int(2),
        lhcds_core::Ratio::new(13, 6), // up
        lhcds_core::Ratio::new(1, 2),  // down (reset under warm, retract under ggt)
        lhcds_core::Ratio::new(7, 4),  // up again
        lhcds_core::Ratio::zero(),
    ];
    for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
        let mut shared = InstanceSolver::with_reuse(inst.clone(), tier);
        for rho in schedule {
            let mut fresh = InstanceSolver::new(inst.clone());
            assert_eq!(
                shared.max_excess_set(rho),
                fresh.max_excess_set(rho),
                "tier={tier}: max_excess_set at {rho}"
            );
            let mut fresh = InstanceSolver::new(inst.clone());
            assert_eq!(
                shared.derive_compact(rho),
                fresh.derive_compact(rho),
                "tier={tier}: derive_compact at {rho}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random graphs, h = 3: pipeline + ladder reuse-invariance.
    #[test]
    fn reuse_invisible_h3(bits in prop::collection::vec(prop::bool::weighted(0.45), 45)) {
        let _quiet = quiet_counters();
        let g = graph_from_bits(10, &bits);
        check_reuse_invisible(&g, 3);
    }

    /// Random graphs, h = 2 (the classic LDS degeneration).
    #[test]
    fn reuse_invisible_h2(bits in prop::collection::vec(prop::bool::weighted(0.35), 36)) {
        let _quiet = quiet_counters();
        let g = graph_from_bits(9, &bits);
        check_reuse_invisible(&g, 2);
    }

    /// Random dense graphs, h = 4.
    #[test]
    fn reuse_invisible_h4(bits in prop::collection::vec(prop::bool::weighted(0.55), 45)) {
        let _quiet = quiet_counters();
        let g = graph_from_bits(10, &bits);
        check_reuse_invisible(&g, 4);
    }

    /// The solver-level ladder on random instances: one shared network
    /// against a fresh solver per call, across a whole forced-set
    /// progression (the dense-decomposition access pattern).
    #[test]
    fn next_density_level_ladder_matches_fresh(bits in prop::collection::vec(prop::bool::weighted(0.5), 36)) {
        let _quiet = quiet_counters();
        let g = graph_from_bits(9, &bits);
        let cliques = lhcds_clique::CliqueSet::enumerate(&g, 3);
        if cliques.is_empty() {
            return Ok(());
        }
        let all: Vec<VertexId> = g.vertices().collect();
        let (inst, _) = local_instance(&cliques, &all);
        let mut shared = InstanceSolver::new(inst.clone());
        let mut forced = vec![false; inst.n];
        loop {
            let from_shared = shared.next_density_level(&forced);
            let from_fresh = InstanceSolver::new(inst.clone()).next_density_level(&forced);
            prop_assert_eq!(&from_shared, &from_fresh);
            match from_shared {
                None => break,
                Some((_, level)) => {
                    for (f, l) in forced.iter_mut().zip(&level) {
                        *f |= l;
                    }
                }
            }
        }
    }
}
