//! The GGT principal-partition recursion against the brute-force
//! ladder: `InstanceSolver::ggt_ladder` (one never-reset flow, D&C on
//! min-cut sides) must reproduce exactly the `(density, level)` ladder
//! that rebuild-per-probe walking produces — on degenerate ladders
//! (single level, tied densities, clique-free instances), on
//! boundary-clique instances, and on random graphs at h ∈ {2, 3, 4}.
//!
//! The walk side runs at `FlowReuse::Scratch`, so every probe is a
//! fresh network and a cold max-flow: the two implementations share no
//! flow state whatsoever, only the instance.

use lhcds_core::compact::{local_instance, InstanceSolver, LocalInstance};
use lhcds_core::{FlowReuse, Ratio};
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

fn graph_from_bits(n: usize, bits: &[bool]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    let mut idx = 0;
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if bits[idx] {
                b.add_edge(u, v);
            }
            idx += 1;
        }
    }
    b.build()
}

fn complete(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Walks the marginal-density ladder probe-by-probe with a
/// rebuild-per-probe (scratch) solver — the brute-force reference.
fn walk_ladder(inst: &LocalInstance) -> Vec<(Ratio, Vec<bool>)> {
    let mut solver = InstanceSolver::with_reuse(inst, FlowReuse::Scratch);
    let mut forced = vec![false; inst.n];
    let mut out = Vec::new();
    while let Some((rho, level)) = solver.next_density_level(&forced) {
        for (f, &l) in forced.iter_mut().zip(&level) {
            *f = *f || l;
        }
        out.push((rho, level));
    }
    out
}

/// The positive-density prefix of a ladder (the walk stops before the
/// density-0 fringe; the raw GGT partition includes it as breakpoint-0
/// classes, which `dense_decomposition_opts` drops the same way).
fn positive(ladder: Vec<(Ratio, Vec<bool>)>) -> Vec<(Ratio, Vec<bool>)> {
    ladder
        .into_iter()
        .filter(|(rho, _)| *rho > Ratio::zero())
        .collect()
}

fn check_instance(inst: &LocalInstance) {
    let ggt = positive(InstanceSolver::new(inst.clone()).ggt_ladder());
    let walk = positive(walk_ladder(inst));
    assert_eq!(ggt, walk, "principal partition diverged from the walk");
}

fn check_graph(g: &CsrGraph, h: usize) {
    let cliques = lhcds_clique::CliqueSet::enumerate(g, h);
    let all: Vec<VertexId> = g.vertices().collect();
    let (inst, _) = local_instance(&cliques, &all);
    check_instance(&inst);
    // a strict-subset universe makes straddling cliques boundary
    // cliques, exercising the h·base/|inside| parametric slopes
    if g.n() >= 4 {
        let half: Vec<VertexId> = (0..g.n() as VertexId / 2).collect();
        let (inst, _) = local_instance(&cliques, &half);
        check_instance(&inst);
    }
}

#[test]
fn degenerate_single_level_ladders() {
    // complete graphs: the whole instance is one partition class, so
    // the recursion terminates after the first λ* probe pair
    for n in [3u32, 4, 5, 6] {
        for h in [2usize, 3] {
            check_graph(&complete(n), h);
        }
    }
}

#[test]
fn tied_densities_merge_into_one_level() {
    // two disjoint K4s: two components with *equal* marginal density —
    // one breakpoint, one two-component class; the ε-probe between the
    // tied candidates must not split them
    let mut b = GraphBuilder::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(base + i, base + j);
            }
        }
    }
    let g = b.build();
    for h in [2usize, 3, 4] {
        check_graph(&g, h);
    }
}

#[test]
fn clique_free_instances_have_empty_ladders() {
    // a path has no triangle: every class sits at density ≤ 0 and the
    // positive ladder is empty on both sides
    let mut b = GraphBuilder::new();
    for i in 0..5u32 {
        b.add_edge(i, i + 1);
    }
    let g = b.build();
    check_graph(&g, 3);
    check_graph(&g, 4);
}

#[test]
fn close_densities_straddle_the_epsilon_probe() {
    // K5 ⊔ (K5 − e): triangle densities 2 and 7/5 — with K5+pendant
    // tails the ladder gains near-coincident breakpoints whose
    // separating λ-interval is narrow, stressing the ε-probe bound
    let mut b = GraphBuilder::new();
    for base in [0u32, 5] {
        for i in 0..5 {
            for j in i + 1..5 {
                if (base, i, j) != (5, 0, 1) {
                    b.add_edge(base + i, base + j);
                }
            }
        }
    }
    b.add_edge(4, 10).add_edge(9, 11);
    let g = b.build();
    for h in [2usize, 3] {
        check_graph(&g, h);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random graphs, h = 3.
    #[test]
    fn ggt_matches_walk_h3(bits in prop::collection::vec(prop::bool::weighted(0.45), 45)) {
        check_graph(&graph_from_bits(10, &bits), 3);
    }

    /// Random graphs, h = 2 (the classic LDS ladder — many levels).
    #[test]
    fn ggt_matches_walk_h2(bits in prop::collection::vec(prop::bool::weighted(0.35), 45)) {
        check_graph(&graph_from_bits(10, &bits), 2);
    }

    /// Random dense graphs, h = 4.
    #[test]
    fn ggt_matches_walk_h4(bits in prop::collection::vec(prop::bool::weighted(0.55), 45)) {
        check_graph(&graph_from_bits(10, &bits), 4);
    }
}
