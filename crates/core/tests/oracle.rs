//! Exactness anchor: the IPPV pipeline must agree with the
//! definition-level brute-force oracle on random small graphs, for every
//! verifier configuration.

use lhcds_clique::Parallelism;
use lhcds_core::bruteforce::all_lhcds_bruteforce;
use lhcds_core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// Builds a random graph from a boolean edge matrix (upper triangle).
fn graph_from_bits(n: usize, bits: &[bool]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    let mut idx = 0;
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if bits[idx] {
                b.add_edge(u, v);
            }
            idx += 1;
        }
    }
    b.build()
}

fn check_graph(g: &CsrGraph, h: usize, cfg: &IppvConfig) {
    let expected = all_lhcds_bruteforce(g, h);
    let got = top_k_lhcds(g, h, usize::MAX, cfg);
    assert_eq!(
        got.subgraphs.len(),
        expected.len(),
        "h={h}, edges={:?}: pipeline found {:?}, oracle {:?}",
        g.edges().collect::<Vec<_>>(),
        got.subgraphs,
        expected
    );
    for (p, o) in got.subgraphs.iter().zip(&expected) {
        assert_eq!(p.density, o.density, "density mismatch");
        assert_eq!(p.vertices, o.vertices, "vertex set mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn pipeline_matches_oracle_h3(bits in prop::collection::vec(any::<bool>(), 45)) {
        // n = 10, 45 potential edges
        let g = graph_from_bits(10, &bits);
        check_graph(&g, 3, &IppvConfig::default());
    }

    #[test]
    fn pipeline_matches_oracle_h2(bits in prop::collection::vec(prop::bool::weighted(0.35), 36)) {
        let g = graph_from_bits(9, &bits);
        check_graph(&g, 2, &IppvConfig::default());
    }

    #[test]
    fn pipeline_matches_oracle_h4(bits in prop::collection::vec(prop::bool::weighted(0.55), 45)) {
        let g = graph_from_bits(10, &bits);
        check_graph(&g, 4, &IppvConfig::default());
    }

    #[test]
    fn basic_verifier_matches_oracle(bits in prop::collection::vec(any::<bool>(), 36)) {
        let g = graph_from_bits(9, &bits);
        let cfg = IppvConfig { fast_verify: false, ..IppvConfig::default() };
        check_graph(&g, 3, &cfg);
    }

    #[test]
    fn few_cp_iterations_still_exact(bits in prop::collection::vec(any::<bool>(), 36)) {
        // Exactness must not depend on CP convergence quality.
        let g = graph_from_bits(9, &bits);
        let cfg = IppvConfig { cp_iterations: 1, ..IppvConfig::default() };
        check_graph(&g, 3, &cfg);
    }

    #[test]
    fn many_cp_iterations_still_exact(bits in prop::collection::vec(prop::bool::weighted(0.45), 36)) {
        let g = graph_from_bits(9, &bits);
        let cfg = IppvConfig { cp_iterations: 120, ..IppvConfig::default() };
        check_graph(&g, 3, &cfg);
    }

    #[test]
    fn parallel_enumeration_matches_oracle(bits in prop::collection::vec(prop::bool::weighted(0.5), 45)) {
        // Exactness must not depend on the enumeration thread count:
        // multi-threaded runs face the oracle directly, and the full
        // decomposition must also be identical to the serial run's.
        let g = graph_from_bits(10, &bits);
        let serial = top_k_lhcds(&g, 3, usize::MAX, &IppvConfig::default());
        for t in [2usize, 4, 8] {
            let cfg = IppvConfig { parallelism: Parallelism::threads(t), ..IppvConfig::default() };
            check_graph(&g, 3, &cfg);
            let par = top_k_lhcds(&g, 3, usize::MAX, &cfg);
            prop_assert_eq!(&par.subgraphs, &serial.subgraphs, "threads = {}", t);
        }
    }

    #[test]
    fn top_k_prefix_matches_oracle(bits in prop::collection::vec(prop::bool::weighted(0.4), 45), k in 1usize..4) {
        let g = graph_from_bits(10, &bits);
        let expected = {
            let mut all = all_lhcds_bruteforce(&g, 3);
            all.truncate(k);
            all
        };
        let got = top_k_lhcds(&g, 3, k, &IppvConfig::default());
        prop_assert_eq!(got.subgraphs.len(), expected.len());
        for (p, o) in got.subgraphs.iter().zip(&expected) {
            prop_assert_eq!(p.density, o.density);
            prop_assert_eq!(&p.vertices, &o.vertices);
        }
    }
}

/// Dense regular structures with many exact ties — the worst case for
/// ordering and stability logic.
#[test]
fn tie_heavy_structures() {
    // four disjoint triangles: four LhCDSes all at density 1/3
    let mut b = GraphBuilder::new();
    for base in [0u32, 3, 6, 9] {
        b.add_edge(base, base + 1)
            .add_edge(base + 1, base + 2)
            .add_edge(base + 2, base);
    }
    let g = b.build();
    check_graph(&g, 3, &IppvConfig::default());

    // two K4s joined by one bridge: single LhCDS (the union is
    // 1-compact and connected)
    let mut b = GraphBuilder::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(base + i, base + j);
            }
        }
    }
    b.add_edge(3, 4);
    let g = b.build();
    check_graph(&g, 3, &IppvConfig::default());

    // chain of three K4s
    let mut b = GraphBuilder::new();
    for base in [0u32, 4, 8] {
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(base + i, base + j);
            }
        }
    }
    b.add_edge(3, 4).add_edge(7, 8);
    let g = b.build();
    check_graph(&g, 3, &IppvConfig::default());
}

/// Overlapping cliques: candidates that are self-densest but not
/// maximal exercise the superset-absorption path.
#[test]
fn overlapping_cliques_absorption() {
    // two K5s sharing one vertex
    let mut b = GraphBuilder::new();
    for vs in [[0u32, 1, 2, 3, 4], [4, 5, 6, 7, 8]] {
        for i in 0..5 {
            for j in i + 1..5 {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }
    let g = b.build();
    check_graph(&g, 3, &IppvConfig::default());
    check_graph(&g, 4, &IppvConfig::default());

    // K6 with a K5 sharing a triangle
    let mut b = GraphBuilder::new();
    for u in 0..6u32 {
        for v in u + 1..6 {
            b.add_edge(u, v);
        }
    }
    for vs in [[3u32, 4, 5, 6, 7]] {
        for i in 0..5 {
            for j in i + 1..5 {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }
    let g = b.build();
    check_graph(&g, 3, &IppvConfig::default());
}

mod phi_oracle {
    use super::*;
    use lhcds_core::bruteforce::compact_numbers_bruteforce;
    use lhcds_core::density::{compact_numbers, dense_decomposition};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(80))]

        /// The flow-based dense decomposition computes exactly the
        /// definition-level compact numbers.
        #[test]
        fn compact_numbers_match_bruteforce_h3(bits in prop::collection::vec(any::<bool>(), 36)) {
            let g = graph_from_bits(9, &bits);
            let exact = compact_numbers(&g, 3);
            let brute = compact_numbers_bruteforce(&g, 3);
            prop_assert_eq!(exact, brute);
        }

        #[test]
        fn compact_numbers_match_bruteforce_h2(bits in prop::collection::vec(prop::bool::weighted(0.4), 28)) {
            let g = graph_from_bits(8, &bits);
            let exact = compact_numbers(&g, 2);
            let brute = compact_numbers_bruteforce(&g, 2);
            prop_assert_eq!(exact, brute);
        }

        /// Levels strictly decrease, partition clique-covered vertices,
        /// and every LhCDS is fully inside one level at its density.
        #[test]
        fn decomposition_structure(bits in prop::collection::vec(prop::bool::weighted(0.5), 36)) {
            let g = graph_from_bits(9, &bits);
            let d = dense_decomposition(&g, 3);
            for w in d.levels.windows(2) {
                prop_assert!(w[0].density > w[1].density);
            }
            for s in all_lhcds_bruteforce(&g, 3) {
                for &v in &s.vertices {
                    prop_assert_eq!(d.phi[v as usize], s.density);
                }
            }
        }
    }
}
