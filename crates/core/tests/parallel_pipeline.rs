//! Serial-equivalence harness for the post-enumeration parallel layers
//! — the PR 2 clique-level harness (`lhcds-clique/tests/parallel.rs`)
//! extended to everything `--threads` now reaches: the speculative
//! candidate-verification wave, the threaded CP round scaling, and the
//! parallel GGT principal-partition recursion.
//!
//! The contract is byte-identity, not approximate agreement: at 1, 2,
//! 4, and 8 threads, across all three flow-reuse tiers, the full
//! pipeline output (`subgraphs`: members, exact densities, clique
//! counts) must equal the serial run's. Scheduling may change wall time
//! and the speculative work counters — never a result.

use lhcds_clique::Parallelism;
use lhcds_core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds_core::FlowReuse;
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TIERS: [FlowReuse; 3] = [FlowReuse::Scratch, FlowReuse::Warm, FlowReuse::Ggt];

fn cfg(flow_reuse: FlowReuse, parallelism: Parallelism) -> IppvConfig {
    IppvConfig {
        flow_reuse,
        parallelism,
        ..IppvConfig::default()
    }
}

/// Asserts the full-output equivalence contract on one graph.
fn assert_equivalent(g: &CsrGraph, h: usize) {
    for reuse in TIERS {
        let serial = top_k_lhcds(g, h, usize::MAX, &cfg(reuse, Parallelism::serial()));
        for t in THREAD_COUNTS {
            let par = top_k_lhcds(g, h, usize::MAX, &cfg(reuse, Parallelism::threads(t)));
            assert_eq!(
                par.subgraphs, serial.subgraphs,
                "reuse={reuse:?} threads={t} h={h}: parallel output diverged"
            );
        }
    }
}

fn figure2() -> CsrGraph {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../data/fixtures/figure2.txt");
    lhcds_graph::io::read_edge_list_file(&path).expect("figure2 fixture")
}

fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
    for i in 0..vs.len() {
        for j in i + 1..vs.len() {
            b.add_edge(vs[i], vs[j]);
        }
    }
}

/// The paper's running example, at the paper's h and off-h settings.
#[test]
fn figure2_all_tiers_and_thread_counts() {
    let g = figure2();
    for h in [2usize, 3, 4] {
        assert_equivalent(&g, h);
    }
}

/// Multi-candidate landscapes: several components of different density
/// keep the verification stack non-empty, so the speculative wave
/// actually engages (pinned below) and its commit order matters.
#[test]
fn multi_component_graphs() {
    // two disjoint K5s and a K4, plus a bridged pendant path
    let mut b = GraphBuilder::new();
    complete_on(&mut b, &[0, 1, 2, 3, 4]);
    complete_on(&mut b, &[5, 6, 7, 8, 9]);
    complete_on(&mut b, &[10, 11, 12, 13]);
    b.add_edge(13, 14).add_edge(14, 15);
    let g = b.build();
    for h in [2usize, 3, 4] {
        assert_equivalent(&g, h);
    }

    // the wave must have fired at least once on this shape: >1
    // component is pending whenever the first one is being verified
    let res = top_k_lhcds(
        &g,
        3,
        usize::MAX,
        &cfg(FlowReuse::Ggt, Parallelism::threads(4)),
    );
    assert!(
        res.stats.prefetched_decompositions >= 1,
        "speculative verification never engaged: {:?}",
        res.stats.prefetched_decompositions
    );
    let serial = top_k_lhcds(
        &g,
        3,
        usize::MAX,
        &cfg(FlowReuse::Ggt, Parallelism::serial()),
    );
    assert_eq!(
        serial.stats.prefetched_decompositions, 0,
        "serial runs must never speculate"
    );
}

/// Overlapping dense regions force candidate refinement (splits,
/// escalation) — the commit path where a stale speculative entry is a
/// miss, never a wrong answer.
#[test]
fn overlapping_cliques_refine_identically() {
    let mut b = GraphBuilder::new();
    complete_on(&mut b, &[0, 1, 2, 3, 4]);
    complete_on(&mut b, &[4, 5, 6, 7, 8]);
    complete_on(&mut b, &[8, 9, 10, 11]);
    let g = b.build();
    for h in [2usize, 3, 4, 5] {
        assert_equivalent(&g, h);
    }
}

fn graph_from_bits(n: usize, bits: &[bool]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    let mut idx = 0;
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if bits[idx] {
                b.add_edge(u, v);
            }
            idx += 1;
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random graphs: full equivalence at every tier and thread count.
    #[test]
    fn random_graphs_are_equivalent(bits in prop::collection::vec(prop::bool::weighted(0.4), 66)) {
        let g = graph_from_bits(12, &bits);
        for h in 2usize..=4 {
            assert_equivalent(&g, h);
        }
    }

    /// Denser graphs → deeper ladders and more refinement rounds.
    #[test]
    fn dense_random_graphs_are_equivalent(bits in prop::collection::vec(prop::bool::weighted(0.7), 45)) {
        let g = graph_from_bits(10, &bits);
        for h in 3usize..=5 {
            assert_equivalent(&g, h);
        }
    }

    /// Parallel runs are reproducible run-to-run: scheduling must not
    /// leak into any output field.
    #[test]
    fn parallel_runs_are_reproducible(bits in prop::collection::vec(prop::bool::weighted(0.45), 55)) {
        let g = graph_from_bits(11, &bits);
        let c = cfg(FlowReuse::Ggt, Parallelism::threads(4));
        let a = top_k_lhcds(&g, 3, usize::MAX, &c);
        let b = top_k_lhcds(&g, 3, usize::MAX, &c);
        prop_assert_eq!(a.subgraphs, b.subgraphs);
    }
}
