//! Built-in example graphs with known ground truth.
//!
//! * [`figure2_graph`] — a faithful reconstruction of the paper's
//!   Figure 2 worked example (20 vertices) with its exact compact
//!   numbers and LhCDS structure;
//! * [`harry_potter_like`] — a small labeled social network in the
//!   spirit of Figure 1 (a family clique and a villain group as the two
//!   densest communities);
//! * [`polbooks_like`] — a 105-vertex, 3-label co-purchase network
//!   standing in for Krebs' *books about US politics* (Figures 13/17).

use crate::gen::sbm;
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A graph whose vertices carry categorical labels (and optionally
/// display names).
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The graph.
    pub graph: CsrGraph,
    /// `labels[v]` = category index into `label_names`.
    pub labels: Vec<u32>,
    /// Category display names.
    pub label_names: Vec<String>,
    /// Optional per-vertex display names (empty when unnamed).
    pub vertex_names: Vec<String>,
}

/// The paper's Figure 2 example graph, reconstructed to satisfy every
/// property quoted in the text (vertex ids are paper ids minus one):
///
/// * `S1 = {11..=16}` (paper v12–v17): K6 minus two edges sharing
///   vertex 11 — 13 triangles, 6 four-cliques; the top-1 L3CDS with
///   density 13/6 and the top-2 L4CDS with density 1;
/// * `S2 = {1..=5}` (v2–v6): K5 — the top-2 L3CDS with density 2 and
///   the top-1 L4CDS with density 1 (φ₃ = 2 for all members, the
///   Figure 4 example);
/// * `S3 = {7..=10}` (v8–v11): a diamond — compact number 1/2, *not* an
///   LhCDS (it merges with S2 through the edge (5, 8));
/// * `{11, 17, 18, 19}` (v12, v18–v20): a K4, not an LhCDS (merges with
///   S1 through vertex 11). In this reconstruction v18–v20 get compact
///   number 4/3 — the K4 shares v12 with S1, so their union is
///   4/3-compact — where the paper's drawing shows 1; the exact wiring
///   of that corner is not recoverable from the text. Every compact
///   number the paper states explicitly (v1, v7 = 0; S2 = 2;
///   S3 = 1/2; S1 = 13/6) and all L3CDS/L4CDS rankings match.
/// * `0` (v1) and `6` (v7): triangle-free connectors with φ₃ = 0.
pub fn figure2_graph() -> CsrGraph {
    let mut b = GraphBuilder::new();
    // S2: K5 on {1..=5}
    for u in 1..=5u32 {
        for v in u + 1..=5 {
            b.add_edge(u, v);
        }
    }
    // v1 pendant
    b.add_edge(0, 1);
    // v7 path connector between S2 and S3
    b.add_edge(5, 6).add_edge(6, 7);
    // S3: diamond on {7, 8, 9, 10} (triangles {7,8,10} and {8,9,10})
    b.add_edge(7, 8).add_edge(7, 10).add_edge(8, 10);
    b.add_edge(8, 9).add_edge(9, 10);
    // pruning-example edges: (v6, v9) and (v11, v12)
    b.add_edge(5, 8).add_edge(10, 11);
    // S1: K6 on {11..=16} minus edges (11,12) and (11,13)
    for u in 11..=16u32 {
        for v in u + 1..=16 {
            if (u, v) == (11, 12) || (u, v) == (11, 13) {
                continue;
            }
            b.add_edge(u, v);
        }
    }
    // K4 on {11, 17, 18, 19}
    for set in [[11u32, 17, 18, 19]] {
        for i in 0..4 {
            for j in i + 1..4 {
                b.add_edge(set[i], set[j]);
            }
        }
    }
    b.build()
}

/// Index of the first vertex of the paper's `S1` in [`figure2_graph`].
pub const FIGURE2_S1: [VertexId; 6] = [11, 12, 13, 14, 15, 16];
/// The paper's `S2` in [`figure2_graph`].
pub const FIGURE2_S2: [VertexId; 5] = [1, 2, 3, 4, 5];
/// The paper's `S3` (diamond; *not* an LhCDS) in [`figure2_graph`].
pub const FIGURE2_S3: [VertexId; 4] = [7, 8, 9, 10];

/// A Figure 1-style social network: the Weasley family is a 9-clique,
/// the Death Eaters an 8-vertex near-clique, and assorted protagonists
/// connect the two loosely. Top-1 L3CDS = the family, top-2 = the
/// villain organization, mirroring the paper's motivating example.
pub fn harry_potter_like() -> LabeledGraph {
    let family = [
        "Ron", "Ginny", "Fred", "George", "Percy", "Charlie", "Bill", "Arthur", "Molly",
    ];
    let villains = [
        "Voldemort",
        "Bellatrix",
        "Lucius",
        "Narcissa",
        "Draco",
        "Snape",
        "Alecto",
        "Dolohov",
    ];
    let others = [
        "Harry",
        "Hermione",
        "Neville",
        "Luna",
        "Dumbledore",
        "McGonagall",
        "Lupin",
        "Sirius",
    ];
    let mut names: Vec<String> = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    for f in family {
        names.push(f.into());
        labels.push(0);
    }
    for v in villains {
        names.push(v.into());
        labels.push(1);
    }
    for o in others {
        names.push(o.into());
        labels.push(2);
    }
    let nf = family.len() as u32; // 9
    let nv = villains.len() as u32; // 8

    let mut b = GraphBuilder::new();
    // family: complete
    for u in 0..nf {
        for v in u + 1..nf {
            b.add_edge(u, v);
        }
    }
    // villains: complete minus a few edges (near-clique)
    for u in nf..nf + nv {
        for v in u + 1..nf + nv {
            if (u, v) == (nf + 1, nf + 6) || (u, v) == (nf + 3, nf + 7) {
                continue;
            }
            b.add_edge(u, v);
        }
    }
    let harry = nf + nv;
    let hermione = harry + 1;
    let neville = harry + 2;
    let luna = harry + 3;
    let dumbledore = harry + 4;
    let mcgonagall = harry + 5;
    let lupin = harry + 6;
    let sirius = harry + 7;
    // protagonists: a loose web
    for (u, v) in [
        (harry, hermione),
        (harry, 0),    // Ron
        (hermione, 0), // Ron
        (harry, 1),    // Ginny
        (harry, neville),
        (neville, luna),
        (harry, luna),
        (harry, dumbledore),
        (dumbledore, mcgonagall),
        (dumbledore, lupin),
        (lupin, sirius),
        (harry, sirius),
        (harry, nf + 5), // Snape
        (dumbledore, nf + 5),
        (hermione, neville),
    ] {
        b.add_edge(u, v);
    }
    LabeledGraph {
        graph: b.build(),
        labels,
        label_names: vec!["family".into(), "organization".into(), "others".into()],
        vertex_names: names,
    }
}

/// A 105-vertex, 3-community co-purchase network standing in for the
/// Krebs `polbooks` dataset (labels: liberal / conservative / neutral).
/// Each ideological community hides one denser sub-pocket so that
/// LhCDS discovery at growing `h` picks out increasingly clique-like
/// cores, as in the paper's Figure 13.
pub fn polbooks_like() -> LabeledGraph {
    let sizes = [43usize, 49, 13];
    let (base, labels) = sbm(&sizes, 0.13, 0.012, 0xB00C5);
    let mut b = GraphBuilder::new();
    b.ensure_vertex((base.n() - 1) as VertexId);
    b.extend_edges(base.edges());
    // dense pockets: 8 liberal books, 9 conservative books
    let mut r = ChaCha8Rng::seed_from_u64(0xB00C6);
    let liberal_pocket: Vec<VertexId> = (0..8).collect();
    let conservative_pocket: Vec<VertexId> = (43..52).collect();
    for pocket in [&liberal_pocket, &conservative_pocket] {
        for i in 0..pocket.len() {
            for j in i + 1..pocket.len() {
                if r.gen_bool(0.85) {
                    b.add_edge(pocket[i], pocket[j]);
                }
            }
        }
    }
    LabeledGraph {
        graph: b.build(),
        labels,
        label_names: vec!["liberal".into(), "conservative".into(), "neutral".into()],
        vertex_names: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_clique::{count_cliques, CliqueSet};

    #[test]
    fn figure2_has_twenty_vertices() {
        let g = figure2_graph();
        assert_eq!(g.n(), 20);
    }

    #[test]
    fn figure2_s1_has_thirteen_triangles_and_six_4cliques() {
        let g = figure2_graph();
        let sub = lhcds_graph::InducedSubgraph::new(&g, &FIGURE2_S1);
        assert_eq!(count_cliques(&sub.graph, 3), 13);
        assert_eq!(count_cliques(&sub.graph, 4), 6);
    }

    #[test]
    fn figure2_s2_is_k5() {
        let g = figure2_graph();
        let sub = lhcds_graph::InducedSubgraph::new(&g, &FIGURE2_S2);
        assert_eq!(sub.graph.m(), 10);
        assert_eq!(count_cliques(&sub.graph, 3), 10);
        assert_eq!(count_cliques(&sub.graph, 4), 5);
    }

    #[test]
    fn figure2_s3_is_a_diamond() {
        let g = figure2_graph();
        let sub = lhcds_graph::InducedSubgraph::new(&g, &FIGURE2_S3);
        assert_eq!(count_cliques(&sub.graph, 3), 2);
        assert_eq!(sub.graph.m(), 5);
    }

    #[test]
    fn figure2_v1_and_v7_are_triangle_free() {
        let g = figure2_graph();
        let cs = CliqueSet::enumerate(&g, 3);
        assert_eq!(cs.degree(0), 0);
        assert_eq!(cs.degree(6), 0);
    }

    #[test]
    fn harry_potter_family_is_a_k9() {
        let hp = harry_potter_like();
        let fam: Vec<VertexId> = (0..9).collect();
        let sub = lhcds_graph::InducedSubgraph::new(&hp.graph, &fam);
        assert_eq!(sub.graph.m(), 36);
        assert_eq!(hp.vertex_names.len(), hp.graph.n());
        assert_eq!(hp.labels.len(), hp.graph.n());
    }

    #[test]
    fn polbooks_has_105_vertices_and_three_labels() {
        let pb = polbooks_like();
        assert_eq!(pb.graph.n(), 105);
        assert_eq!(pb.label_names.len(), 3);
        let mut counts = [0usize; 3];
        for &l in &pb.labels {
            counts[l as usize] += 1;
        }
        assert_eq!(counts, [43, 49, 13]);
        // the planted pockets create triangles
        assert!(count_cliques(&pb.graph, 3) > 50);
    }

    #[test]
    fn builtins_are_deterministic() {
        assert_eq!(polbooks_like().graph, polbooks_like().graph);
        assert_eq!(figure2_graph(), figure2_graph());
        assert_eq!(harry_potter_like().graph, harry_potter_like().graph);
    }
}
