//! Binary on-disk cache of parsed graphs (CSR snapshots).
//!
//! Parsing a multi-gigabyte text edge list is an `O(text)` job that only
//! needs to happen once: afterwards the normalized CSR (plus its
//! rank → original-id table) is written as a compact binary snapshot
//! next to the source file, and every later load is a sequential binary
//! read — typically an order of magnitude smaller than the text and
//! with zero parsing work.
//!
//! # File format (version 1, little-endian)
//!
//! ```text
//! magic            8 bytes   b"LHCDSCSR"
//! version          u32       1
//! n                u64       vertex count
//! neighbor_count   u64       length of the neighbor slab (2·|E|)
//! id_count         u64       length of the original-id table (= n)
//! source_len       u64       byte length of the source text at cache time
//! source_mtime     u64       source mtime (ns since epoch, truncated)
//! checksum         u64       FNV-1a 64 over the payload bytes
//! payload:
//!   offsets        (n+1) × u64
//!   neighbors      neighbor_count × u32
//!   original_ids   id_count × u64
//! ```
//!
//! Loads verify the magic and version, check that the header's implied
//! payload length matches the file's actual size *before* allocating
//! (a corrupt header cannot provoke a huge allocation), verify the
//! checksum, then rebuild the graph through
//! [`CsrGraph::try_from_parts`] — so a cache file that survives the
//! checksum but encodes a structurally invalid graph is still rejected.
//! The recorded source length + mtime are a staleness guard:
//! [`load_or_build`] reparses when either no longer matches the source
//! file.
//!
//! The cache is also **self-healing**: a snapshot that fails any of the
//! checks above is quarantined to `FILE.corrupt-<i>` (bounded, see
//! [`quarantine_corrupt`]) before the rebuild publishes a clean file,
//! and every load first sweeps write-temporaries left behind by
//! crashed writers of *other* processes ([`sweep_stale_tmp`]). Both
//! paths emit events into the `lhcds-obs` ring.
//!
//! ```
//! use lhcds_data::cache::{load_or_build, CacheStatus};
//! use lhcds_data::ingest::EdgeListFormat;
//!
//! let dir = std::env::temp_dir().join("lhcds_cache_doc");
//! std::fs::remove_dir_all(&dir).ok(); // leftovers from an aborted run
//! std::fs::create_dir_all(&dir).unwrap();
//! let src = dir.join("tiny.txt");
//! std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
//!
//! let (first, s1) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
//! let (second, s2) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
//! assert_eq!(s1, CacheStatus::Built);
//! assert_eq!(s2, CacheStatus::Hit);
//! assert_eq!(first, second); // byte-identical CSR either way
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

use crate::ingest::{read_graph_file, EdgeListFormat};
use lhcds_graph::{CsrGraph, GraphError, RemappedGraph};

/// First 8 bytes of every cache file.
pub const CACHE_MAGIC: &[u8; 8] = b"LHCDSCSR";
/// Current cache format version.
pub const CACHE_VERSION: u32 = 1;

/// Total header size: magic + version + five `u64` fields + checksum.
const HEADER_LEN: u64 = 8 + 4 + 8 * 6;

/// Identity of a source file at a point in time — the cache's
/// staleness guard. Length alone would accept same-length in-place
/// edits, so the mtime (nanoseconds since epoch, truncated to `u64`;
/// only equality matters) is recorded too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStamp {
    /// Byte length of the source file.
    pub len: u64,
    /// Modification time, ns since the epoch (0 when unknown).
    pub mtime_ns: u64,
}

impl SourceStamp {
    /// Stamp for an unknown source (never matches a real file's stamp
    /// unless that file also reports zeroes).
    pub const UNKNOWN: SourceStamp = SourceStamp {
        len: 0,
        mtime_ns: 0,
    };

    /// Reads the current stamp of `path`.
    pub fn of(path: &Path) -> std::io::Result<SourceStamp> {
        let meta = std::fs::metadata(path)?;
        let mtime_ns = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_nanos() as u64);
        Ok(SourceStamp {
            len: meta.len(),
            mtime_ns,
        })
    }
}

/// Errors raised while writing or loading cache snapshots.
#[derive(Debug)]
pub enum CacheError {
    /// Underlying file I/O failed (includes short files, which surface
    /// as unexpected-EOF reads).
    Io(std::io::Error),
    /// The file does not start with [`CACHE_MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The header's implied payload size disagrees with the file's
    /// actual size — truncated, padded, or a corrupted header.
    SizeMismatch {
        /// Payload bytes the header implies.
        expected: u128,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload bytes do not match the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The payload passed the checksum but does not describe a valid
    /// graph, or the source text failed to parse during a rebuild.
    Graph(GraphError),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache i/o error: {e}"),
            CacheError::BadMagic => write!(f, "not a lhcds cache file (bad magic)"),
            CacheError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported cache version {v} (this build reads {CACHE_VERSION})"
                )
            }
            CacheError::SizeMismatch { expected, actual } => write!(
                f,
                "cache payload size mismatch (header implies {expected} bytes, file holds \
                 {actual}) — file is truncated or its header is corrupt"
            ),
            CacheError::ChecksumMismatch { expected, actual } => write!(
                f,
                "cache checksum mismatch (expected {expected:#018x}, got {actual:#018x}) — \
                 file is corrupt"
            ),
            CacheError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            CacheError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<GraphError> for CacheError {
    fn from(e: GraphError) -> Self {
        // Parser I/O errors stay I/O errors; everything else is a graph problem.
        match e {
            GraphError::Io(io) => CacheError::Io(io),
            other => CacheError::Graph(other),
        }
    }
}

/// How [`load_or_build`] obtained the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A valid, fresh cache file was loaded; the text was never touched.
    Hit,
    /// No cache existed: the text was parsed and a snapshot written.
    Built,
    /// A cache existed but was stale/corrupt/unreadable: reparsed and
    /// rewritten.
    Rebuilt,
    /// The text was parsed but the snapshot could not be written (e.g.
    /// a read-only directory) — the graph is still fully usable, the
    /// next load just parses again.
    Uncached,
}

impl CacheStatus {
    /// Stable lowercase name (`hit` / `built` / `rebuilt` / `uncached`)
    /// for event logs and machine-readable surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Built => "built",
            CacheStatus::Rebuilt => "rebuilt",
            CacheStatus::Uncached => "uncached",
        }
    }
}

/// A loaded cache snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedGraph {
    /// The graph plus its rank → original-id table.
    pub remapped: RemappedGraph,
    /// Length + mtime of the source text when the snapshot was written.
    pub source: SourceStamp,
}

/// Default cache location for a source file: the same path with
/// `.csrcache` appended (`web-Stanford.txt` → `web-Stanford.txt.csrcache`).
pub fn cache_path_for(source: &Path) -> PathBuf {
    let mut name = source
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(".csrcache");
    source.with_file_name(name)
}

/// FNV-1a 64-bit running checksum (shared with the `LHCDSIDX` sibling
/// format in [`crate::index_cache`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Bound on preserved corrupt snapshots per cache path: quarantine
/// slots `FILE.corrupt-0` … `FILE.corrupt-3`. Past that the damaged
/// file is deleted instead — a flapping disk must not grow an unbounded
/// museum of corruption.
pub const MAX_QUARANTINE: u32 = 4;

/// Whether `e` means the cache *file itself* is damaged — as opposed to
/// transient I/O trouble (don't touch the file, it may be fine) or
/// version skew (a newer build may still read it).
fn is_corruption(e: &CacheError) -> bool {
    match e {
        CacheError::BadMagic
        | CacheError::SizeMismatch { .. }
        | CacheError::ChecksumMismatch { .. }
        | CacheError::Graph(_) => true,
        // a short read means truncation — that is corruption too
        CacheError::Io(io) => io.kind() == std::io::ErrorKind::UnexpectedEof,
        CacheError::UnsupportedVersion(_) => false,
    }
}

/// Moves a damaged cache file out of the way before a rebuild: renamed
/// to `FILE.corrupt-<i>` for the first free `i` below
/// [`MAX_QUARANTINE`], so the rebuild publishes a clean snapshot while
/// the corrupt bytes stay on disk for diagnosis. With every slot
/// taken, the file is deleted instead. Errors that are not corruption
/// (see above) leave the file alone. Whenever the file is moved or
/// removed, a `layer` event lands in the observability ring; returns
/// the quarantine path when one was created.
pub fn quarantine_corrupt(path: &Path, layer: &'static str, error: &CacheError) -> Option<PathBuf> {
    if !is_corruption(error) {
        return None;
    }
    let mut dest = None;
    for i in 0..MAX_QUARANTINE {
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(".corrupt-{i}"));
        let candidate = PathBuf::from(name);
        if !candidate.exists() {
            if std::fs::rename(path, &candidate).is_ok() {
                dest = Some(candidate);
            }
            break;
        }
    }
    if dest.is_none() {
        // quarantine full (or the rename failed): plain removal still
        // clears the way; the rebuild's atomic rename replaces the rest
        std::fs::remove_file(path).ok();
    }
    lhcds_obs::event(layer, || match &dest {
        Some(q) => format!(
            "quarantined {} -> {} ({error})",
            path.display(),
            q.display()
        ),
        None => format!("quarantine full; removed {} ({error})", path.display()),
    });
    dest
}

/// Removes leftover write-temporaries (`FILE.tmp<pid>.<seq>`) from
/// *other* processes next to `path` — debris from writers that crashed
/// between `File::create` and the publishing rename. This process's
/// own tmp files are left alone: another thread may be mid-write.
/// Returns the number of files removed; each removal is an event in
/// the observability ring.
pub fn sweep_stale_tmp(path: &Path) -> usize {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Some(name) = path.file_name().and_then(|s| s.to_str()) else {
        return 0;
    };
    let prefix = format!("{name}.tmp");
    let me = std::process::id();
    let Ok(entries) = std::fs::read_dir(&parent) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let fname = entry.file_name();
        let Some(fname) = fname.to_str() else {
            continue;
        };
        let Some(rest) = fname.strip_prefix(&prefix) else {
            continue;
        };
        // rest is "<pid>.<seq>"; an unparseable pid means the file is
        // not ours to judge — leave it
        let Some(pid) = rest.split('.').next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if pid == me {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
            lhcds_obs::event("cache-sweep", || {
                format!("removed stale tmp {}", parent.join(fname).display())
            });
        }
    }
    removed
}

/// Returns a tmp path next to `path` that no other writer — in this
/// process or another — is using. The process id alone is not enough:
/// two *threads* racing [`write_cache`] on the same target would share
/// a pid, interleave writes into one tmp file, and the first rename
/// could publish the other thread's half-written bytes. A process-wide
/// counter disambiguates threads; the pid disambiguates processes.
pub(crate) fn unique_tmp_path(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp{}.{}", std::process::id(), seq));
    PathBuf::from(tmp)
}

fn payload_bytes(g: &RemappedGraph) -> Vec<u8> {
    let (offsets, neighbors) = g.graph.as_parts();
    let mut out =
        Vec::with_capacity(offsets.len() * 8 + neighbors.len() * 4 + g.original_ids.len() * 8);
    for &o in offsets {
        out.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &v in neighbors {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &id in &g.original_ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

/// Writes a cache snapshot of `g` to `path`.
///
/// `source` should be the [`SourceStamp`] of the text file the graph
/// was parsed from ([`SourceStamp::UNKNOWN`] when there is none);
/// [`load_or_build`] uses it to detect a replaced or edited source.
///
/// The snapshot is written to a writer-unique temporary file (pid +
/// process-wide sequence number) and renamed into place, so concurrent writers
/// — other processes *or* other threads of this one — and crashes
/// mid-write can never publish a torn file at `path`: the last
/// completed rename wins, and every completed rename is a whole file.
pub fn write_cache(path: &Path, g: &RemappedGraph, source: SourceStamp) -> Result<(), CacheError> {
    let payload = payload_bytes(g);
    let mut checksum = Fnv1a::new();
    checksum.update(&payload);

    let tmp = unique_tmp_path(path);
    let write = || -> Result<(), CacheError> {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(CACHE_MAGIC)?;
        w.write_all(&CACHE_VERSION.to_le_bytes())?;
        w.write_all(&(g.graph.n() as u64).to_le_bytes())?;
        let (_, neighbors) = g.graph.as_parts();
        w.write_all(&(neighbors.len() as u64).to_le_bytes())?;
        w.write_all(&(g.original_ids.len() as u64).to_le_bytes())?;
        w.write_all(&source.len.to_le_bytes())?;
        w.write_all(&source.mtime_ns.to_le_bytes())?;
        w.write_all(&checksum.finish().to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    };
    write().inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32, CacheError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64, CacheError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Loads a cache snapshot, verifying magic, version, payload size,
/// checksum, and the structural CSR invariants (via
/// [`CsrGraph::try_from_parts`]).
pub fn read_cache(path: &Path) -> Result<CachedGraph, CacheError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != CACHE_MAGIC {
        return Err(CacheError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != CACHE_VERSION {
        return Err(CacheError::UnsupportedVersion(version));
    }
    let n64 = read_u64(&mut r)?;
    let neighbor_count64 = read_u64(&mut r)?;
    let id_count64 = read_u64(&mut r)?;
    let source_len = read_u64(&mut r)?;
    let source_mtime = read_u64(&mut r)?;
    let expected_checksum = read_u64(&mut r)?;

    // The header's implied payload length must match the file's actual
    // size exactly — checked in u128 BEFORE any allocation, so a
    // corrupted header can only produce an error, never an OOM abort.
    let implied: u128 =
        (u128::from(n64) + 1) * 8 + u128::from(neighbor_count64) * 4 + u128::from(id_count64) * 8;
    let available = file_len.saturating_sub(HEADER_LEN);
    if implied != u128::from(available) {
        return Err(CacheError::SizeMismatch {
            expected: implied,
            actual: available,
        });
    }
    let (n, neighbor_count, id_count) =
        (n64 as usize, neighbor_count64 as usize, id_count64 as usize);
    let mut payload = vec![0u8; implied as usize];
    r.read_exact(&mut payload)?;
    // deterministic fault injection: a flipped payload byte exercises
    // the checksum → quarantine → rebuild path end to end
    if lhcds_obs::fault::should_fire(lhcds_obs::fault::FaultPoint::CacheCorrupt) {
        let mid = payload.len() / 2;
        if let Some(b) = payload.get_mut(mid) {
            *b ^= 0xFF;
        }
    }

    let mut checksum = Fnv1a::new();
    checksum.update(&payload);
    let actual = checksum.finish();
    if actual != expected_checksum {
        return Err(CacheError::ChecksumMismatch {
            expected: expected_checksum,
            actual,
        });
    }

    let mut at = 0usize;
    let mut take = |len: usize| {
        let s = &payload[at..at + len];
        at += len;
        s
    };
    let offsets: Vec<usize> = take((n + 1) * 8)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as usize)
        .collect();
    let neighbors: Vec<u32> = take(neighbor_count * 4)
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    let original_ids: Vec<u64> = take(id_count * 8)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();

    let graph = CsrGraph::try_from_parts(offsets, neighbors).map_err(CacheError::Graph)?;
    if original_ids.len() != graph.n() {
        return Err(CacheError::Graph(GraphError::InvalidCsr(
            "original-id table length must equal the vertex count".into(),
        )));
    }
    if original_ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CacheError::Graph(GraphError::InvalidCsr(
            "original-id table must be strictly ascending".into(),
        )));
    }
    Ok(CachedGraph {
        remapped: RemappedGraph {
            graph,
            original_ids,
        },
        source: SourceStamp {
            len: source_len,
            mtime_ns: source_mtime,
        },
    })
}

/// Loads `source` through the cache: a valid, fresh snapshot (at `cache`
/// or, when `None`, at [`cache_path_for`]`(source)`) is loaded directly;
/// otherwise the text is parsed and a snapshot written for next time.
///
/// Only an unreadable/corrupt/stale *cache* triggers a rebuild — errors
/// from parsing the source text itself are always propagated. A cache
/// that cannot be *written* (read-only directory) is not an error
/// either: the parsed graph is returned with [`CacheStatus::Uncached`].
pub fn load_or_build(
    source: &Path,
    format: EdgeListFormat,
    cache: Option<&Path>,
) -> Result<(RemappedGraph, CacheStatus), CacheError> {
    let cache_path = cache
        .map(Path::to_path_buf)
        .unwrap_or_else(|| cache_path_for(source));
    let stamp = SourceStamp::of(source)?;

    let mut status = CacheStatus::Built;
    sweep_stale_tmp(&cache_path);
    if cache_path.exists() {
        match read_cache(&cache_path) {
            Ok(cached) if cached.source == stamp => {
                lhcds_obs::event("graph-cache", || format!("hit {}", cache_path.display()));
                return Ok((cached.remapped, CacheStatus::Hit));
            }
            // stale (source replaced/edited): reparse and overwrite
            Ok(_) => status = CacheStatus::Rebuilt,
            // damaged: move the corrupt bytes out of the way (bounded
            // quarantine, for diagnosis), then reparse
            Err(e) => {
                quarantine_corrupt(&cache_path, "graph-cache", &e);
                status = CacheStatus::Rebuilt;
            }
        }
    }

    let remapped = read_graph_file(source, format)?;
    if write_cache(&cache_path, &remapped, stamp).is_err() {
        status = CacheStatus::Uncached;
    }
    lhcds_obs::event("graph-cache", || {
        format!("{} {}", status.as_str(), cache_path.display())
    });
    Ok((remapped, status))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lhcds_cache_unit").join(name);
        // leftovers from an aborted previous run must not poison this one
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> RemappedGraph {
        CsrGraph::from_edge_stream([(10u64, 20u64), (20, 30), (30, 10), (30, 99)].map(Ok)).unwrap()
    }

    #[test]
    fn cache_path_appends_extension() {
        assert_eq!(
            cache_path_for(Path::new("/data/web.txt")),
            PathBuf::from("/data/web.txt.csrcache")
        );
    }

    #[test]
    fn write_read_round_trip_is_identity() {
        let dir = tmp("round_trip");
        let path = dir.join("g.csrcache");
        let g = sample();
        let stamp = SourceStamp {
            len: 123,
            mtime_ns: 456,
        };
        write_cache(&path, &g, stamp).unwrap();
        let cached = read_cache(&path).unwrap();
        assert_eq!(cached.remapped, g);
        assert_eq!(cached.source, stamp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let dir = tmp("magic");
        let path = dir.join("g.csrcache");
        std::fs::write(&path, b"NOTACSRX________").unwrap();
        assert!(matches!(read_cache(&path), Err(CacheError::BadMagic)));

        let mut bytes = Vec::new();
        bytes.extend_from_slice(CACHE_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 48]);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_cache(&path),
            Err(CacheError::UnsupportedVersion(99))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absurd_header_counts_error_without_allocating() {
        let dir = tmp("absurd_header");
        let path = dir.join("g.csrcache");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CACHE_MAGIC);
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        // n = 2^50 vertices: implied payload is petabytes; the size
        // check must reject it before any allocation happens
        bytes.extend_from_slice(&(1u64 << 50).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 40]); // remaining header fields
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_cache(&path),
            Err(CacheError::SizeMismatch { .. })
        ));
        // n = u64::MAX must not overflow the implied-size arithmetic
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CACHE_MAGIC);
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 40]);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_cache(&path),
            Err(CacheError::SizeMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_build_hits_then_rebuilds_on_source_change() {
        let dir = tmp("lifecycle");
        let src = dir.join("g.txt");
        std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();

        let (g1, s1) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s1, CacheStatus::Built);
        let (g2, s2) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(g1, g2);

        // replace the source with a longer file: stale cache is rebuilt
        std::fs::write(&src, "0 1\n1 2\n2 0\n0 3\n").unwrap();
        let (g3, s3) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s3, CacheStatus::Rebuilt);
        assert_eq!(g3.graph.m(), 4);
        let (_, s4) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s4, CacheStatus::Hit);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_length_edit_is_detected_via_mtime() {
        let dir = tmp("mtime");
        let src = dir.join("g.txt");
        std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
        let (_, s1) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s1, CacheStatus::Built);

        // same byte length, different content; force a distinct mtime so
        // the test does not depend on filesystem timestamp granularity
        std::fs::write(&src, "0 1\n1 3\n3 0\n").unwrap();
        let f = File::options().append(true).open(&src).unwrap();
        f.set_modified(std::time::SystemTime::now() + std::time::Duration::from_secs(2))
            .unwrap();

        let (g, s2) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s2, CacheStatus::Rebuilt, "same-length edit must invalidate");
        assert!(g
            .graph
            .has_edge(g.rank_of(1).unwrap(), g.rank_of(3).unwrap()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_cache_degrades_instead_of_failing() {
        let dir = tmp("unwritable");
        let src = dir.join("g.txt");
        std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
        // cache path inside a directory that does not exist: the write
        // fails, but the parse result must still come back
        let bad_cache = dir.join("no-such-subdir").join("g.csrcache");
        let (g, status) = load_or_build(&src, EdgeListFormat::Auto, Some(&bad_cache)).unwrap();
        assert_eq!(status, CacheStatus::Uncached);
        assert_eq!(g.graph.m(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
