//! Registry of named datasets mirroring the paper's Table 2.
//!
//! The original SNAP / Network Repository downloads are unavailable
//! offline, so each entry generates a *seeded synthetic stand-in* with
//! the same abbreviation: a sparse scale-free background plus planted
//! dense communities (the structure LhCDS discovery probes). Sizes are
//! at or below the originals — the largest graphs are scaled to a
//! laptop budget — and each spec records the paper's original `|V|` and
//! `|E|` so harness output can show the substitution explicitly.

use crate::gen::planted_communities;
use lhcds_graph::CsrGraph;

/// A named dataset recipe.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Full name used in the paper.
    pub name: &'static str,
    /// Table 2 abbreviation (HA, GQ, …).
    pub abbr: &'static str,
    /// `|V|` of the paper's original dataset.
    pub paper_n: usize,
    /// `|E|` of the paper's original dataset.
    pub paper_m: usize,
    /// Background size of the stand-in.
    pub n: usize,
    /// Barabási–Albert attachment degree of the background.
    pub ba_attach: usize,
    /// Planted dense communities `(size, p_intra)`.
    pub communities: &'static [(usize, f64)],
    /// Generator seed.
    pub seed: u64,
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The recipe that produced the graph.
    pub spec: DatasetSpec,
    /// The generated graph.
    pub graph: CsrGraph,
}

impl DatasetSpec {
    /// Generates the stand-in graph.
    pub fn generate(&self) -> Dataset {
        Dataset {
            spec: self.clone(),
            graph: planted_communities(self.n, self.ba_attach, self.communities, self.seed),
        }
    }

    /// Generates a reduced-size variant (`scale ∈ (0, 1]` shrinks the
    /// background; communities are kept so the LhCDS structure
    /// survives). Used by the Criterion benches to stay within budget.
    pub fn generate_scaled(&self, scale: f64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0);
        let n = ((self.n as f64 * scale) as usize).max(64);
        Dataset {
            spec: self.clone(),
            graph: planted_communities(n, self.ba_attach, self.communities, self.seed),
        }
    }
}

/// Community blueprints shared between related datasets.
const SOCIAL_POCKETS: &[(usize, f64)] = &[
    (24, 0.9),
    (18, 0.85),
    (16, 0.8),
    (14, 0.8),
    (12, 0.85),
    (12, 0.75),
    (10, 0.9),
    (10, 0.8),
];
const COLLAB_POCKETS: &[(usize, f64)] = &[
    (16, 0.95),
    (13, 0.95),
    (11, 0.9),
    (10, 0.9),
    (9, 0.95),
    (8, 0.95),
    (8, 0.9),
    (7, 1.0),
];
const WEB_POCKETS: &[(usize, f64)] = &[(14, 0.9), (10, 0.85), (8, 0.9), (7, 0.95)];
const SPARSE_POCKETS: &[(usize, f64)] = &[(10, 0.8), (9, 0.8), (8, 0.85), (7, 0.9), (7, 0.85)];

/// The full Table 2 registry (15 datasets, paper order).
pub fn registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "soc-hamsterster",
            abbr: "HA",
            paper_n: 2_426,
            paper_m: 16_630,
            n: 2_400,
            ba_attach: 5,
            communities: SOCIAL_POCKETS,
            seed: 0xA001,
        },
        DatasetSpec {
            name: "CA-GrQc",
            abbr: "GQ",
            paper_n: 5_242,
            paper_m: 14_484,
            n: 5_200,
            ba_attach: 2,
            communities: COLLAB_POCKETS,
            seed: 0xA002,
        },
        DatasetSpec {
            name: "fb-pages-politician",
            abbr: "PP",
            paper_n: 5_908,
            paper_m: 41_706,
            n: 5_900,
            ba_attach: 6,
            communities: SOCIAL_POCKETS,
            seed: 0xA003,
        },
        DatasetSpec {
            name: "fb-pages-company",
            abbr: "PC",
            paper_n: 14_113,
            paper_m: 52_126,
            n: 14_000,
            ba_attach: 3,
            communities: SOCIAL_POCKETS,
            seed: 0xA004,
        },
        DatasetSpec {
            name: "web-webbase-2001",
            abbr: "WB",
            paper_n: 16_062,
            paper_m: 25_593,
            n: 16_000,
            ba_attach: 1,
            communities: WEB_POCKETS,
            seed: 0xA005,
        },
        DatasetSpec {
            name: "CA-CondMat",
            abbr: "CM",
            paper_n: 23_133,
            paper_m: 93_439,
            n: 23_000,
            ba_attach: 3,
            communities: COLLAB_POCKETS,
            seed: 0xA006,
        },
        DatasetSpec {
            name: "soc-epinions",
            abbr: "EP",
            paper_n: 26_588,
            paper_m: 100_120,
            n: 26_000,
            ba_attach: 3,
            communities: SOCIAL_POCKETS,
            seed: 0xA007,
        },
        DatasetSpec {
            name: "Email-Enron",
            abbr: "EN",
            paper_n: 36_692,
            paper_m: 183_831,
            n: 36_000,
            ba_attach: 4,
            communities: SOCIAL_POCKETS,
            seed: 0xA008,
        },
        DatasetSpec {
            name: "loc-gowalla",
            abbr: "GW",
            paper_n: 196_591,
            paper_m: 950_327,
            n: 60_000,
            ba_attach: 4,
            communities: SOCIAL_POCKETS,
            seed: 0xA009,
        },
        DatasetSpec {
            name: "DBLP",
            abbr: "DB",
            paper_n: 317_080,
            paper_m: 1_049_866,
            n: 80_000,
            ba_attach: 3,
            communities: COLLAB_POCKETS,
            seed: 0xA00A,
        },
        DatasetSpec {
            name: "Amazon",
            abbr: "AM",
            paper_n: 334_863,
            paper_m: 925_872,
            n: 80_000,
            ba_attach: 2,
            communities: SPARSE_POCKETS,
            seed: 0xA00B,
        },
        DatasetSpec {
            name: "soc-youtube",
            abbr: "YT",
            paper_n: 495_957,
            paper_m: 1_936_748,
            n: 100_000,
            ba_attach: 3,
            communities: SOCIAL_POCKETS,
            seed: 0xA00C,
        },
        DatasetSpec {
            name: "soc-lastfm",
            abbr: "LF",
            paper_n: 1_191_805,
            paper_m: 4_519_330,
            n: 120_000,
            ba_attach: 3,
            communities: SOCIAL_POCKETS,
            seed: 0xA00D,
        },
        DatasetSpec {
            name: "soc-flixster",
            abbr: "FX",
            paper_n: 2_523_386,
            paper_m: 7_918_801,
            n: 140_000,
            ba_attach: 3,
            communities: SOCIAL_POCKETS,
            seed: 0xA00E,
        },
        DatasetSpec {
            name: "soc-wiki-talk",
            abbr: "WT",
            paper_n: 2_394_385,
            paper_m: 4_659_565,
            n: 140_000,
            ba_attach: 2,
            communities: SPARSE_POCKETS,
            seed: 0xA00F,
        },
    ]
}

/// Looks a spec up by its Table 2 abbreviation.
pub fn by_abbr(abbr: &str) -> Option<DatasetSpec> {
    registry().into_iter().find(|s| s.abbr == abbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2_roster() {
        let r = registry();
        assert_eq!(r.len(), 15);
        let abbrs: Vec<&str> = r.iter().map(|s| s.abbr).collect();
        assert_eq!(
            abbrs,
            vec![
                "HA", "GQ", "PP", "PC", "WB", "CM", "EP", "EN", "GW", "DB", "AM", "YT", "LF", "FX",
                "WT"
            ]
        );
        // stand-ins never exceed the originals
        for s in &r {
            assert!(s.n <= s.paper_n, "{} oversized", s.abbr);
        }
    }

    #[test]
    fn lookup_by_abbr() {
        assert_eq!(by_abbr("HA").unwrap().name, "soc-hamsterster");
        assert!(by_abbr("XX").is_none());
    }

    #[test]
    fn small_dataset_generates_with_triangles() {
        let d = by_abbr("HA").unwrap().generate();
        assert_eq!(
            d.graph.n(),
            2_400 + SOCIAL_POCKETS.iter().map(|c| c.0).sum::<usize>()
        );
        assert!(d.graph.m() > 10_000);
        assert!(lhcds_clique::count_cliques(&d.graph, 3) > 1_000);
    }

    #[test]
    fn scaled_generation_shrinks_background() {
        let spec = by_abbr("CM").unwrap();
        let small = spec.generate_scaled(0.05);
        assert!(small.graph.n() < spec.n / 10);
        // pockets survive scaling
        assert!(lhcds_clique::count_cliques(&small.graph, 4) > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_abbr("GQ").unwrap();
        assert_eq!(
            spec.generate_scaled(0.1).graph,
            spec.generate_scaled(0.1).graph
        );
    }
}
