//! Seeded synthetic graph generators.
//!
//! All generators take an explicit `seed` and run on `ChaCha8Rng`, so
//! every dataset in the experiment harness is bit-for-bit reproducible
//! across platforms and `rand` upgrades.

use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)` via geometric edge skipping (`O(n + m)`).
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex((n - 1) as VertexId);
    }
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    let mut r = rng(seed);
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // iterate potential edges in lexicographic order, skipping
    // geometrically distributed gaps
    let total = n * (n - 1) / 2;
    let log1p = (1.0 - p).ln();
    let mut idx: f64 = -1.0;
    loop {
        let u: f64 = r.gen_range(f64::EPSILON..1.0);
        idx += 1.0 + (u.ln() / log1p).floor();
        if idx >= total as f64 {
            break;
        }
        let k = idx as usize;
        // unrank k -> (i, j), i < j
        let (i, j) = unrank_edge(n, k);
        b.add_edge(i as VertexId, j as VertexId);
    }
    b.build()
}

/// Maps a linear index in `0..n(n-1)/2` to the k-th pair `(i, j)`,
/// `i < j`, in lexicographic order.
fn unrank_edge(n: usize, k: usize) -> (usize, usize) {
    // row i holds (n - 1 - i) pairs
    let mut i = 0usize;
    let mut rem = k;
    loop {
        let row = n - 1 - i;
        if rem < row {
            return (i, i + 1 + rem);
        }
        rem -= row;
        i += 1;
    }
}

/// Uniform `G(n, m)`: exactly `m` distinct edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let total = if n < 2 { 0 } else { n * (n - 1) / 2 };
    assert!(m <= total, "m exceeds the number of possible edges");
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex((n - 1) as VertexId);
    }
    let mut r = rng(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    while chosen.len() < m {
        let k = r.gen_range(0..total);
        if chosen.insert(k) {
            let (i, j) = unrank_edge(n, k);
            b.add_edge(i as VertexId, j as VertexId);
        }
    }
    b.build()
}

/// Stochastic block model: `sizes[c]` vertices per block, intra-block
/// edge probability `p_in`, inter-block `p_out`. Returns the graph and
/// per-vertex block labels.
pub fn sbm(sizes: &[usize], p_in: f64, p_out: f64, seed: u64) -> (CsrGraph, Vec<u32>) {
    let n: usize = sizes.iter().sum();
    let mut labels = Vec::with_capacity(n);
    for (c, &s) in sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(c as u32, s));
    }
    let mut r = rng(seed);
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex((n - 1) as VertexId);
    }
    for u in 0..n {
        for v in u + 1..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if r.gen_bool(p) {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    (b.build(), labels)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than attachments");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    // repeated-endpoint list: sampling an entry uniformly = sampling a
    // vertex proportionally to its degree
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    // seed: a small clique over the first m_attach + 1 vertices
    for u in 0..=(m_attach as VertexId) {
        for v in u + 1..=(m_attach as VertexId) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m_attach + 1)..n {
        let mut targets = std::collections::HashSet::new();
        while targets.len() < m_attach {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        // sort for determinism: HashSet iteration order would otherwise
        // leak into the endpoint list and diverge future samples
        let mut targets: Vec<VertexId> = targets.into_iter().collect();
        targets.sort_unstable();
        for &t in &targets {
            b.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// R-MAT recursive edge sampler (`scale` ⇒ `n = 2^scale` vertices,
/// `edge_factor·n` sampled edges before dedup). Standard parameters
/// are `(a, b, c) = (0.57, 0.19, 0.19)`.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b_: f64, c: f64, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut r = rng(seed);
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let x: f64 = r.gen();
            let (du, dv) = if x < a {
                (0, 0)
            } else if x < a + b_ {
                (0, 1)
            } else if x < a + b_ + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// A planted-community graph: a sparse background (Barabási–Albert)
/// plus `communities` dense pockets (`(size, p_intra)` each), every
/// pocket wired to the background by a handful of random edges. This is
/// the workload shape the LhCDS experiments probe: distinct
/// non-overlapping dense regions inside a realistic sparse graph.
pub fn planted_communities(
    n_background: usize,
    ba_attach: usize,
    communities: &[(usize, f64)],
    seed: u64,
) -> CsrGraph {
    let bg = barabasi_albert(n_background, ba_attach, seed);
    let mut b = GraphBuilder::new();
    let extra: usize = communities.iter().map(|&(s, _)| s).sum();
    b.ensure_vertex((n_background + extra - 1) as VertexId);
    b.extend_edges(bg.edges());
    let mut r = rng(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut next = n_background as VertexId;
    for &(size, p_intra) in communities {
        let members: Vec<VertexId> = (next..next + size as VertexId).collect();
        next += size as VertexId;
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                if r.gen_bool(p_intra) {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
        // anchor the pocket to the background with ~3 bridges
        for _ in 0..3.min(n_background) {
            let anchor = r.gen_range(0..n_background) as VertexId;
            let inside = members[r.gen_range(0..members.len())];
            b.add_edge(anchor, inside);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: a ring lattice where each vertex links
/// to its `k_half` nearest neighbors on each side, then every edge is
/// rewired with probability `beta`. High clustering with short paths —
/// a useful contrast workload to the planted-community graphs.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k_half >= 1 && 2 * k_half < n, "ring degree out of range");
    assert!((0.0..=1.0).contains(&beta));
    let mut r = rng(seed);
    let mut b = GraphBuilder::new();
    b.ensure_vertex((n - 1) as VertexId);
    for u in 0..n {
        for d in 1..=k_half {
            let v = (u + d) % n;
            if r.gen_bool(beta) {
                // rewire the far endpoint uniformly (retrying on
                // self-loops; the builder drops duplicates)
                loop {
                    let w = r.gen_range(0..n);
                    if w != u {
                        b.add_edge(u as VertexId, w as VertexId);
                        break;
                    }
                }
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Keeps each edge independently with probability `fraction` — the
/// density-variation workload of the paper's Figure 11.
pub fn sample_edges(g: &CsrGraph, fraction: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&fraction));
    let mut r = rng(seed);
    let mut b = GraphBuilder::new();
    if g.n() > 0 {
        b.ensure_vertex((g.n() - 1) as VertexId);
    }
    for (u, v) in g.edges() {
        if r.gen_bool(fraction) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_expected_edge_count() {
        let g = gnp(200, 0.1, 42);
        let expect = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.m() as f64;
        assert!(
            (m - expect).abs() < expect * 0.25,
            "m = {m}, expect ≈ {expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
        assert_eq!(gnp(0, 0.5, 1).n(), 0);
        assert_eq!(gnp(1, 0.5, 1).m(), 0);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(100, 0.05, 7);
        let b = gnp(100, 0.05, 7);
        let c = gnp(100, 0.05, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 314, 3);
        assert_eq!(g.m(), 314);
        assert_eq!(g.n(), 100);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        gnm(4, 7, 0);
    }

    #[test]
    fn unrank_covers_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for k in 0..n * (n - 1) / 2 {
            let (i, j) = unrank_edge(n, k);
            assert!(i < j && j < n);
            assert!(seen.insert((i, j)));
        }
    }

    #[test]
    fn sbm_respects_block_structure() {
        let (g, labels) = sbm(&[50, 50], 0.4, 0.01, 11);
        assert_eq!(g.n(), 100);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 5, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn ba_degree_sum_and_hubs() {
        let g = barabasi_albert(500, 3, 5);
        assert_eq!(g.n(), 500);
        // roughly 3 edges per non-seed vertex
        assert!(g.m() >= 3 * (500 - 4));
        // preferential attachment produces a hub well above the minimum
        assert!(g.max_degree() > 15);
    }

    #[test]
    fn rmat_generates_within_bounds() {
        let g = rmat(8, 4, 0.57, 0.19, 0.19, 9);
        assert_eq!(g.n(), 256);
        assert!(g.m() > 0 && g.m() <= 256 * 4);
    }

    #[test]
    fn planted_communities_are_denser_than_background() {
        let g = planted_communities(300, 2, &[(20, 0.9), (15, 0.85)], 13);
        assert_eq!(g.n(), 335);
        // the pocket induces a dense subgraph
        let pocket: Vec<VertexId> = (300..320).collect();
        let sub = lhcds_graph::InducedSubgraph::new(&g, &pocket);
        let density = lhcds_graph::properties::edge_density(&sub.graph);
        assert!(density > 0.6, "pocket density {density}");
    }

    #[test]
    fn watts_strogatz_structure() {
        // beta = 0: pure ring lattice, exactly n·k_half edges and high
        // clustering for k_half ≥ 2
        let g = watts_strogatz(100, 2, 0.0, 1);
        assert_eq!(g.m(), 200);
        assert!(lhcds_graph_properties_avg(&g) > 0.4);
        // beta = 1: fully rewired, clustering collapses
        let g1 = watts_strogatz(200, 2, 1.0, 2);
        assert!(lhcds_graph_properties_avg(&g1) < 0.2);
        // determinism
        assert_eq!(watts_strogatz(64, 2, 0.3, 9), watts_strogatz(64, 2, 0.3, 9));
    }

    fn lhcds_graph_properties_avg(g: &CsrGraph) -> f64 {
        lhcds_graph::properties::average_clustering(g)
    }

    #[test]
    #[should_panic(expected = "ring degree")]
    fn watts_strogatz_rejects_bad_degree() {
        watts_strogatz(4, 2, 0.1, 0);
    }

    #[test]
    fn sample_edges_fraction() {
        let g = gnp(300, 0.1, 21);
        let s = sample_edges(&g, 0.5, 22);
        let ratio = s.m() as f64 / g.m() as f64;
        assert!((ratio - 0.5).abs() < 0.15, "ratio {ratio}");
        assert_eq!(s.n(), g.n());
        let all = sample_edges(&g, 1.0, 23);
        assert_eq!(all.m(), g.m());
        let none = sample_edges(&g, 0.0, 24);
        assert_eq!(none.m(), 0);
    }
}
