//! Binary on-disk cache of decomposition indexes (`LHCDSIDX`).
//!
//! A [`DecompositionIndex`] is far more expensive to build than to
//! store: construction runs the full IPPV pipeline, while the frozen
//! index is a handful of flat arrays. This module persists it next to
//! the graph's own `LHCDSCSR` snapshot with the exact same lifecycle —
//! versioned magic, FNV-1a checksum, header-implied-size check before
//! any allocation, source length+mtime staleness guard, and atomic
//! tmp-file + rename publication — so a daemon restart serves queries
//! after one sequential binary read instead of a pipeline re-run.
//!
//! # File format (version 2, little-endian)
//!
//! ```text
//! magic            8 bytes   b"LHCDSIDX"
//! version          u32       2
//! h                u32       pattern arity the index answers for
//! k_max            u64       configured serving cap
//! n                u64       vertex count of the indexed graph
//! count            u64       number of subgraphs
//! member_count     u64       total members across all subgraphs
//! source_len       u64       byte length of the source text at build time
//! source_mtime     u64       source mtime (ns since epoch, truncated)
//! pattern_len      u64       byte length of the pattern key
//! checksum         u64       FNV-1a 64 over the payload bytes
//! payload:
//!   pattern        pattern_len bytes (UTF-8 pattern key)
//!   offsets        (count+1) × u64
//!   members        member_count × u32
//!   density_num    count × i128
//!   density_den    count × i128
//!   clique_counts  count × u64
//! ```
//!
//! Version 2 added the *pattern key* (`clique.h3`, `4-loop`,
//! `custom.<fnv>`, …) so an LhxPDS decomposition persists exactly like
//! the h-clique one. The key rides in the payload, so it is covered by
//! the checksum and re-validated structurally on load. Legacy version-1
//! files (no `pattern_len` field, no key bytes) still load: they can
//! only have been written by the h-clique pipeline, so the reader
//! assigns them the `clique.h{h}` key; any *other* version is rejected
//! with `UnsupportedVersion`. Writes always produce version 2.
//!
//! The per-vertex rank table is *not* stored — it is derived from the
//! member slab on load (`DecompositionIndex::try_from_parts`), so a
//! cache file can never smuggle in an inconsistent one. Everything the
//! checksum does not catch, the structural re-validation in
//! `try_from_parts` does.
//!
//! ```
//! use lhcds_data::index_cache::{load_or_build_index, IndexBuildOptions};
//! use lhcds_data::ingest::EdgeListFormat;
//! use lhcds_data::CacheStatus;
//!
//! let dir = std::env::temp_dir().join("lhcds_idx_doc");
//! std::fs::remove_dir_all(&dir).ok();
//! std::fs::create_dir_all(&dir).unwrap();
//! let src = dir.join("tiny.txt");
//! std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
//!
//! let opts = IndexBuildOptions::default();
//! let (_, idx1, s1) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
//! let (_, idx2, s2) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
//! assert_eq!(s1.index, CacheStatus::Built);
//! assert_eq!(s2.index, CacheStatus::Hit);
//! assert_eq!(idx1, idx2); // identical index either way
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::cache::{
    load_or_build, read_u32, read_u64, unique_tmp_path, CacheError, CacheStatus, SourceStamp,
};
use crate::ingest::EdgeListFormat;
use lhcds_core::index::{default_pattern_key, DecompositionIndex, IndexConfig, IndexParts};
use lhcds_graph::{GraphError, RemappedGraph};
use lhcds_patterns::{build_pattern_index, Pattern};

/// First 8 bytes of every index cache file.
pub const INDEX_MAGIC: &[u8; 8] = b"LHCDSIDX";
/// Current index cache format version (2: pattern-keyed).
pub const INDEX_VERSION: u32 = 2;
/// The pre-pattern format version the reader still accepts.
pub const LEGACY_INDEX_VERSION: u32 = 1;

/// Total v2 header size: magic + two `u32` + seven `u64` + checksum.
const HEADER_LEN: u64 = 8 + 4 + 4 + 8 * 8;
/// Total v1 header size (no `pattern_len` field).
const LEGACY_HEADER_LEN: u64 = 8 + 4 + 4 + 8 * 7;

/// Construction options forwarded to [`DecompositionIndex::build`].
#[derive(Debug, Clone, Default)]
pub struct IndexBuildOptions {
    /// Index configuration (serving cap + pipeline knobs).
    pub config: IndexConfig,
    /// Explicit index cache path (`None`: [`index_path_for`]).
    pub cache_path: Option<PathBuf>,
    /// Bypass the graph's own CSR cache when parsing the source.
    pub no_graph_cache: bool,
}

/// How each layer of [`load_or_build_index`] obtained its artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexLoadStatus {
    /// The CSR graph cache outcome.
    pub graph: CacheStatus,
    /// The decomposition index cache outcome.
    pub index: CacheStatus,
}

/// Default index cache location for a source file and pattern key:
/// the source path with `.<key>.lhcdsidx` appended
/// (`web.txt` + `4-loop` → `web.txt.4-loop.lhcdsidx`), one file per
/// `(graph, pattern)` pair. Clique keys drop their `clique.` prefix so
/// the h-clique pipeline keeps its historical `FILE.h{h}.lhcdsidx`
/// names (`web.txt` + `clique.h3` → `web.txt.h3.lhcdsidx`) — exactly
/// where pre-pattern daemons left their version-1 snapshots.
pub fn index_path_for_key(source: &Path, key: &str) -> PathBuf {
    let short = key.strip_prefix("clique.").unwrap_or(key);
    let mut name = source
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(format!(".{short}.lhcdsidx"));
    source.with_file_name(name)
}

/// [`index_path_for_key`] for the h-clique pipeline's `clique.h{h}`
/// key: `web-Stanford.txt` → `web-Stanford.txt.h3.lhcdsidx`.
pub fn index_path_for(source: &Path, h: usize) -> PathBuf {
    index_path_for_key(source, &default_pattern_key(h))
}

fn payload_bytes(parts: &IndexParts) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        parts.pattern.len()
            + parts.offsets.len() * 8
            + parts.members.len() * 4
            + parts.density_num.len() * 32
            + parts.clique_counts.len() * 8,
    );
    out.extend_from_slice(parts.pattern.as_bytes());
    for &o in &parts.offsets {
        out.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &v in &parts.members {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &x in &parts.density_num {
        out.extend_from_slice(&x.to_le_bytes());
    }
    for &x in &parts.density_den {
        out.extend_from_slice(&x.to_le_bytes());
    }
    for &c in &parts.clique_counts {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

/// Writes an index snapshot of `idx` to `path` (atomic tmp + rename,
/// same discipline as [`crate::cache::write_cache`]).
pub fn write_index(
    path: &Path,
    idx: &DecompositionIndex,
    source: SourceStamp,
) -> Result<(), CacheError> {
    let parts = idx.as_parts();
    let payload = payload_bytes(&parts);
    let mut checksum = crate::cache::Fnv1a::new();
    checksum.update(&payload);

    let tmp = unique_tmp_path(path);
    let write = || -> Result<(), CacheError> {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(INDEX_MAGIC)?;
        w.write_all(&INDEX_VERSION.to_le_bytes())?;
        w.write_all(&(parts.h as u32).to_le_bytes())?;
        w.write_all(&(parts.k_max as u64).to_le_bytes())?;
        w.write_all(&(parts.n as u64).to_le_bytes())?;
        w.write_all(&(parts.clique_counts.len() as u64).to_le_bytes())?;
        w.write_all(&(parts.members.len() as u64).to_le_bytes())?;
        w.write_all(&source.len.to_le_bytes())?;
        w.write_all(&source.mtime_ns.to_le_bytes())?;
        w.write_all(&(parts.pattern.len() as u64).to_le_bytes())?;
        w.write_all(&checksum.finish().to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    };
    write().inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

/// A loaded index snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedIndex {
    /// The revalidated index.
    pub index: DecompositionIndex,
    /// Length + mtime of the source text when the snapshot was written.
    pub source: SourceStamp,
}

/// Loads an index snapshot, verifying magic, version, payload size
/// (before any allocation), checksum, and every structural invariant
/// (via `DecompositionIndex::try_from_parts`).
///
/// Accepts the current version-2 layout and the legacy version-1
/// layout (which carried no pattern key and is therefore assigned
/// `clique.h{h}`); any other version is [`CacheError::UnsupportedVersion`].
pub fn read_index(path: &Path) -> Result<CachedIndex, CacheError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != INDEX_MAGIC {
        return Err(CacheError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != INDEX_VERSION && version != LEGACY_INDEX_VERSION {
        return Err(CacheError::UnsupportedVersion(version));
    }
    let h = read_u32(&mut r)?;
    let k_max = read_u64(&mut r)?;
    let n = read_u64(&mut r)?;
    let count64 = read_u64(&mut r)?;
    let member_count64 = read_u64(&mut r)?;
    let source_len = read_u64(&mut r)?;
    let source_mtime = read_u64(&mut r)?;
    let pattern_len64 = if version == INDEX_VERSION {
        read_u64(&mut r)?
    } else {
        0 // v1 carries no key bytes
    };
    let expected_checksum = read_u64(&mut r)?;

    // Header-implied payload size vs actual file size, in u128, BEFORE
    // any allocation — same anti-OOM discipline as the CSR cache.
    let implied: u128 = u128::from(pattern_len64)
        + (u128::from(count64) + 1) * 8
        + u128::from(member_count64) * 4
        + u128::from(count64) * 32
        + u128::from(count64) * 8;
    let header_len = if version == INDEX_VERSION {
        HEADER_LEN
    } else {
        LEGACY_HEADER_LEN
    };
    let available = file_len.saturating_sub(header_len);
    if implied != u128::from(available) {
        return Err(CacheError::SizeMismatch {
            expected: implied,
            actual: available,
        });
    }
    let (count, member_count) = (count64 as usize, member_count64 as usize);
    let mut payload = vec![0u8; implied as usize];
    r.read_exact(&mut payload)?;
    // deterministic fault injection, mirroring the CSR reader: flip a
    // payload byte so the checksum → quarantine → rebuild path runs
    if lhcds_obs::fault::should_fire(lhcds_obs::fault::FaultPoint::CacheCorrupt) {
        let mid = payload.len() / 2;
        if let Some(b) = payload.get_mut(mid) {
            *b ^= 0xFF;
        }
    }

    let mut checksum = crate::cache::Fnv1a::new();
    checksum.update(&payload);
    let actual = checksum.finish();
    if actual != expected_checksum {
        return Err(CacheError::ChecksumMismatch {
            expected: expected_checksum,
            actual,
        });
    }

    let mut at = 0usize;
    let mut take = |len: usize| {
        let s = &payload[at..at + len];
        at += len;
        s
    };
    let pattern = if version == INDEX_VERSION {
        String::from_utf8(take(pattern_len64 as usize).to_vec()).map_err(|_| {
            CacheError::Graph(GraphError::InvalidCsr(
                "pattern key is not valid UTF-8".into(),
            ))
        })?
    } else {
        default_pattern_key(h as usize)
    };
    let offsets: Vec<usize> = take((count + 1) * 8)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as usize)
        .collect();
    let members: Vec<u32> = take(member_count * 4)
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    let density_num: Vec<i128> = take(count * 16)
        .chunks_exact(16)
        .map(|c| i128::from_le_bytes(c.try_into().expect("16-byte chunk")))
        .collect();
    let density_den: Vec<i128> = take(count * 16)
        .chunks_exact(16)
        .map(|c| i128::from_le_bytes(c.try_into().expect("16-byte chunk")))
        .collect();
    let clique_counts: Vec<u64> = take(count * 8)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();

    let index = DecompositionIndex::try_from_parts(IndexParts {
        h: h as usize,
        pattern,
        k_max: k_max as usize,
        n: n as usize,
        offsets,
        members,
        density_num,
        density_den,
        clique_counts,
    })
    .map_err(|e| CacheError::Graph(GraphError::InvalidCsr(e.0)))?;
    Ok(CachedIndex {
        index,
        source: SourceStamp {
            len: source_len,
            mtime_ns: source_mtime,
        },
    })
}

/// Loads or builds the decomposition index for an **already-loaded**
/// graph. This is the per-`h` half of [`load_or_build_index`]: callers
/// serving several clique sizes (`lhcds serve --h 2,3,4`) load the
/// graph once and call this once per `h` instead of re-reading a
/// multi-gigabyte CSR snapshot for every index.
///
/// The index snapshot is keyed on the source's stamp and `h` (the `h`
/// lives in the file name, see [`index_path_for`]). A fresh, valid
/// snapshot with a serving cap of at least `config.k_max` is a
/// [`CacheStatus::Hit`] — clamped down to the *requested* cap, so a
/// wider previously-persisted index never overrides the operator's
/// configured `k_max`. A stale, corrupt, version-skewed, wrong-`h`, or
/// under-capped snapshot is rebuilt ([`CacheStatus::Rebuilt`]); an
/// unwritable cache degrades to [`CacheStatus::Uncached`], exactly
/// like the CSR layer.
pub fn build_or_load_index_for(
    source: &Path,
    remapped: &RemappedGraph,
    h: usize,
    opts: &IndexBuildOptions,
) -> Result<(DecompositionIndex, CacheStatus), CacheError> {
    build_or_load_pattern_index_for(source, remapped, Pattern::Clique(h), opts)
}

/// The pattern generalization of [`build_or_load_index_for`]: loads or
/// builds the LhxPDS decomposition index of `remapped` under `pattern`,
/// with the exact same Hit/Built/Rebuilt/Uncached lifecycle, staleness
/// guard, and `k_max` clamping.
///
/// The snapshot lives at `FILE.<key>.lhcdsidx` (see
/// [`index_path_for_key`]) and a hit additionally requires the stored
/// pattern key to match — a `4-loop` snapshot never answers a `3-star`
/// request even if someone renames the file. Clique-shaped patterns
/// resolve to the `clique.h{h}` key, so they interoperate bidirectionally
/// with indexes written by the h-clique entry point (including legacy
/// version-1 files, which load as `clique.h{h}`).
pub fn build_or_load_pattern_index_for(
    source: &Path,
    remapped: &RemappedGraph,
    pattern: Pattern,
    opts: &IndexBuildOptions,
) -> Result<(DecompositionIndex, CacheStatus), CacheError> {
    // deterministic fault injection: a daemon hit by this serves its
    // remaining patterns in a `degraded` state instead of rebuilding —
    // the error propagates, it is not treated as cache damage
    if lhcds_obs::fault::should_fire(lhcds_obs::fault::FaultPoint::IndexLoad) {
        return Err(CacheError::Io(std::io::Error::other(
            "injected index load failure",
        )));
    }
    let stamp = SourceStamp::of(source)?;
    let key = pattern.key();
    let index_path = opts
        .cache_path
        .clone()
        .unwrap_or_else(|| index_path_for_key(source, &key));
    let mut index_status = CacheStatus::Built;
    crate::cache::sweep_stale_tmp(&index_path);
    if index_path.exists() {
        match read_index(&index_path) {
            Ok(cached)
                if cached.source == stamp
                    && cached.index.pattern() == key
                    && cached.index.h() == pattern.arity()
                    && cached.index.n() == remapped.graph.n()
                    && cached.index.k_max() >= opts.config.k_max =>
            {
                let mut index = cached.index;
                index.clamp_k_max(opts.config.k_max);
                lhcds_obs::event("index-cache", || {
                    format!("hit {key} {}", index_path.display())
                });
                return Ok((index, CacheStatus::Hit));
            }
            // stale or built for different parameters: rebuild over it
            Ok(_) => index_status = CacheStatus::Rebuilt,
            // damaged: bounded quarantine of the corrupt bytes first
            Err(e) => {
                crate::cache::quarantine_corrupt(&index_path, "index-cache", &e);
                index_status = CacheStatus::Rebuilt;
            }
        }
    }

    let index = build_pattern_index(&remapped.graph, pattern, &opts.config);
    if write_index(&index_path, &index, stamp).is_err() {
        index_status = CacheStatus::Uncached;
    }
    lhcds_obs::event("index-cache", || {
        format!("{} {key} {}", index_status.as_str(), index_path.display())
    });
    Ok((index, index_status))
}

/// Loads a source graph *and* its decomposition index through both
/// cache layers.
///
/// The graph goes through [`load_or_build`] (unless
/// [`IndexBuildOptions::no_graph_cache`]); the index half is
/// [`build_or_load_index_for`] — see there for the Hit/Built/Rebuilt/
/// Uncached lifecycle and the `k_max` clamping contract.
pub fn load_or_build_index(
    source: &Path,
    format: EdgeListFormat,
    h: usize,
    opts: &IndexBuildOptions,
) -> Result<(RemappedGraph, DecompositionIndex, IndexLoadStatus), CacheError> {
    let (remapped, graph_status) = if opts.no_graph_cache {
        (
            crate::ingest::read_graph_file(source, format)?,
            CacheStatus::Uncached,
        )
    } else {
        load_or_build(source, format, None)?
    };
    let (index, index_status) = build_or_load_index_for(source, &remapped, h, opts)?;
    Ok((
        remapped,
        index,
        IndexLoadStatus {
            graph: graph_status,
            index: index_status,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lhcds_idx_unit").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Two triangles separated by a 2-vertex path — two LhCDSes at 1/3
    /// (a direct bridge would merge them into one compact union).
    const TWO_TRIANGLES: &str = "0 1\n1 2\n2 0\n2 3\n3 4\n4 5\n5 6\n6 7\n7 5\n";

    #[test]
    fn index_path_encodes_h() {
        assert_eq!(
            index_path_for(Path::new("/data/web.txt"), 3),
            PathBuf::from("/data/web.txt.h3.lhcdsidx")
        );
        assert_ne!(
            index_path_for(Path::new("g.txt"), 3),
            index_path_for(Path::new("g.txt"), 4)
        );
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let dir = tmp("round_trip");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions::default();

        let (_, idx, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st.index, CacheStatus::Built);
        assert_eq!(idx.len(), 2);

        let path = index_path_for(&src, 3);
        let bytes1 = std::fs::read(&path).unwrap();

        // reload → identical index, and re-persisting it reproduces the
        // file byte for byte
        let cached = read_index(&path).unwrap();
        assert_eq!(cached.index, idx);
        let again = dir.join("again.lhcdsidx");
        write_index(&again, &cached.index, cached.source).unwrap();
        assert_eq!(bytes1, std::fs::read(&again).unwrap(), "byte-identical");

        let (_, idx2, st2) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st2.index, CacheStatus::Hit);
        assert_eq!(idx2, idx);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_and_corrupt_snapshots_are_rebuilt() {
        let dir = tmp("lifecycle");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions::default();

        let (_, _, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st.index, CacheStatus::Built);

        // source grows (append a disjoint K4): stale snapshot rebuilt
        std::fs::write(
            &src,
            format!("{TWO_TRIANGLES}8 9\n8 10\n8 11\n9 10\n9 11\n10 11\n"),
        )
        .unwrap();
        let (_, idx, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st.index, CacheStatus::Rebuilt);
        assert_eq!(idx.len(), 3); // the K4 now leads at density 1
        let (_, _, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st.index, CacheStatus::Hit);

        // corrupt one payload byte: checksum rejects, loader rebuilds
        let path = index_path_for(&src, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_index(&path),
            Err(CacheError::ChecksumMismatch { .. })
        ));
        let (_, idx2, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st.index, CacheStatus::Rebuilt);
        assert_eq!(idx2, idx);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_version_and_size_are_rejected() {
        let dir = tmp("reject");
        let path = dir.join("x.lhcdsidx");
        std::fs::write(&path, b"LHCDSCSR________").unwrap();
        assert!(matches!(read_index(&path), Err(CacheError::BadMagic)));

        let mut bytes = Vec::new();
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_index(&path),
            Err(CacheError::UnsupportedVersion(9))
        ));

        // absurd count: implied payload in the petabytes must be caught
        // before any allocation
        let mut bytes = Vec::new();
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes()); // h
        bytes.extend_from_slice(&8u64.to_le_bytes()); // k_max
        bytes.extend_from_slice(&10u64.to_le_bytes()); // n
        bytes.extend_from_slice(&(1u64 << 50).to_le_bytes()); // count
        bytes.extend_from_slice(&[0u8; 40]); // rest of the v2 header
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_index(&path),
            Err(CacheError::SizeMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn semantic_garbage_survives_checksum_but_not_validation() {
        // a payload that checksums fine but encodes overlapping
        // subgraphs must be rejected by the structural re-validation
        let dir = tmp("semantic");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions::default();
        let (_, idx, _) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();

        let mut parts = idx.as_parts();
        parts.members[3] = parts.members[0]; // overlap + unsorted
                                             // bypass try_from_parts by writing the raw payload directly
        let path = dir.join("evil.lhcdsidx");
        let payload = payload_bytes(&parts);
        let mut checksum = crate::cache::Fnv1a::new();
        checksum.update(&payload);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(parts.h as u32).to_le_bytes());
        bytes.extend_from_slice(&(parts.k_max as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.n as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.clique_counts.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.members.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(parts.pattern.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum.finish().to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(read_index(&path), Err(CacheError::Graph(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn under_capped_snapshot_is_rebuilt_wider() {
        let dir = tmp("kmax");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let narrow = IndexBuildOptions {
            config: IndexConfig {
                k_max: 2,
                ..IndexConfig::default()
            },
            ..IndexBuildOptions::default()
        };
        let (_, idx, _) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &narrow).unwrap();
        assert_eq!(idx.k_max(), 2);

        // a wider request cannot be served by the narrow snapshot
        let wide = IndexBuildOptions::default();
        let (_, idx, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &wide).unwrap();
        assert_eq!(st.index, CacheStatus::Rebuilt);
        assert!(idx.k_max() >= 32);

        // …but the narrow request is happily served by the wide one —
        // clamped, so the operator's configured cap is the enforced one
        let (_, idx, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &narrow).unwrap();
        assert_eq!(st.index, CacheStatus::Hit);
        assert_eq!(idx.k_max(), 2, "wide snapshot must be clamped on hit");
        assert!(idx.top_k(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_h_snapshots_do_not_collide() {
        let dir = tmp("per_h");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions::default();
        let (_, i3, s3) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        let (_, i2, s2) = load_or_build_index(&src, EdgeListFormat::Auto, 2, &opts).unwrap();
        assert_eq!(s3.index, CacheStatus::Built);
        assert_eq!(s2.index, CacheStatus::Built, "distinct file per h");
        assert_eq!(i3.h(), 3);
        assert_eq!(i2.h(), 2);
        let (_, _, s3b) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(s3b.index, CacheStatus::Hit);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// K5 bridged to K4: hosts every built-in 4-vertex pattern.
    const K5_K4: &str = "0 1\n0 2\n0 3\n0 4\n1 2\n1 3\n1 4\n2 3\n2 4\n3 4\n\
                         5 6\n5 7\n5 8\n6 7\n6 8\n7 8\n4 5\n";

    #[test]
    fn per_pattern_snapshots_round_trip_and_do_not_collide() {
        let dir = tmp("per_pattern");
        let src = dir.join("g.txt");
        std::fs::write(&src, K5_K4).unwrap();
        let opts = IndexBuildOptions::default();
        let (remapped, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();

        let mut paths = std::collections::BTreeSet::new();
        for p in [
            Pattern::Cycle4,
            Pattern::Star3,
            Pattern::Diamond,
            Pattern::Path4,
            Pattern::TailedTriangle,
        ] {
            let (idx, st) = build_or_load_pattern_index_for(&src, &remapped, p, &opts).unwrap();
            assert_eq!(st, CacheStatus::Built, "{p}");
            assert_eq!(idx.pattern(), p.key(), "{p}");
            let path = index_path_for_key(&src, &p.key());
            assert!(path.exists(), "{p}");
            assert!(paths.insert(path.clone()), "{p}: snapshot files collide");

            // reload → identical index; re-persisting reproduces the
            // file byte for byte
            let cached = read_index(&path).unwrap();
            assert_eq!(cached.index, idx, "{p}");
            let again = dir.join("again.lhcdsidx");
            write_index(&again, &cached.index, cached.source).unwrap();
            assert_eq!(
                std::fs::read(&path).unwrap(),
                std::fs::read(&again).unwrap(),
                "{p}: write→reload→write must be byte-identical"
            );

            let (idx2, st2) = build_or_load_pattern_index_for(&src, &remapped, p, &opts).unwrap();
            assert_eq!(st2, CacheStatus::Hit, "{p}");
            assert_eq!(idx2, idx, "{p}");
        }

        // clique-shaped patterns share the h-clique snapshot both ways
        let (i3, s3) = build_or_load_index_for(&src, &remapped, 3, &opts).unwrap();
        assert_eq!(s3, CacheStatus::Built);
        let (tri, st) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
        assert_eq!(st, CacheStatus::Hit, "triangle pattern reuses the h3 file");
        assert_eq!(tri, i3);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Serializes `parts` in the legacy version-1 layout (no pattern).
    fn v1_bytes(parts: &IndexParts, source: SourceStamp) -> Vec<u8> {
        let mut payload = Vec::new();
        for &o in &parts.offsets {
            payload.extend_from_slice(&(o as u64).to_le_bytes());
        }
        for &v in &parts.members {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for &x in &parts.density_num {
            payload.extend_from_slice(&x.to_le_bytes());
        }
        for &x in &parts.density_den {
            payload.extend_from_slice(&x.to_le_bytes());
        }
        for &c in &parts.clique_counts {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        let mut checksum = crate::cache::Fnv1a::new();
        checksum.update(&payload);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&LEGACY_INDEX_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(parts.h as u32).to_le_bytes());
        bytes.extend_from_slice(&(parts.k_max as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.n as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.clique_counts.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.members.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&source.len.to_le_bytes());
        bytes.extend_from_slice(&source.mtime_ns.to_le_bytes());
        bytes.extend_from_slice(&checksum.finish().to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    #[test]
    fn legacy_v1_snapshots_still_serve_the_clique_pipeline() {
        let dir = tmp("legacy_v1");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions::default();
        let (remapped, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();

        // plant a version-1 file exactly where a pre-pattern daemon
        // would have left it
        let (fresh, _) = build_or_load_pattern_index_for(
            &src,
            &remapped,
            Pattern::Triangle,
            &IndexBuildOptions {
                cache_path: Some(dir.join("scratch.lhcdsidx")),
                ..IndexBuildOptions::default()
            },
        )
        .unwrap();
        let stamp = SourceStamp::of(&src).unwrap();
        let legacy_path = index_path_for(&src, 3);
        std::fs::write(&legacy_path, v1_bytes(&fresh.as_parts(), stamp)).unwrap();

        // the reader maps it to the clique.h3 key…
        let cached = read_index(&legacy_path).unwrap();
        assert_eq!(cached.index.pattern(), "clique.h3");
        assert_eq!(cached.index, fresh);
        // …and both the h-clique and the triangle-pattern entry points
        // hit it without a rebuild
        let (i3, s3) = build_or_load_index_for(&src, &remapped, 3, &opts).unwrap();
        assert_eq!(s3, CacheStatus::Hit, "legacy v1 file must be a hit");
        assert_eq!(i3, fresh);
        let (tri, st) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
        assert_eq!(st, CacheStatus::Hit);
        assert_eq!(tri, fresh);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_pattern_keys_are_rejected() {
        let dir = tmp("bad_key");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions::default();
        let (remapped, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        let (idx, _) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();

        // a checksummed v2 file whose key fails validation must be
        // rejected (and the loader then rebuilds)
        let mut parts = idx.as_parts();
        parts.pattern = "evil key!".into(); // space and '!' are not filename-safe
        let path = index_path_for_key(&src, &Pattern::Triangle.key());
        let payload = payload_bytes(&parts);
        let mut checksum = crate::cache::Fnv1a::new();
        checksum.update(&payload);
        let stamp = SourceStamp::of(&src).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(parts.h as u32).to_le_bytes());
        bytes.extend_from_slice(&(parts.k_max as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.n as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.clique_counts.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&(parts.members.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&stamp.len.to_le_bytes());
        bytes.extend_from_slice(&stamp.mtime_ns.to_le_bytes());
        bytes.extend_from_slice(&(parts.pattern.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum.finish().to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(read_index(&path), Err(CacheError::Graph(_))));
        let (idx2, st) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
        assert_eq!(st, CacheStatus::Rebuilt);
        assert_eq!(idx2, idx);

        // a key that survives the alphabet check but names the wrong
        // pattern is also not a hit
        let wrong = idx.clone().with_pattern("4-loop");
        write_index(&path, &wrong, stamp).unwrap();
        let (_, st) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
        assert_eq!(st, CacheStatus::Rebuilt, "key mismatch must rebuild");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_index_cache_degrades() {
        let dir = tmp("unwritable");
        let src = dir.join("g.txt");
        std::fs::write(&src, TWO_TRIANGLES).unwrap();
        let opts = IndexBuildOptions {
            cache_path: Some(dir.join("no-such-subdir").join("g.lhcdsidx")),
            ..IndexBuildOptions::default()
        };
        let (_, idx, st) = load_or_build_index(&src, EdgeListFormat::Auto, 3, &opts).unwrap();
        assert_eq!(st.index, CacheStatus::Uncached);
        assert_eq!(idx.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
