//! Streaming ingest of real-world edge-list files (SNAP and friends).
//!
//! Text edge lists in the wild are messy: `#`/`%` comment headers, blank
//! lines, CRLF endings, tab or space delimiters (or commas, for
//! `.csv` exports), duplicate and reversed edges, self-loops, and vertex
//! ids drawn from a sparse 64-bit space. This module parses all of that
//! *streaming* — one pass over a buffered reader, never holding the text
//! in memory — and hands the raw edge stream to
//! [`CsrGraph::from_edge_stream`], which normalizes it into a compact
//! CSR plus a rank → original-id table.
//!
//! ```
//! use lhcds_data::ingest::{read_graph, EdgeListFormat};
//!
//! let text = "# SNAP-style header\r\n10 20\r\n20\t10\r\n20 30\r\n30 30\r\n";
//! let loaded = read_graph(text.as_bytes(), EdgeListFormat::Auto).unwrap();
//! assert_eq!(loaded.graph.n(), 3);            // ids 10, 20, 30 → ranks 0, 1, 2
//! assert_eq!(loaded.graph.m(), 2);            // duplicate + self-loop dropped
//! assert_eq!(loaded.original_ids, vec![10, 20, 30]);
//! ```

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use lhcds_graph::{CsrGraph, GraphError, RemappedGraph};

/// Delimiter convention of a text edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeListFormat {
    /// Accept whitespace *or* commas between the two ids (per line).
    #[default]
    Auto,
    /// SNAP convention: ids separated by spaces and/or tabs.
    Snap,
    /// Comma-separated pairs — a comma is *required* (spaces around it
    /// tolerated), mirroring how [`EdgeListFormat::Snap`] rejects commas.
    Csv,
}

impl EdgeListFormat {
    /// Parses a CLI/manifest format name (`auto`, `snap`, `edges`, `csv`).
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "auto" => EdgeListFormat::Auto,
            "snap" | "edges" | "edgelist" | "edge-list" | "tsv" => EdgeListFormat::Snap,
            "csv" => EdgeListFormat::Csv,
            other => return Err(format!("unknown edge-list format '{other}'")),
        })
    }

    /// Splits a trimmed data line into exactly two id tokens, or `None`.
    /// `Snap` rejects commas, `Csv` requires exactly one comma (spaces
    /// around it tolerated), `Auto` accepts either convention.
    fn two_tokens(self, line: &str) -> Option<(&str, &str)> {
        fn take_two<'a, I: Iterator<Item = &'a str>>(mut it: I) -> Option<(&'a str, &'a str)> {
            match (it.next(), it.next(), it.next()) {
                (Some(a), Some(b), None) => Some((a, b)),
                _ => None,
            }
        }
        match self {
            EdgeListFormat::Snap => take_two(line.split_whitespace()),
            EdgeListFormat::Csv => {
                take_two(line.split(',').map(str::trim).filter(|t| !t.is_empty()))
            }
            EdgeListFormat::Auto => take_two(
                line.split(|c: char| c.is_whitespace() || c == ',')
                    .filter(|t| !t.is_empty()),
            ),
        }
    }
}

/// Iterator adapter turning buffered text lines into raw `(u64, u64)`
/// edges, skipping comments (`#`, `%`, `//`) and blank lines and
/// tolerating CRLF endings. Yields at most one edge per line; lines with
/// fewer or more than two id tokens are parse errors.
pub struct EdgeLines<R: BufRead> {
    reader: R,
    format: EdgeListFormat,
    line: String,
    lineno: usize,
}

impl<R: BufRead> EdgeLines<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R, format: EdgeListFormat) -> Self {
        EdgeLines {
            reader,
            format,
            line: String::new(),
            lineno: 0,
        }
    }
}

impl<R: BufRead> Iterator for EdgeLines<R> {
    type Item = Result<(u64, u64), GraphError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(GraphError::Io(e))),
            }
            self.lineno += 1;
            // trim() removes the trailing '\n' and any '\r' before it,
            // so CRLF files parse identically to LF files.
            let t = self.line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('%') || t.starts_with("//") {
                continue;
            }
            let Some((a, b)) = self.format.two_tokens(t) else {
                return Some(Err(GraphError::Parse {
                    line: self.lineno,
                    message: format!("expected exactly two vertex ids, got '{t}'"),
                }));
            };
            let parse = |tok: &str| -> Result<u64, GraphError> {
                tok.parse().map_err(|_| GraphError::Parse {
                    line: self.lineno,
                    message: format!("invalid vertex id '{tok}'"),
                })
            };
            return Some(parse(a).and_then(|u| parse(b).map(|v| (u, v))));
        }
    }
}

/// Reads an edge-list graph from any buffered reader.
///
/// One streaming pass: comments/blank lines are skipped, self-loops
/// dropped, duplicate and reversed edges deduplicated, and the distinct
/// 64-bit ids remapped to compact ranks (see
/// [`CsrGraph::from_edge_stream`]).
pub fn read_graph<R: BufRead>(
    reader: R,
    format: EdgeListFormat,
) -> Result<RemappedGraph, GraphError> {
    CsrGraph::from_edge_stream(EdgeLines::new(reader, format))
}

/// Reads an edge-list graph from a file path.
pub fn read_graph_file<P: AsRef<Path>>(
    path: P,
    format: EdgeListFormat,
) -> Result<RemappedGraph, GraphError> {
    read_graph(BufReader::new(File::open(path)?), format)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_parse() {
        for (name, f) in [
            ("auto", EdgeListFormat::Auto),
            ("snap", EdgeListFormat::Snap),
            ("edges", EdgeListFormat::Snap),
            ("tsv", EdgeListFormat::Snap),
            ("CSV", EdgeListFormat::Csv),
        ] {
            assert_eq!(EdgeListFormat::parse(name).unwrap(), f, "{name}");
        }
        assert!(EdgeListFormat::parse("xml").is_err());
    }

    #[test]
    fn snap_format_rejects_commas() {
        let err = read_graph("1,2\n".as_bytes(), EdgeListFormat::Snap).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        // but auto and csv accept them
        assert_eq!(
            read_graph("1,2\n".as_bytes(), EdgeListFormat::Auto)
                .unwrap()
                .graph
                .m(),
            1
        );
        assert_eq!(
            read_graph("1, 2\n".as_bytes(), EdgeListFormat::Csv)
                .unwrap()
                .graph
                .m(),
            1
        );
    }

    #[test]
    fn csv_format_requires_a_comma() {
        let err = read_graph("1 2\n".as_bytes(), EdgeListFormat::Csv).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        // two commas are also malformed
        let err = read_graph("1,2,3\n".as_bytes(), EdgeListFormat::Csv).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        // but auto accepts whitespace for the same line
        assert_eq!(
            read_graph("1 2\n".as_bytes(), EdgeListFormat::Auto)
                .unwrap()
                .graph
                .m(),
            1
        );
    }

    #[test]
    fn three_tokens_are_rejected() {
        let err = read_graph("1 2 3\n".as_bytes(), EdgeListFormat::Snap).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("exactly two"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn line_numbers_count_comments_and_blanks() {
        let input = "# header\n\n% more\n0 1\nbroken\n";
        let err = read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_slash_comments_are_skipped() {
        let g = read_graph("// header\n0 1\n".as_bytes(), EdgeListFormat::Auto).unwrap();
        assert_eq!(g.graph.m(), 1);
    }
}
