//! # lhcds-data
//!
//! Dataset substrate for the experiment harness.
//!
//! The paper evaluates on 15 SNAP / Network Repository graphs (Table 2)
//! plus the Krebs *books about US politics* network (Figures 13/17).
//! Those downloads are unavailable offline, so this crate supplies:
//!
//! * [`gen`] — seeded synthetic generators: `G(n,p)`, `G(n,m)`,
//!   stochastic block models with planted dense communities,
//!   Barabási–Albert preferential attachment, R-MAT, and the edge
//!   sampler used by the density-variation experiment (Figure 11).
//! * [`datasets`] — a registry of named stand-ins mirroring Table 2
//!   (same abbreviations; sizes at or below the originals, scaled to a
//!   laptop budget). Each recipe plants dense communities in a sparse
//!   background so the LhCDS structure the paper probes exists by
//!   construction.
//! * [`builtin`] — exact small graphs: the paper's Figure 2 worked
//!   example (with known 3-clique compact numbers), a Harry-Potter-like
//!   network (Figure 1), and a polbooks-like labeled co-purchase network
//!   (Figures 13/17).
//!
//! All generators take explicit seeds and use `rand_chacha`, so every
//! experiment in the repo is bit-for-bit reproducible.

pub mod builtin;
pub mod datasets;
pub mod gen;

pub use builtin::{figure2_graph, harry_potter_like, polbooks_like, LabeledGraph};
pub use datasets::{registry, Dataset, DatasetSpec};
