//! # lhcds-data
//!
//! Dataset substrate of the workspace — the layer between the algorithm
//! crates below (`lhcds-graph` … `lhcds-baselines`) and the two binary
//! consumers above (`lhcds-cli`, `lhcds-bench`). It supplies every graph
//! the rest of the repo runs on, from two sources:
//!
//! **Synthetic** (always available, seeded, bit-for-bit reproducible):
//!
//! * [`gen`] — generators: `G(n,p)`, `G(n,m)`, stochastic block models
//!   with planted dense communities, Barabási–Albert preferential
//!   attachment, R-MAT, and the edge sampler used by the
//!   density-variation experiment (Figure 11).
//! * [`datasets`] — named stand-ins mirroring the paper's Table 2 (same
//!   abbreviations; sizes at or below the originals). Each recipe plants
//!   dense communities in a sparse background so the LhCDS structure the
//!   paper probes exists by construction.
//! * [`builtin`] — exact small graphs: the paper's Figure 2 worked
//!   example (with known 3-clique compact numbers), a Harry-Potter-like
//!   network (Figure 1), and a polbooks-like labeled co-purchase network
//!   (Figures 13/17).
//!
//! **Real** (user-provided edge lists, e.g. the actual Table 2 SNAP
//! downloads):
//!
//! * [`ingest`] — streaming edge-list parser: comments, blank lines,
//!   CRLF, whitespace/tab/comma delimiters, self-loop and duplicate-edge
//!   normalization, arbitrary non-contiguous 64-bit vertex ids remapped
//!   to compact `u32` ranks.
//! * [`cache`] — versioned, checksummed binary CSR snapshots so a
//!   multi-gigabyte text file is parsed once and binary-loaded forever
//!   after.
//! * [`index_cache`] — the `LHCDSIDX` sibling format: persists a
//!   `lhcds-core` decomposition index next to the graph snapshot, so a
//!   query daemon restart skips the IPPV pipeline entirely.
//! * [`manifest`] — [`manifest::DatasetRegistry`]: resolves dataset
//!   names to local paths via a `datasets.toml` manifest, with recorded
//!   `|V|`/`|E|` validated after every load.
//!
//! # Example
//!
//! ```
//! use lhcds_data::{datasets::by_abbr, figure2_graph};
//!
//! // Exact builtin: the paper's Figure 2 worked example.
//! let fig2 = figure2_graph();
//! assert_eq!((fig2.n(), fig2.m()), (20, 39));
//!
//! // Seeded synthetic stand-in for Table 2's CA-GrQc, at 10% scale.
//! let gq = by_abbr("GQ").unwrap().generate_scaled(0.1);
//! assert!(gq.graph.n() > 500);
//! ```

#![warn(missing_docs)]

pub mod builtin;
pub mod cache;
pub mod datasets;
pub mod gen;
pub mod index_cache;
pub mod ingest;
pub mod manifest;

pub use builtin::{figure2_graph, harry_potter_like, polbooks_like, LabeledGraph};
pub use cache::{load_or_build, CacheStatus};
pub use datasets::{registry, Dataset, DatasetSpec};
pub use index_cache::{
    build_or_load_index_for, load_or_build_index, IndexBuildOptions, IndexLoadStatus,
};
pub use ingest::{read_graph_file, EdgeListFormat};
pub use manifest::DatasetRegistry;
