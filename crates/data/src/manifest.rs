//! Registry of *real* datasets resolved through a local `datasets.toml`
//! manifest.
//!
//! The paper's evaluation (Table 2) runs on public SNAP / Network
//! Repository graphs that cannot be vendored into this repository. The
//! contract instead: the user downloads the edge lists they care about,
//! writes (or generates — see [`table2_template`]) a small manifest
//! mapping dataset names to local paths, and everything above this layer
//! (CLI `--input`/`datasets`, the bench harness's `table2real`
//! experiment) resolves names like `CA-GrQc` through a
//! [`DatasetRegistry`]. Each entry can record the expected `|V|`/`|E|`
//! of the *loaded* (deduplicated, undirected) graph; loads validate
//! against them, so a truncated download or a wrong file is caught
//! immediately.
//!
//! The manifest is a restricted TOML subset — one `[table]` per dataset,
//! `key = value` pairs with quoted strings and bare integers — parsed
//! here directly so the offline build needs no `toml` dependency:
//!
//! ```toml
//! [CA-GrQc]
//! abbr = "GQ"
//! path = "CA-GrQc.txt"            # relative to the manifest file
//! url = "https://snap.stanford.edu/data/ca-GrQc.html"
//! format = "snap"                 # snap | csv | auto (default auto)
//! vertices = 5242                 # optional: expected |V| after load
//! edges = 14484                   # optional: expected |E| after load
//! ```
//!
//! ```
//! use lhcds_data::manifest::DatasetRegistry;
//!
//! let manifest = r#"
//! [tiny]
//! path = "tiny.txt"
//! vertices = 3
//! edges = 3
//! "#;
//! let dir = std::env::temp_dir().join("lhcds_manifest_doc");
//! std::fs::remove_dir_all(&dir).ok(); // leftovers from an aborted run
//! std::fs::create_dir_all(&dir).unwrap();
//! std::fs::write(dir.join("tiny.txt"), "0 1\n1 2\n2 0\n").unwrap();
//!
//! let reg = DatasetRegistry::parse(manifest, &dir).unwrap();
//! let entry = reg.get("tiny").unwrap();
//! assert!(entry.is_present());
//! let (graph, _status) = entry.load().unwrap(); // parses, caches, validates |V|/|E|
//! assert_eq!(graph.graph.n(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::path::{Path, PathBuf};

use crate::cache::{load_or_build, CacheError, CacheStatus};
use crate::ingest::EdgeListFormat;
use lhcds_graph::RemappedGraph;

/// Environment variable naming the default manifest path.
pub const MANIFEST_ENV: &str = "LHCDS_DATASETS";
/// Default manifest file name (looked up in the working directory).
pub const MANIFEST_DEFAULT: &str = "datasets.toml";

/// One `[table]` of the manifest: a named dataset and where to find it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Dataset name (the `[table]` header).
    pub name: String,
    /// Optional short code (Table 2 abbreviation).
    pub abbr: Option<String>,
    /// Edge-list location, resolved against the manifest's directory.
    pub path: PathBuf,
    /// Where the dataset can be downloaded (documentation only).
    pub url: Option<String>,
    /// Expected `|V|` of the loaded graph, if recorded.
    pub vertices: Option<u64>,
    /// Expected `|E|` of the loaded graph, if recorded.
    pub edges: Option<u64>,
    /// Delimiter convention of the file.
    pub format: EdgeListFormat,
}

impl ManifestEntry {
    /// Whether the edge-list file exists locally.
    pub fn is_present(&self) -> bool {
        self.path.is_file()
    }

    /// Loads the dataset through the on-disk cache
    /// ([`load_or_build`]) and validates the result against the
    /// recorded `vertices`/`edges`, when present.
    pub fn load(&self) -> Result<(RemappedGraph, CacheStatus), DatasetError> {
        if !self.is_present() {
            return Err(DatasetError::Missing {
                name: self.name.clone(),
                path: self.path.clone(),
            });
        }
        let (g, status) =
            load_or_build(&self.path, self.format, None).map_err(|e| DatasetError::Load {
                name: self.name.clone(),
                source: e,
            })?;
        for (field, expected, actual) in [
            ("vertices", self.vertices, g.graph.n() as u64),
            ("edges", self.edges, g.graph.m() as u64),
        ] {
            if let Some(expected) = expected {
                if expected != actual {
                    return Err(DatasetError::Validation {
                        name: self.name.clone(),
                        field,
                        expected,
                        actual,
                    });
                }
            }
        }
        Ok((g, status))
    }
}

/// Errors raised while resolving or loading manifest datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// The entry's edge-list file does not exist locally.
    Missing {
        /// Dataset name.
        name: String,
        /// Path the manifest points at.
        path: PathBuf,
    },
    /// Parsing or cache I/O failed.
    Load {
        /// Dataset name.
        name: String,
        /// Underlying failure.
        source: CacheError,
    },
    /// The loaded graph disagrees with the recorded `|V|`/`|E|`.
    Validation {
        /// Dataset name.
        name: String,
        /// Which field disagreed (`"vertices"` or `"edges"`).
        field: &'static str,
        /// Value recorded in the manifest.
        expected: u64,
        /// Value measured after loading.
        actual: u64,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Missing { name, path } => {
                write!(f, "dataset '{name}': file not found at {}", path.display())
            }
            DatasetError::Load { name, source } => write!(f, "dataset '{name}': {source}"),
            DatasetError::Validation {
                name,
                field,
                expected,
                actual,
            } => write!(
                f,
                "dataset '{name}': loaded graph has {actual} {field}, manifest records {expected}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Load { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A parsed manifest: named real datasets resolvable to local paths.
#[derive(Debug, Clone, Default)]
pub struct DatasetRegistry {
    entries: Vec<ManifestEntry>,
}

impl DatasetRegistry {
    /// Parses manifest text; relative `path`s resolve against `base_dir`
    /// (normally the manifest file's directory).
    pub fn parse(text: &str, base_dir: &Path) -> Result<Self, String> {
        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut current: Option<ManifestEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated table header"))?
                    .trim();
                if name.is_empty() {
                    return Err(format!("line {lineno}: empty table name"));
                }
                if let Some(done) = current.take() {
                    entries.push(done);
                }
                if entries.iter().any(|e| e.name == name) {
                    return Err(format!("line {lineno}: duplicate table [{name}]"));
                }
                current = Some(ManifestEntry {
                    name: name.to_string(),
                    abbr: None,
                    path: PathBuf::new(),
                    url: None,
                    vertices: None,
                    edges: None,
                    format: EdgeListFormat::Auto,
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let entry = current
                .as_mut()
                .ok_or_else(|| format!("line {lineno}: key outside any [table]"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "path" => {
                    let p = PathBuf::from(parse_string(value, lineno)?);
                    entry.path = if p.is_absolute() { p } else { base_dir.join(p) };
                }
                "abbr" => entry.abbr = Some(parse_string(value, lineno)?),
                "url" => entry.url = Some(parse_string(value, lineno)?),
                "format" => {
                    entry.format = EdgeListFormat::parse(&parse_string(value, lineno)?)
                        .map_err(|e| format!("line {lineno}: {e}"))?
                }
                "vertices" => entry.vertices = Some(parse_integer(value, lineno)?),
                "edges" => entry.edges = Some(parse_integer(value, lineno)?),
                other => return Err(format!("line {lineno}: unknown key '{other}'")),
            }
        }
        if let Some(done) = current.take() {
            entries.push(done);
        }
        for e in &entries {
            if e.path.as_os_str().is_empty() {
                return Err(format!("dataset '{}' has no `path` key", e.name));
            }
        }
        // [`DatasetRegistry::get`] resolves case-insensitively over both
        // names and abbreviations, so every such key must be unambiguous
        // (a dataset may reuse its own name as its abbr).
        let mut seen: Vec<String> = Vec::new();
        for e in &entries {
            let mut keys = vec![e.name.to_ascii_lowercase()];
            if let Some(a) = &e.abbr {
                keys.push(a.to_ascii_lowercase());
            }
            keys.dedup();
            for k in keys {
                if seen.contains(&k) {
                    return Err(format!(
                        "ambiguous dataset key '{k}': names and abbreviations must be \
                         unique, case-insensitively"
                    ));
                }
                seen.push(k);
            }
        }
        Ok(DatasetRegistry { entries })
    }

    /// Reads and parses a manifest file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        let base = path.parent().unwrap_or(Path::new("."));
        Self::parse(&text, base).map_err(|e| format!("manifest {}: {e}", path.display()))
    }

    /// The default manifest location: `$LHCDS_DATASETS` if set, else
    /// `datasets.toml` in the working directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os(MANIFEST_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(MANIFEST_DEFAULT))
    }

    /// All entries, manifest order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Looks an entry up by name or abbreviation (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| {
            e.name.eq_ignore_ascii_case(name)
                || e.abbr
                    .as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(name))
        })
    }
}

fn strip_comment(line: &str) -> &str {
    // a `#` outside double quotes starts a comment
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string, got `{value}`"))
}

fn parse_integer(value: &str, lineno: usize) -> Result<u64, String> {
    value
        .replace('_', "")
        .parse()
        .map_err(|_| format!("line {lineno}: expected an integer, got `{value}`"))
}

/// Download page for each Table 2 dataset, by abbreviation.
fn table2_url(abbr: &str) -> &'static str {
    match abbr {
        "HA" => "https://networkrepository.com/soc-hamsterster.php",
        "GQ" => "https://snap.stanford.edu/data/ca-GrQc.html",
        "PP" => "https://networkrepository.com/fb-pages-politician.php",
        "PC" => "https://networkrepository.com/fb-pages-company.php",
        "WB" => "https://networkrepository.com/web-webbase-2001.php",
        "CM" => "https://snap.stanford.edu/data/ca-CondMat.html",
        "EP" => "https://snap.stanford.edu/data/soc-Epinions1.html",
        "EN" => "https://snap.stanford.edu/data/email-Enron.html",
        "GW" => "https://snap.stanford.edu/data/loc-Gowalla.html",
        "DB" => "https://snap.stanford.edu/data/com-DBLP.html",
        "AM" => "https://snap.stanford.edu/data/com-Amazon.html",
        "YT" => "https://networkrepository.com/soc-youtube.php",
        "LF" => "https://networkrepository.com/soc-lastfm.php",
        "FX" => "https://networkrepository.com/soc-flixster.php",
        "WT" => "https://snap.stanford.edu/data/wiki-Talk.html",
        _ => "https://snap.stanford.edu/data/",
    }
}

/// Generates a ready-to-edit `datasets.toml` covering the paper's full
/// Table 2 corpus: name, abbreviation, download page, and the paper's
/// `|V|`/`|E|` as commented-out validation values (the counts of *our*
/// loaded graph can differ from the paper's table — uncomment and adjust
/// after the first successful load).
pub fn table2_template() -> String {
    let mut out = String::from(
        "# datasets.toml — local manifest for the paper's Table 2 graphs.\n\
         # Download the edge lists you want (see each `url`), drop them next to\n\
         # this file (or use absolute paths), then:  lhcds datasets verify\n\n",
    );
    for spec in crate::datasets::registry() {
        out.push_str(&format!(
            "[{name}]\nabbr = \"{abbr}\"\npath = \"{name}.txt\"\nurl = \"{url}\"\n\
             format = \"auto\"\n# paper reports |V| = {n}, |E| = {m}; uncomment to validate:\n\
             # vertices = {n}\n# edges = {m}\n\n",
            name = spec.name,
            abbr = spec.abbr,
            url = table2_url(spec.abbr),
            n = spec.paper_n,
            m = spec.paper_m,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_entry() {
        let text = r#"
# a comment
[CA-GrQc]
abbr = "GQ"                 # trailing comment
path = "graphs/ca-grqc.txt"
url = "https://snap.stanford.edu/data/ca-GrQc.html"
format = "snap"
vertices = 5_242
edges = 14484
"#;
        let reg = DatasetRegistry::parse(text, Path::new("/base")).unwrap();
        assert_eq!(reg.entries().len(), 1);
        let e = reg.get("ca-grqc").unwrap();
        assert_eq!(e.abbr.as_deref(), Some("GQ"));
        assert_eq!(e.path, PathBuf::from("/base/graphs/ca-grqc.txt"));
        assert_eq!(e.vertices, Some(5242));
        assert_eq!(e.edges, Some(14484));
        assert_eq!(e.format, EdgeListFormat::Snap);
        assert!(reg.get("gq").is_some(), "abbr lookup");
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn rejects_malformed_manifests() {
        let base = Path::new(".");
        assert!(DatasetRegistry::parse("[x\npath = \"p\"", base).is_err());
        assert!(DatasetRegistry::parse("key = \"before table\"", base).is_err());
        assert!(DatasetRegistry::parse("[x]\nmystery = 1", base).is_err());
        assert!(DatasetRegistry::parse("[x]\npath = unquoted", base).is_err());
        assert!(DatasetRegistry::parse("[x]\nvertices = \"three\"\npath = \"p\"", base).is_err());
        assert!(
            DatasetRegistry::parse("[x]\nabbr = \"A\"", base).is_err(),
            "path required"
        );
        assert!(DatasetRegistry::parse("[x]\npath = \"p\"\n[x]\npath = \"q\"", base).is_err());
    }

    #[test]
    fn lookup_keys_must_be_unambiguous() {
        let base = Path::new(".");
        // case-insensitive name clash
        assert!(DatasetRegistry::parse("[GQ]\npath = \"a\"\n[gq]\npath = \"b\"", base).is_err());
        // one entry's abbr clashing with another's name
        assert!(DatasetRegistry::parse(
            "[first]\nabbr = \"GQ\"\npath = \"a\"\n[gq]\npath = \"b\"",
            base
        )
        .is_err());
        // two entries sharing an abbr
        assert!(DatasetRegistry::parse(
            "[a]\nabbr = \"X\"\npath = \"a\"\n[b]\nabbr = \"x\"\npath = \"b\"",
            base
        )
        .is_err());
        // a dataset may reuse its own name as its abbr
        let reg = DatasetRegistry::parse("[GQ]\nabbr = \"GQ\"\npath = \"a\"", base).unwrap();
        assert_eq!(reg.entries().len(), 1);
    }

    #[test]
    fn hash_inside_quoted_string_is_not_a_comment() {
        let text = "[x]\npath = \"with#hash.txt\"\n";
        let reg = DatasetRegistry::parse(text, Path::new("/b")).unwrap();
        assert_eq!(
            reg.get("x").unwrap().path,
            PathBuf::from("/b/with#hash.txt")
        );
    }

    #[test]
    fn absolute_paths_are_kept() {
        let text = "[x]\npath = \"/abs/g.txt\"\n";
        let reg = DatasetRegistry::parse(text, Path::new("/elsewhere")).unwrap();
        assert_eq!(reg.get("x").unwrap().path, PathBuf::from("/abs/g.txt"));
    }

    #[test]
    fn template_covers_table2_and_reparses() {
        let t = table2_template();
        let reg = DatasetRegistry::parse(&t, Path::new(".")).unwrap();
        assert_eq!(reg.entries().len(), 15);
        for abbr in ["HA", "GQ", "WT"] {
            let e = reg.get(abbr).unwrap();
            assert!(e.url.as_deref().unwrap().starts_with("https://"), "{abbr}");
        }
    }

    #[test]
    fn load_validates_recorded_counts() {
        let dir = std::env::temp_dir().join("lhcds_manifest_validate");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.txt"), "0 1\n1 2\n2 0\n").unwrap();
        let good = "[t]\npath = \"t.txt\"\nvertices = 3\nedges = 3\n";
        let reg = DatasetRegistry::parse(good, &dir).unwrap();
        let (g, _) = reg.get("t").unwrap().load().unwrap();
        assert_eq!(g.graph.m(), 3);

        let bad = "[t]\npath = \"t.txt\"\nvertices = 4\n";
        let reg = DatasetRegistry::parse(bad, &dir).unwrap();
        let err = reg.get("t").unwrap().load().unwrap_err();
        match err {
            DatasetError::Validation {
                field,
                expected,
                actual,
                ..
            } => {
                assert_eq!(field, "vertices");
                assert_eq!((expected, actual), (4, 3));
            }
            other => panic!("unexpected {other:?}"),
        }

        let missing = "[gone]\npath = \"nope.txt\"\n";
        let reg = DatasetRegistry::parse(missing, &dir).unwrap();
        assert!(matches!(
            reg.get("gone").unwrap().load().unwrap_err(),
            DatasetError::Missing { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
