//! Concurrency contract of the binary cache layers: racing writers must
//! never publish a torn file.
//!
//! `write_cache`/`write_index` stage into a writer-unique tmp file and
//! `rename(2)` into place, so any number of concurrent builders — other
//! processes or other threads of this process — end with *some* writer's
//! complete snapshot at the cache path. These tests race threads through
//! `load_or_build`/`load_or_build_index` on one source and assert that
//! every racer succeeds with the same graph and that exactly one valid,
//! checksum-clean cache file remains (no `.tmp*` leftovers).

use std::path::PathBuf;
use std::sync::Barrier;

use lhcds_data::cache::{cache_path_for, load_or_build, read_cache, CacheStatus};
use lhcds_data::index_cache::{index_path_for, load_or_build_index, read_index, IndexBuildOptions};
use lhcds_data::ingest::EdgeListFormat;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("lhcds_concurrent_cache")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Files next to `src` whose names contain `.tmp` — staging leftovers.
fn tmp_leftovers(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect()
}

#[test]
fn racing_graph_cache_builds_all_succeed_with_one_valid_file() {
    let dir = tmp("graph");
    let src = dir.join("g.txt");
    std::fs::write(&src, "0 1\n1 2\n2 0\n2 3\n3 4\n4 5\n5 3\n").unwrap();

    // several rounds to give interleavings a chance; each round starts
    // from a cold cache
    for round in 0..5 {
        std::fs::remove_file(cache_path_for(&src)).ok();
        const RACERS: usize = 4;
        let barrier = Barrier::new(RACERS);
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let barrier = &barrier;
                    let src = &src;
                    scope.spawn(move || {
                        barrier.wait();
                        load_or_build(src, EdgeListFormat::Auto, None).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // every racer got the same graph, whatever path it took
        for (g, status) in &results {
            assert_eq!(g, &results[0].0, "round {round}");
            assert!(
                matches!(status, CacheStatus::Built | CacheStatus::Hit),
                "round {round}: unexpected status {status:?}"
            );
        }
        // exactly one cache file, valid and checksum-clean, no staging
        // leftovers
        let cached = read_cache(&cache_path_for(&src)).unwrap();
        assert_eq!(cached.remapped, results[0].0, "round {round}");
        assert_eq!(tmp_leftovers(&dir), Vec::<String>::new(), "round {round}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn racing_index_builds_all_succeed_with_one_valid_file() {
    let dir = tmp("index");
    let src = dir.join("g.txt");
    std::fs::write(&src, "0 1\n1 2\n2 0\n2 3\n3 4\n4 5\n5 3\n").unwrap();
    let opts = IndexBuildOptions::default();

    for round in 0..3 {
        std::fs::remove_file(index_path_for(&src, 3)).ok();
        const RACERS: usize = 4;
        let barrier = Barrier::new(RACERS);
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let barrier = &barrier;
                    let (src, opts) = (&src, &opts);
                    scope.spawn(move || {
                        barrier.wait();
                        load_or_build_index(src, EdgeListFormat::Auto, 3, opts).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (_, idx, _) in &results {
            assert_eq!(idx, &results[0].1, "round {round}");
        }
        let cached = read_index(&index_path_for(&src, 3)).unwrap();
        assert_eq!(cached.index, results[0].1, "round {round}");
        assert_eq!(tmp_leftovers(&dir), Vec::<String>::new(), "round {round}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
