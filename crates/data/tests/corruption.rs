//! Cache-corruption recovery suite.
//!
//! Pins the self-healing contract of the two binary cache formats:
//! flipping bytes at header, payload, and checksum offsets of an
//! `LHCDSCSR` or `LHCDSIDX` (v2 *and* legacy v1) file makes the next
//! load quarantine the damaged file to `FILE.corrupt-<i>`, rebuild a
//! clean snapshot, and return answers identical to the never-corrupted
//! run — with an event in the observability ring for every quarantine
//! and every stale-tmp sweep. The quarantine is bounded: past
//! [`MAX_QUARANTINE`] slots the damaged file is deleted, not hoarded.
//!
//! Tracing and the fault registry are process-global, so every test
//! here serializes on one mutex.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

use lhcds_data::cache::{
    cache_path_for, load_or_build, read_cache, sweep_stale_tmp, CacheStatus, SourceStamp,
    MAX_QUARANTINE,
};
use lhcds_data::index_cache::{
    build_or_load_pattern_index_for, index_path_for, read_index, IndexBuildOptions, INDEX_MAGIC,
    LEGACY_INDEX_VERSION,
};
use lhcds_data::ingest::EdgeListFormat;
use lhcds_obs::fault::{self, FaultPoint, FaultSchedule};
use lhcds_patterns::Pattern;

/// Serializes tests and clears the process-global tracing + fault
/// state on entry.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    fault::disarm();
    lhcds_obs::set_tracing(false);
    lhcds_obs::take_trace();
    guard
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lhcds_corruption").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two triangles separated by a 2-vertex path (same fixture as the
/// index-cache unit tests: two LhCDSes at density 1/3).
const TWO_TRIANGLES: &str = "0 1\n1 2\n2 0\n2 3\n3 4\n4 5\n5 6\n6 7\n7 5\n";

fn quarantine_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.contains(".corrupt-"))
        .collect();
    names.sort();
    names
}

/// Byte offsets to corrupt in an `LHCDSCSR` file, spanning every
/// structural region: magic, a header count field, the recorded
/// checksum, and early/mid/late payload bytes. (Offsets follow the
/// format doc in `lhcds_data::cache`: header is magic 8 + version 4 +
/// five `u64` fields + checksum at 52..60, payload from 60.)
fn csr_flip_offsets(file_len: usize) -> Vec<(usize, &'static str)> {
    vec![
        (0, "magic"),
        (13, "header vertex-count field"),
        (55, "recorded checksum"),
        (60, "first payload byte"),
        (file_len / 2, "mid payload"),
        (file_len - 1, "last payload byte"),
    ]
}

/// The `LHCDSIDX` v2 counterpart (header is magic 8 + two `u32` +
/// seven `u64` fields + checksum at 72..80, payload from 80). The
/// source-stamp fields are deliberately *not* flipped: a changed stamp
/// is staleness, not corruption, and rebuilds without quarantine.
fn idx_flip_offsets(file_len: usize) -> Vec<(usize, &'static str)> {
    vec![
        (0, "magic"),
        (33, "header subgraph-count field"),
        (75, "recorded checksum"),
        (file_len / 2, "mid payload"),
        (file_len - 1, "last payload byte"),
    ]
}

#[test]
fn csr_cache_flips_quarantine_then_rebuild_answers_unchanged() {
    let _g = serial();
    let dir = tmp("csr_flips");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let cache = cache_path_for(&src);

    let (pristine, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(s, CacheStatus::Built);
    let good_bytes = std::fs::read(&cache).unwrap();

    let mut quarantined = 0;
    for (offset, what) in csr_flip_offsets(good_bytes.len()) {
        let mut bad = good_bytes.clone();
        bad[offset] ^= 0xFF;
        std::fs::write(&cache, &bad).unwrap();
        assert!(read_cache(&cache).is_err(), "flip at {what} must not load");

        let (healed, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s, CacheStatus::Rebuilt, "{what}");
        assert_eq!(healed, pristine, "{what}: answers changed after healing");
        quarantined += 1;
        // the damaged bytes were preserved (bounded), newest slot last
        let files = quarantine_files(&dir);
        assert_eq!(
            files.len(),
            quarantined.min(MAX_QUARANTINE as usize),
            "{what}: {files:?}"
        );
        // and the republished cache is clean: next load is a pure hit
        let (again, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
        assert_eq!(s, CacheStatus::Hit, "{what}");
        assert_eq!(again, pristine);
    }
    // 5 flips, 4 slots: the bound held and the 5th corpse was deleted
    assert_eq!(quarantine_files(&dir).len(), MAX_QUARANTINE as usize);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_cache_v2_flips_quarantine_then_rebuild_answers_unchanged() {
    let _g = serial();
    let dir = tmp("idx_flips");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let opts = IndexBuildOptions::default();
    let (remapped, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    let (pristine, s) =
        build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
    assert_eq!(s, CacheStatus::Built);

    let idx_path = index_path_for(&src, 3);
    let good_bytes = std::fs::read(&idx_path).unwrap();
    for (offset, what) in idx_flip_offsets(good_bytes.len()) {
        let mut bad = good_bytes.clone();
        bad[offset] ^= 0xFF;
        std::fs::write(&idx_path, &bad).unwrap();
        assert!(
            read_index(&idx_path).is_err(),
            "flip at {what} must not load"
        );

        let (healed, s) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
        assert_eq!(s, CacheStatus::Rebuilt, "{what}");
        assert_eq!(healed, pristine, "{what}: index changed after healing");
        let (_, s) =
            build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
        assert_eq!(s, CacheStatus::Hit, "{what}");
    }
    assert!(
        quarantine_files(&dir)
            .iter()
            .all(|n| n.starts_with("g.txt.h3.lhcdsidx.corrupt-")),
        "{:?}",
        quarantine_files(&dir)
    );
    assert!(!quarantine_files(&dir).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_v1_index_corruption_heals_to_a_v2_snapshot() {
    let _g = serial();
    let dir = tmp("idx_v1");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let opts = IndexBuildOptions::default();
    let (remapped, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    let (pristine, _) =
        build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();

    // hand-serialize the index in the legacy v1 layout (no pattern key)
    let parts = pristine.as_parts();
    let mut payload = Vec::new();
    for &o in &parts.offsets {
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &v in &parts.members {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for &x in &parts.density_num {
        payload.extend_from_slice(&x.to_le_bytes());
    }
    for &x in &parts.density_den {
        payload.extend_from_slice(&x.to_le_bytes());
    }
    for &c in &parts.clique_counts {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    // FNV-1a 64 (the cache module's checksum is crate-private)
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for &b in &payload {
        checksum ^= u64::from(b);
        checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let stamp = SourceStamp::of(&src).unwrap();
    let mut v1 = Vec::new();
    v1.extend_from_slice(INDEX_MAGIC);
    v1.extend_from_slice(&LEGACY_INDEX_VERSION.to_le_bytes());
    v1.extend_from_slice(&(parts.h as u32).to_le_bytes());
    v1.extend_from_slice(&(parts.k_max as u64).to_le_bytes());
    v1.extend_from_slice(&(parts.n as u64).to_le_bytes());
    v1.extend_from_slice(&(parts.clique_counts.len() as u64).to_le_bytes());
    v1.extend_from_slice(&(parts.members.len() as u64).to_le_bytes());
    v1.extend_from_slice(&stamp.len.to_le_bytes());
    v1.extend_from_slice(&stamp.mtime_ns.to_le_bytes());
    v1.extend_from_slice(&checksum.to_le_bytes());
    v1.extend_from_slice(&payload);

    let idx_path = index_path_for(&src, 3);
    // the intact v1 file is a hit (sanity check of the serialization)
    std::fs::write(&idx_path, &v1).unwrap();
    let (_, s) =
        build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
    assert_eq!(s, CacheStatus::Hit, "intact v1 must hit");

    // flip a payload byte: the corrupt v1 is quarantined and the
    // rebuild publishes a clean (v2) snapshot with identical answers
    let mut bad = v1.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    std::fs::write(&idx_path, &bad).unwrap();
    let (healed, s) =
        build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
    assert_eq!(s, CacheStatus::Rebuilt);
    assert_eq!(healed, pristine);
    assert_eq!(quarantine_files(&dir).len(), 1);
    let cached = read_index(&idx_path).unwrap();
    assert_eq!(cached.index, pristine, "republished snapshot is clean");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_emits_ring_events_and_preserves_the_damaged_bytes() {
    let _g = serial();
    let dir = tmp("events");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let cache = cache_path_for(&src);
    let (_, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(s, CacheStatus::Built);

    let mut bad = std::fs::read(&cache).unwrap();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    std::fs::write(&cache, &bad).unwrap();

    lhcds_obs::set_tracing(true);
    let (_, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    lhcds_obs::set_tracing(false);
    assert_eq!(s, CacheStatus::Rebuilt);

    let trace = lhcds_obs::take_trace().expect("events recorded");
    let quarantine = trace
        .events
        .iter()
        .find(|e| e.kind == "graph-cache" && e.detail.starts_with("quarantined "))
        .expect("quarantine event in the ring");
    assert!(
        quarantine.detail.contains("checksum mismatch"),
        "{}",
        quarantine.detail
    );
    assert!(
        quarantine.detail.contains(".corrupt-0"),
        "{}",
        quarantine.detail
    );

    // the quarantined file holds exactly the damaged bytes
    let mut q = cache.as_os_str().to_os_string();
    q.push(".corrupt-0");
    assert_eq!(std::fs::read(PathBuf::from(q)).unwrap(), bad);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_tmp_files_from_dead_writers_are_swept_with_events() {
    let _g = serial();
    let dir = tmp("sweep");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let cache = cache_path_for(&src);

    // debris from a "crashed writer" of another process, plus a live
    // tmp of this process that must be left alone
    let foreign = dir.join(format!(
        "{}.tmp{}.0",
        cache.file_name().unwrap().to_str().unwrap(),
        std::process::id().wrapping_add(1)
    ));
    let ours = dir.join(format!(
        "{}.tmp{}.999",
        cache.file_name().unwrap().to_str().unwrap(),
        std::process::id()
    ));
    std::fs::write(&foreign, b"torn half-write").unwrap();
    std::fs::write(&ours, b"live write in progress").unwrap();

    lhcds_obs::set_tracing(true);
    let (_, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    lhcds_obs::set_tracing(false);
    assert_eq!(s, CacheStatus::Built);
    assert!(!foreign.exists(), "foreign tmp debris must be swept");
    assert!(ours.exists(), "this process's tmp must be left alone");

    let trace = lhcds_obs::take_trace().expect("events recorded");
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.kind == "cache-sweep" && e.detail.contains(".tmp")),
        "sweep event missing: {:?}",
        trace.events
    );

    // direct call: nothing left to sweep now
    assert_eq!(sweep_stale_tmp(&cache), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_corrupt_fault_injection_exercises_the_full_healing_path() {
    let _g = serial();
    let dir = tmp("fault_injected");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let cache = cache_path_for(&src);
    let (pristine, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(s, CacheStatus::Built);

    // the injected flip corrupts the *read* bytes: the on-disk file is
    // fine, but the loader cannot know that — it must quarantine and
    // rebuild, and the rebuilt answers must be unchanged
    fault::arm(FaultSchedule::new(21).at_hit(FaultPoint::CacheCorrupt, 1));
    let (healed, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    let fired = fault::fired(FaultPoint::CacheCorrupt);
    fault::disarm();
    assert_eq!(s, CacheStatus::Rebuilt);
    assert_eq!(healed, pristine);
    assert_eq!(fired, 1, "counters are read before disarm clears them");
    assert_eq!(quarantine_files(&dir).len(), 1);

    // disarmed, the republished snapshot is a clean hit again
    let (again, s) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(s, CacheStatus::Hit);
    assert_eq!(again, pristine);
    assert!(cache.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_load_fault_propagates_instead_of_rebuilding() {
    let _g = serial();
    let dir = tmp("index_load_fault");
    let src = dir.join("g.txt");
    std::fs::write(&src, TWO_TRIANGLES).unwrap();
    let opts = IndexBuildOptions::default();
    let (remapped, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    let (pristine, _) =
        build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();

    // an injected load failure is an *error*, not cache damage: the
    // snapshot on disk must survive untouched (a daemon maps this to a
    // `degraded` health state rather than silently rebuilding)
    fault::arm(FaultSchedule::new(33).at_hit(FaultPoint::IndexLoad, 1));
    let err = build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts)
        .expect_err("injected failure must propagate");
    fault::disarm();
    assert!(
        err.to_string().contains("injected index load failure"),
        "{err}"
    );
    assert!(
        quarantine_files(&dir).is_empty(),
        "no quarantine for I/O faults"
    );

    let (idx, s) =
        build_or_load_pattern_index_for(&src, &remapped, Pattern::Triangle, &opts).unwrap();
    assert_eq!(s, CacheStatus::Hit, "snapshot untouched by the fault");
    assert_eq!(idx, pristine);
    std::fs::remove_dir_all(&dir).ok();
}
