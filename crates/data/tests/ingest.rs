//! Edge-case battery for the real-dataset ingest subsystem: parser
//! quirks, cache corruption, and the parse → cache → reload identity
//! contract.

use std::path::{Path, PathBuf};

use lhcds_data::cache::{
    cache_path_for, load_or_build, read_cache, write_cache, CacheError, CacheStatus, SourceStamp,
};
use lhcds_data::ingest::{read_graph, read_graph_file, EdgeListFormat};
use lhcds_data::manifest::DatasetRegistry;
use lhcds_graph::{CsrGraph, GraphError};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lhcds_ingest_it").join(name);
    // leftovers from an aborted previous run must not poison this one
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/figure2.txt")
}

#[test]
fn comment_and_blank_lines_are_skipped() {
    let input = "# hash comment\n% percent comment\n// slash comment\n\n   \n0 1\n\n1 2\n";
    let g = read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap();
    assert_eq!(g.graph.n(), 3);
    assert_eq!(g.graph.m(), 2);
}

#[test]
fn duplicate_and_reversed_edges_collapse() {
    let input = "0 1\n1 0\n0 1\n1 2\n2 1\n";
    let g = read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap();
    assert_eq!(g.graph.m(), 2);
    assert_eq!(g.graph.neighbors(1), &[0, 2]);
}

#[test]
fn self_loops_are_dropped() {
    let input = "0 0\n0 1\n1 1\n";
    let g = read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap();
    assert_eq!(g.graph.m(), 1);
    // an id that ONLY ever appears in self-loops never materializes
    let input = "0 1\n5 5\n";
    let g = read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap();
    assert_eq!(g.graph.n(), 2);
    assert_eq!(g.original_ids, vec![0, 1]);
}

#[test]
fn non_contiguous_and_64bit_ids_are_remapped() {
    let big = u64::MAX - 1;
    let input = format!("1000000 3\n{big} 1000000\n3 {big}\n");
    let g = read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap();
    assert_eq!(g.graph.n(), 3);
    assert_eq!(g.graph.m(), 3);
    assert_eq!(g.original_ids, vec![3, 1_000_000, big]);
    assert_eq!(g.rank_of(big), Some(2));
    assert!(!g.is_identity());
}

#[test]
fn crlf_endings_parse_identically_to_lf() {
    let lf = "# header\n0 1\n1 2\n2 0\n";
    let crlf = "# header\r\n0 1\r\n1 2\r\n2 0\r\n";
    let a = read_graph(lf.as_bytes(), EdgeListFormat::Auto).unwrap();
    let b = read_graph(crlf.as_bytes(), EdgeListFormat::Auto).unwrap();
    assert_eq!(a, b);
}

#[test]
fn tabs_spaces_and_mixed_runs_all_delimit() {
    let input = "0\t1\n1  \t 2\n  2 0  \n";
    let g = read_graph(input.as_bytes(), EdgeListFormat::Snap).unwrap();
    assert_eq!(g.graph.m(), 3);
}

#[test]
fn malformed_lines_report_their_line_number() {
    for (input, bad_line) in [
        ("0 1\nx y\n", 2),
        ("0 1\n\n# c\n0.5 2\n", 4),
        ("only-one-token\n", 1),
        ("0 1 2\n", 1),
        ("0 -1\n", 1),
    ] {
        match read_graph(input.as_bytes(), EdgeListFormat::Auto).unwrap_err() {
            GraphError::Parse { line, .. } => assert_eq!(line, bad_line, "input {input:?}"),
            other => panic!("expected parse error for {input:?}, got {other:?}"),
        }
    }
}

#[test]
fn fixture_parses_to_exactly_figure2() {
    let g = read_graph_file(fixture_path(), EdgeListFormat::Auto).unwrap();
    assert_eq!(g.graph, lhcds_data::figure2_graph());
    assert!(g.is_identity(), "figure2 ids are already compact");
}

#[test]
fn cache_round_trip_is_byte_identical_to_direct_parse() {
    let dir = tmp_dir("round_trip");
    let src = dir.join("figure2.txt");
    std::fs::copy(fixture_path(), &src).unwrap();

    let direct = read_graph_file(&src, EdgeListFormat::Auto).unwrap();
    let (built, status) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(status, CacheStatus::Built);
    let (reloaded, status) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(status, CacheStatus::Hit);

    // the acceptance contract: parse → cache → reload reproduces the CSR
    // exactly (offsets, neighbor slab, and id table all byte-equal)
    assert_eq!(built, direct);
    assert_eq!(reloaded, direct);
    assert_eq!(
        reloaded.graph.as_parts(),
        direct.graph.as_parts(),
        "raw CSR arrays must be identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_cache_is_rejected() {
    let dir = tmp_dir("truncated");
    let src = dir.join("g.txt");
    std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
    let (_, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();

    let cache = cache_path_for(&src);
    let bytes = std::fs::read(&cache).unwrap();
    for keep in [4usize, 20, bytes.len() - 3] {
        std::fs::write(&cache, &bytes[..keep]).unwrap();
        assert!(
            matches!(
                read_cache(&cache),
                // mid-header truncation is a short read; payload
                // truncation is caught by the header-vs-file size check
                Err(CacheError::Io(_) | CacheError::SizeMismatch { .. })
            ),
            "truncation to {keep} bytes must fail the read"
        );
    }
    // load_or_build recovers by reparsing the text
    let (g, status) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(status, CacheStatus::Rebuilt);
    assert_eq!(g.graph.m(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_cache_payload_fails_the_checksum() {
    let dir = tmp_dir("corrupt");
    let src = dir.join("g.txt");
    std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
    let (_, _) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();

    let cache = cache_path_for(&src);
    let mut bytes = std::fs::read(&cache).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // flip bits in the payload tail
    std::fs::write(&cache, &bytes).unwrap();
    assert!(matches!(
        read_cache(&cache),
        Err(CacheError::ChecksumMismatch { .. })
    ));
    // and load_or_build silently falls back to the text
    let (g, status) = load_or_build(&src, EdgeListFormat::Auto, None).unwrap();
    assert_eq!(status, CacheStatus::Rebuilt);
    assert_eq!(g.graph.n(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checksummed_but_structurally_invalid_cache_is_rejected() {
    // hand-build a snapshot whose payload is internally consistent with
    // its checksum but encodes an asymmetric adjacency
    let dir = tmp_dir("invalid_structure");
    let path = dir.join("evil.csrcache");
    let good = CsrGraph::from_edge_stream([(0u64, 1u64), (1, 2)].map(Ok)).unwrap();
    write_cache(&path, &good, SourceStamp::UNKNOWN).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();

    // payload layout: 4 offsets (u64) then 4 neighbors (u32); corrupt a
    // neighbor AND recompute the checksum so only try_from_parts can object
    let payload_at = 8 + 4 + 8 * 6;
    let neighbors_at = payload_at + 4 * 8;
    bytes[neighbors_at] = 2; // vertex 0 now lists neighbor 2, but 2 does not list 0
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[payload_at..] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[payload_at - 8..payload_at].copy_from_slice(&h.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    match read_cache(&path) {
        Err(CacheError::Graph(GraphError::InvalidCsr(msg))) => {
            assert!(msg.contains("symmetric"), "{msg}")
        }
        other => panic!("expected InvalidCsr, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explicit_cache_path_is_respected() {
    let dir = tmp_dir("explicit_path");
    let src = dir.join("g.txt");
    let cache = dir.join("elsewhere.bin");
    std::fs::write(&src, "0 1\n").unwrap();
    let (_, status) = load_or_build(&src, EdgeListFormat::Auto, Some(&cache)).unwrap();
    assert_eq!(status, CacheStatus::Built);
    assert!(cache.is_file());
    assert!(!cache_path_for(&src).exists(), "default path untouched");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_end_to_end_on_the_fixture() {
    let dir = tmp_dir("registry_e2e");
    std::fs::copy(fixture_path(), dir.join("figure2.txt")).unwrap();
    let manifest = "[figure2]\nabbr = \"F2\"\npath = \"figure2.txt\"\nvertices = 20\nedges = 39\n";
    std::fs::write(dir.join("datasets.toml"), manifest).unwrap();

    let reg = DatasetRegistry::load(&dir.join("datasets.toml")).unwrap();
    let entry = reg.get("F2").unwrap();
    assert!(entry.is_present());
    let (g, status) = entry.load().unwrap();
    assert_eq!(status, CacheStatus::Built);
    assert_eq!(g.graph, lhcds_data::figure2_graph());
    let (_, status) = entry.load().unwrap();
    assert_eq!(status, CacheStatus::Hit);
    std::fs::remove_dir_all(&dir).ok();
}
