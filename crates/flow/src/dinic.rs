//! Dinic's maximum-flow algorithm on `i128` capacities.
//!
//! Standard level-graph + blocking-flow implementation with paired arcs
//! (`e ^ 1` is the reverse of `e`). In addition to the flow value it
//! exposes both canonical minimum cuts:
//!
//! * [`Dinic::min_cut_source_side`] — vertices reachable from `s` in the
//!   residual graph (the inclusion-*minimal* source side), and
//! * [`Dinic::max_cut_source_side`] — vertices that cannot reach `t` in
//!   the residual graph (the inclusion-*maximal* source side).
//!
//! `DeriveCompact` (Theorem 5 of the LhCDS paper) needs the maximal one:
//! the union of all maximal `ρ`-compact subgraphs is the *largest*
//! maximizer of `|Ψh(S)| − ρ|S|`.

/// Arc identifier returned by [`Dinic::add_edge`].
pub type ArcId = usize;

/// Process-wide count of [`Dinic::max_flow`] invocations.
///
/// This is observability, not control flow: callers that promise a
/// *flow-free* path (the query side of `lhcds-core`'s decomposition
/// index, served by `lhcds-service`) prove the promise in tests by
/// snapshotting this counter around the queried region and asserting it
/// never moved. Relaxed ordering is enough — tests only compare values
/// taken on the asserting thread before and after fully-joined work.
static MAX_FLOW_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total number of max-flow solves this process has run so far.
///
/// ```
/// use lhcds_flow::{max_flow_invocations, Dinic};
///
/// let before = max_flow_invocations();
/// let mut net = Dinic::new(2);
/// net.add_edge(0, 1, 3);
/// net.max_flow(0, 1);
/// assert!(max_flow_invocations() > before);
/// ```
pub fn max_flow_invocations() -> u64 {
    MAX_FLOW_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

#[derive(Debug, Clone)]
struct Arc {
    to: u32,
    cap: i128,
}

/// Max-flow solver. Build the network with [`Dinic::add_edge`], then call
/// [`Dinic::max_flow`]; cut queries are valid afterwards.
#[derive(Debug, Clone)]
pub struct Dinic {
    arcs: Vec<Arc>,
    adj: Vec<Vec<u32>>,
    level: Vec<u32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Creates a network with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        Dinic {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from -> to` with capacity `cap` (and its
    /// implicit reverse arc of capacity 0). Returns the arc id; the
    /// residual capacity can later be read with [`Dinic::residual`].
    ///
    /// # Panics
    /// Panics on negative capacity or out-of-range endpoints.
    pub fn add_edge(&mut self, from: u32, to: u32, cap: i128) -> ArcId {
        assert!(cap >= 0, "negative capacity");
        assert!((from as usize) < self.adj.len() && (to as usize) < self.adj.len());
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adj[from as usize].push(id as u32);
        self.adj[to as usize].push(id as u32 + 1);
        id
    }

    /// Remaining capacity of arc `id`.
    pub fn residual(&self, id: ArcId) -> i128 {
        self.arcs[id].cap
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.iter_mut().for_each(|l| *l = u32::MAX);
        let mut queue = std::collections::VecDeque::new();
        self.level[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                let arc = &self.arcs[eid as usize];
                if arc.cap > 0 && self.level[arc.to as usize] == u32::MAX {
                    self.level[arc.to as usize] = self.level[v as usize] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t as usize] != u32::MAX
    }

    fn dfs(&mut self, v: u32, t: u32, pushed: i128) -> i128 {
        if v == t {
            return pushed;
        }
        while self.iter[v as usize] < self.adj[v as usize].len() {
            let eid = self.adj[v as usize][self.iter[v as usize]] as usize;
            let (to, cap) = (self.arcs[eid].to, self.arcs[eid].cap);
            if cap > 0 && self.level[to as usize] == self.level[v as usize] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.arcs[eid].cap -= d;
                    self.arcs[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[v as usize] += 1;
        }
        0
    }

    /// Computes the maximum `s`–`t` flow. May be called once per network.
    pub fn max_flow(&mut self, s: u32, t: u32) -> i128 {
        assert_ne!(s, t, "source equals sink");
        MAX_FLOW_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut flow = 0i128;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, i128::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Minimal source side of a minimum cut: nodes reachable from `s` in
    /// the residual graph. Call after [`Dinic::max_flow`].
    pub fn min_cut_source_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                let arc = &self.arcs[eid as usize];
                if arc.cap > 0 && !seen[arc.to as usize] {
                    seen[arc.to as usize] = true;
                    queue.push_back(arc.to);
                }
            }
        }
        seen
    }

    /// Maximal source side of a minimum cut: the complement of the set of
    /// nodes that can reach `t` in the residual graph. Call after
    /// [`Dinic::max_flow`].
    pub fn max_cut_source_side(&self, t: u32) -> Vec<bool> {
        // Backward BFS from t across arcs with positive residual pointing
        // *into* the current set: arc (w -> v) is usable iff its residual
        // is positive; it lives as the pair of some arc in adj[v].
        let mut reaches_t = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        reaches_t[t as usize] = true;
        queue.push_back(t);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                // eid: v -> w; its pair (eid ^ 1): w -> v.
                let w = self.arcs[eid as usize].to;
                let pair = (eid ^ 1) as usize;
                if self.arcs[pair].cap > 0 && !reaches_t[w as usize] {
                    reaches_t[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        reaches_t.iter().map(|&r| !r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 5);
        assert_eq!(d.max_flow(0, 1), 5);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths of bottleneck 10 and 4 plus a cross arc.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10);
        d.add_edge(0, 2, 4);
        d.add_edge(1, 2, 2);
        d.add_edge(1, 3, 8);
        d.add_edge(2, 3, 10);
        assert_eq!(d.max_flow(0, 3), 14);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 7);
        assert_eq!(d.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_sides_bracket_every_min_cut() {
        // Two parallel bottlenecks so several min cuts exist:
        // 0 -> 1 (cap 1) -> 2 (cap 1) -> 3; min cut value 1.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3), 1);
        let lo = d.min_cut_source_side(0);
        let hi = d.max_cut_source_side(3);
        // minimal side = {0}; maximal side = {0, 1, 2}.
        assert_eq!(lo, vec![true, false, false, false]);
        assert_eq!(hi, vec![true, true, true, false]);
        // nesting invariant
        for i in 0..4 {
            assert!(!lo[i] || hi[i]);
        }
    }

    #[test]
    fn cut_capacity_equals_flow() {
        let mut d = Dinic::new(6);
        let caps = [
            (0u32, 1u32, 16i128),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ];
        let mut d2 = Dinic::new(6);
        for &(u, v, c) in &caps {
            d.add_edge(u, v, c);
            d2.add_edge(u, v, c);
        }
        let f = d.max_flow(0, 5);
        assert_eq!(f, 23); // CLRS example
        let side = d.min_cut_source_side(0);
        let cut: i128 = caps
            .iter()
            .filter(|&&(u, v, _)| side[u as usize] && !side[v as usize])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut, f);
        // maximal side gives the same cut value
        let _ = d2.max_flow(0, 5);
        let side2 = d2.max_cut_source_side(5);
        let cut2: i128 = caps
            .iter()
            .filter(|&&(u, v, _)| side2[u as usize] && !side2[v as usize])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut2, f);
    }

    #[test]
    fn huge_capacities_do_not_overflow() {
        let big = i128::MAX / 4;
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, big);
        d.add_edge(1, 2, big);
        assert_eq!(d.max_flow(0, 2), big);
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_rejected() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, -1);
    }

    #[test]
    fn residual_tracks_flow() {
        let mut d = Dinic::new(2);
        let e = d.add_edge(0, 1, 5);
        let _ = d.max_flow(0, 1);
        assert_eq!(d.residual(e), 0);
    }

    /// Randomized check: flow conservation at inner nodes.
    #[test]
    fn conservation_on_random_networks() {
        // simple LCG for determinism without external deps
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let n = 8;
            let mut arcs = Vec::new();
            let mut d = Dinic::new(n);
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if u != v && rng() % 3 == 0 {
                        let c = (rng() % 20) as i128;
                        let id = d.add_edge(u, v, c);
                        arcs.push((u, v, c, id));
                    }
                }
            }
            let f = d.max_flow(0, (n - 1) as u32);
            assert!(f >= 0);
            // net outflow per node
            let mut net = vec![0i128; n];
            for &(u, v, c, id) in &arcs {
                let flow = c - d.residual(id);
                net[u as usize] += flow;
                net[v as usize] -= flow;
            }
            assert_eq!(net[0], f);
            assert_eq!(net[n - 1], -f);
            for x in &net[1..n - 1] {
                assert_eq!(*x, 0);
            }
        }
    }
}
