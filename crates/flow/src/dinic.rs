//! Dinic's maximum-flow algorithm on `i128` capacities.
//!
//! Standard level-graph + blocking-flow implementation with paired arcs
//! (`e ^ 1` is the reverse of `e`). In addition to the flow value it
//! exposes both canonical minimum cuts:
//!
//! * [`Dinic::min_cut_source_side`] — vertices reachable from `s` in the
//!   residual graph (the inclusion-*minimal* source side), and
//! * [`Dinic::max_cut_source_side`] — vertices that cannot reach `t` in
//!   the residual graph (the inclusion-*maximal* source side).
//!
//! `DeriveCompact` (Theorem 5 of the LhCDS paper) needs the maximal one:
//! the union of all maximal `ρ`-compact subgraphs is the *largest*
//! maximizer of `|Ψh(S)| − ρ|S|`.

use crate::stats;

/// Arc identifier returned by [`Dinic::add_edge`].
pub type ArcId = usize;

#[derive(Debug, Clone)]
struct Arc {
    to: u32,
    cap: i128,
}

/// Max-flow solver. Build the network with [`Dinic::add_edge`], then call
/// [`Dinic::max_flow`]; cut queries are valid afterwards.
///
/// The solver is *restartable*: capacities can be re-tuned between
/// solves with [`Dinic::set_capacity`], the accumulated flow can be
/// discarded with [`Dinic::reset_flow`], and [`Dinic::max_flow`] always
/// continues from whatever feasible flow the network currently holds.
/// [`crate::ParametricNetwork`] builds the monotone warm-start policy on
/// top of these primitives. BFS/DFS scratch state (`level`, `iter`, the
/// BFS queue) lives in the struct and is reused across solves — a
/// network that is solved at many thresholds allocates its scratch
/// once.
#[derive(Debug, Clone)]
pub struct Dinic {
    arcs: Vec<Arc>,
    adj: Vec<Vec<u32>>,
    level: Vec<u32>,
    iter: Vec<usize>,
    queue: std::collections::VecDeque<u32>,
    // Generation-stamped scratch for retraction walks: node v is on the
    // current walk iff walk_gen[v] == gen, at path position walk_pos[v].
    walk_gen: Vec<u64>,
    walk_pos: Vec<usize>,
    gen: u64,
}

impl Dinic {
    /// Creates a network with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        stats::NETWORKS_BUILT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Dinic {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
            queue: std::collections::VecDeque::new(),
            walk_gen: vec![0; n],
            walk_pos: vec![0; n],
            gen: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from -> to` with capacity `cap` (and its
    /// implicit reverse arc of capacity 0). Returns the arc id; the
    /// residual capacity can later be read with [`Dinic::residual`].
    ///
    /// # Panics
    /// Panics on negative capacity or out-of-range endpoints.
    pub fn add_edge(&mut self, from: u32, to: u32, cap: i128) -> ArcId {
        assert!(cap >= 0, "negative capacity");
        assert!((from as usize) < self.adj.len() && (to as usize) < self.adj.len());
        stats::ARCS_BUILT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adj[from as usize].push(id as u32);
        self.adj[to as usize].push(id as u32 + 1);
        id
    }

    /// Remaining capacity of arc `id`.
    pub fn residual(&self, id: ArcId) -> i128 {
        self.arcs[id].cap
    }

    /// Flow currently carried by forward arc `id` (an even id returned
    /// by [`Dinic::add_edge`]): the residual of its paired reverse arc,
    /// whose initial capacity is always 0.
    pub fn current_flow(&self, id: ArcId) -> i128 {
        debug_assert!(id.is_multiple_of(2), "flow is tracked on forward arcs");
        self.arcs[id ^ 1].cap
    }

    /// Total capacity of forward arc `id` (flow + remaining residual).
    pub fn total_capacity(&self, id: ArcId) -> i128 {
        debug_assert!(id.is_multiple_of(2), "capacity is tracked on forward arcs");
        self.arcs[id].cap + self.arcs[id ^ 1].cap
    }

    /// Re-tunes the *total* capacity of forward arc `id`, preserving the
    /// flow it currently carries. Returns the amount of flow that had to
    /// be cancelled: 0 when `cap` still covers the current flow;
    /// otherwise the excess is *saturatingly cancelled* — the arc's flow
    /// is clamped down to `cap`, which leaves flow conservation violated
    /// at its endpoints until the caller runs [`Dinic::reset_flow`].
    /// A warm restart is therefore only sound when every `set_capacity`
    /// in the batch returned 0 (the monotone case);
    /// [`crate::ParametricNetwork`] checks exactly this before deciding
    /// warm vs cold.
    ///
    /// # Panics
    /// Panics on negative capacity or a non-forward arc id.
    pub fn set_capacity(&mut self, id: ArcId, cap: i128) -> i128 {
        assert!(cap >= 0, "negative capacity");
        assert!(
            id.is_multiple_of(2) && id < self.arcs.len(),
            "not a forward arc id"
        );
        let flow = self.arcs[id ^ 1].cap;
        if flow <= cap {
            self.arcs[id].cap = cap - flow;
            0
        } else {
            self.arcs[id].cap = 0;
            self.arcs[id ^ 1].cap = cap;
            flow - cap
        }
    }

    /// Discards all flow, restoring every arc to its current total
    /// capacity at zero flow. After this the network is exactly what a
    /// freshly built copy with the same capacities would be.
    pub fn reset_flow(&mut self) {
        for pair in self.arcs.chunks_exact_mut(2) {
            pair[0].cap += pair[1].cap;
            pair[1].cap = 0;
        }
    }

    /// Sets forward arc `id` to total capacity `cap` carrying exactly
    /// `flow` (`0 ≤ flow ≤ cap`). Used by the parametric warm start to
    /// install a rescaled retained flow; callers must keep the overall
    /// assignment a conserving s–t flow.
    pub(crate) fn set_state(&mut self, id: ArcId, cap: i128, flow: i128) {
        debug_assert!(id.is_multiple_of(2));
        debug_assert!(flow >= 0 && flow <= cap);
        self.arcs[id].cap = cap - flow;
        self.arcs[id ^ 1].cap = flow;
    }

    /// Net flow currently entering node `v` (inflow minus outflow over
    /// all incident arcs). Zero at every inner node of a conserving
    /// flow; at the sink it equals the total flow value.
    pub fn net_flow_into(&self, v: u32) -> i128 {
        let mut net = 0i128;
        for &eid in &self.adj[v as usize] {
            let eid = eid as usize;
            if eid & 1 == 1 {
                // reverse of an arc into v: its residual is that arc's flow
                net += self.arcs[eid].cap;
            } else {
                // forward arc out of v: its flow is the pair's residual
                net -= self.arcs[eid ^ 1].cap;
            }
        }
        net
    }

    /// Lowers the *total* capacity of forward arc `id` to `cap` while
    /// keeping the network a valid conserving `s`–`t` flow: any excess
    /// the arc carried beyond `cap` is cancelled along the retained
    /// flow's own support paths — backwards from the arc's tail towards
    /// `s`, forwards from its head towards `t`, or around flow cycles —
    /// so [`Dinic::max_flow`] can continue warm from the result. This is
    /// the GGT never-reset primitive: unlike [`Dinic::set_capacity`],
    /// conservation is restored here, and the work is proportional to
    /// the flow cancelled rather than the network size.
    pub(crate) fn retract_arc(&mut self, id: ArcId, cap: i128, s: u32, t: u32) {
        debug_assert!(id.is_multiple_of(2) && cap >= 0);
        let flow = self.current_flow(id);
        if flow <= cap {
            self.set_state(id, cap, flow);
            return;
        }
        let excess = flow - cap;
        let head = self.arcs[id].to;
        let tail = self.arcs[id ^ 1].to;
        self.set_state(id, cap, cap);
        // `tail` now has `excess` more inflow than outflow, `head` the
        // reverse (the source/sink absorb imbalance by definition).
        let mut surplus = if tail == s { 0 } else { excess };
        let mut deficit = if head == t { 0 } else { excess };
        // Backward walks from the tail terminate at s, at the deficit
        // head (cancelling a head ⇝ tail sub-path fixes both ends), or
        // on a flow cycle. A pseudoflow-decomposition argument shows no
        // other stopping point exists while the imbalance persists.
        while surplus > 0 {
            let (m, ended_at_head) = self.cancel_walk(
                tail,
                s,
                (deficit > 0).then_some(head),
                surplus,
                deficit,
                true,
            );
            surplus -= m;
            if ended_at_head {
                deficit -= m;
            }
        }
        // Once the surplus is gone the only imbalanced node is `head`,
        // so forward walks can only terminate at t or on a cycle.
        while deficit > 0 {
            let (m, _) = self.cancel_walk(head, t, None, deficit, 0, false);
            deficit -= m;
        }
        // A walk may itself route through the retracted arc (it is an
        // in-arc of `head`) and cancel below `cap`; that is still a
        // feasible conserving flow, which is all retraction promises.
        debug_assert!(self.current_flow(id) <= cap);
    }

    /// One retraction walk from `start` along the positive-flow support
    /// (`backward`: against the flow direction via in-arcs; otherwise
    /// with it via out-arcs), cancelling flow on what it finds:
    ///
    /// * reaching `stop` (or `alt`, when set) cancels the walked path by
    ///   `min(path flows, limit[, alt_limit])` and returns that amount
    ///   plus whether `alt` ended the walk;
    /// * closing a flow cycle cancels the cycle by its own bottleneck
    ///   (zeroing at least one arc, which guarantees progress) and
    ///   returns `(0, false)` so the caller retries.
    fn cancel_walk(
        &mut self,
        start: u32,
        stop: u32,
        alt: Option<u32>,
        limit: i128,
        alt_limit: i128,
        backward: bool,
    ) -> (i128, bool) {
        self.gen += 1;
        self.walk_gen[start as usize] = self.gen;
        self.walk_pos[start as usize] = 0;
        // path[k] is the forward arc between walk nodes k and k+1
        // (carrying flow towards node k when walking backward, away
        // from it when walking forward).
        let mut path: Vec<ArcId> = Vec::new();
        let mut v = start;
        loop {
            if v == stop || alt == Some(v) {
                let ended_at_alt = v != stop;
                let mut m = if ended_at_alt {
                    limit.min(alt_limit)
                } else {
                    limit
                };
                for &a in &path {
                    m = m.min(self.current_flow(a));
                }
                debug_assert!(m > 0, "retraction walk cancelled nothing");
                for &a in &path {
                    self.cancel_flow(a, m);
                }
                return (m, ended_at_alt);
            }
            let mut next_arc = None;
            for &eid in &self.adj[v as usize] {
                let eid = eid as usize;
                let is_in_arc = (eid & 1) == 1;
                if is_in_arc == backward && self.arcs[if backward { eid } else { eid ^ 1 }].cap > 0
                {
                    next_arc = Some(if backward { eid ^ 1 } else { eid });
                    break;
                }
            }
            let fwd = next_arc.expect("conservation guarantees a support arc");
            let w = if backward {
                self.arcs[fwd ^ 1].to // the forward arc's tail
            } else {
                self.arcs[fwd].to
            };
            if self.walk_gen[w as usize] == self.gen {
                // flow cycle: path[pos(w)..] plus fwd closes it
                let i = self.walk_pos[w as usize];
                let mut m = self.current_flow(fwd);
                for &a in &path[i..] {
                    m = m.min(self.current_flow(a));
                }
                self.cancel_flow(fwd, m);
                for &a in &path[i..] {
                    self.cancel_flow(a, m);
                }
                return (0, false);
            }
            path.push(fwd);
            self.walk_gen[w as usize] = self.gen;
            self.walk_pos[w as usize] = path.len();
            v = w;
        }
    }

    /// Removes `m` units of flow from forward arc `id`.
    fn cancel_flow(&mut self, id: ArcId, m: i128) {
        self.arcs[id].cap += m;
        self.arcs[id ^ 1].cap -= m;
        debug_assert!(self.arcs[id ^ 1].cap >= 0, "cancelled more than carried");
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        let Dinic {
            arcs,
            adj,
            level,
            queue,
            ..
        } = self;
        level.iter_mut().for_each(|l| *l = u32::MAX);
        queue.clear();
        level[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &adj[v as usize] {
                let arc = &arcs[eid as usize];
                if arc.cap > 0 && level[arc.to as usize] == u32::MAX {
                    level[arc.to as usize] = level[v as usize] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        level[t as usize] != u32::MAX
    }

    fn dfs(&mut self, v: u32, t: u32, pushed: i128) -> i128 {
        if v == t {
            return pushed;
        }
        while self.iter[v as usize] < self.adj[v as usize].len() {
            let eid = self.adj[v as usize][self.iter[v as usize]] as usize;
            let (to, cap) = (self.arcs[eid].to, self.arcs[eid].cap);
            if cap > 0 && self.level[to as usize] == self.level[v as usize] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.arcs[eid].cap -= d;
                    self.arcs[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[v as usize] += 1;
        }
        0
    }

    /// Computes the maximum `s`–`t` flow, continuing from whatever
    /// feasible flow the network currently holds (zero on a fresh
    /// network). Returns the flow *added by this invocation*; the cut
    /// queries below always describe the resulting maximum flow.
    pub fn max_flow(&mut self, s: u32, t: u32) -> i128 {
        assert_ne!(s, t, "source equals sink");
        stats::MAX_FLOW_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut flow = 0i128;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, i128::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Minimal source side of a minimum cut: nodes reachable from `s` in
    /// the residual graph. Call after [`Dinic::max_flow`].
    pub fn min_cut_source_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                let arc = &self.arcs[eid as usize];
                if arc.cap > 0 && !seen[arc.to as usize] {
                    seen[arc.to as usize] = true;
                    queue.push_back(arc.to);
                }
            }
        }
        seen
    }

    /// Maximal source side of a minimum cut: the complement of the set of
    /// nodes that can reach `t` in the residual graph. Call after
    /// [`Dinic::max_flow`].
    pub fn max_cut_source_side(&self, t: u32) -> Vec<bool> {
        // Backward BFS from t across arcs with positive residual pointing
        // *into* the current set: arc (w -> v) is usable iff its residual
        // is positive; it lives as the pair of some arc in adj[v].
        let mut reaches_t = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        reaches_t[t as usize] = true;
        queue.push_back(t);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                // eid: v -> w; its pair (eid ^ 1): w -> v.
                let w = self.arcs[eid as usize].to;
                let pair = (eid ^ 1) as usize;
                if self.arcs[pair].cap > 0 && !reaches_t[w as usize] {
                    reaches_t[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        reaches_t.iter().map(|&r| !r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 5);
        assert_eq!(d.max_flow(0, 1), 5);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths of bottleneck 10 and 4 plus a cross arc.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10);
        d.add_edge(0, 2, 4);
        d.add_edge(1, 2, 2);
        d.add_edge(1, 3, 8);
        d.add_edge(2, 3, 10);
        assert_eq!(d.max_flow(0, 3), 14);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 7);
        assert_eq!(d.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_sides_bracket_every_min_cut() {
        // Two parallel bottlenecks so several min cuts exist:
        // 0 -> 1 (cap 1) -> 2 (cap 1) -> 3; min cut value 1.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3), 1);
        let lo = d.min_cut_source_side(0);
        let hi = d.max_cut_source_side(3);
        // minimal side = {0}; maximal side = {0, 1, 2}.
        assert_eq!(lo, vec![true, false, false, false]);
        assert_eq!(hi, vec![true, true, true, false]);
        // nesting invariant
        for i in 0..4 {
            assert!(!lo[i] || hi[i]);
        }
    }

    #[test]
    fn cut_capacity_equals_flow() {
        let mut d = Dinic::new(6);
        let caps = [
            (0u32, 1u32, 16i128),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ];
        let mut d2 = Dinic::new(6);
        for &(u, v, c) in &caps {
            d.add_edge(u, v, c);
            d2.add_edge(u, v, c);
        }
        let f = d.max_flow(0, 5);
        assert_eq!(f, 23); // CLRS example
        let side = d.min_cut_source_side(0);
        let cut: i128 = caps
            .iter()
            .filter(|&&(u, v, _)| side[u as usize] && !side[v as usize])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut, f);
        // maximal side gives the same cut value
        let _ = d2.max_flow(0, 5);
        let side2 = d2.max_cut_source_side(5);
        let cut2: i128 = caps
            .iter()
            .filter(|&&(u, v, _)| side2[u as usize] && !side2[v as usize])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut2, f);
    }

    #[test]
    fn huge_capacities_do_not_overflow() {
        let big = i128::MAX / 4;
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, big);
        d.add_edge(1, 2, big);
        assert_eq!(d.max_flow(0, 2), big);
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_rejected() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, -1);
    }

    #[test]
    fn residual_tracks_flow() {
        let mut d = Dinic::new(2);
        let e = d.add_edge(0, 1, 5);
        let _ = d.max_flow(0, 1);
        assert_eq!(d.residual(e), 0);
    }

    /// Satellite contract: repeated `max_flow` + `reset_flow` rounds on
    /// one network agree with fresh networks, across capacity re-tunes
    /// and for both min-cut sides.
    #[test]
    fn reset_flow_rounds_agree_with_fresh_networks() {
        // s=0 → {1,2} → t=3 diamond with a cross arc; re-tune the two
        // sink arcs through several schedules.
        let arcs = [(0u32, 1u32), (0, 2), (1, 2), (1, 3), (2, 3)];
        let schedules: [[i128; 5]; 4] = [
            [10, 4, 2, 8, 10],
            [1, 1, 1, 1, 1],
            [5, 0, 3, 7, 2],
            [10, 4, 2, 8, 10], // back to the first: must reproduce it
        ];
        let mut reused = Dinic::new(4);
        let ids: Vec<ArcId> = arcs
            .iter()
            .map(|&(u, v)| reused.add_edge(u, v, 0))
            .collect();
        for caps in schedules {
            reused.reset_flow();
            for (&id, &c) in ids.iter().zip(&caps) {
                assert_eq!(reused.set_capacity(id, c), 0, "no flow after reset");
            }
            let mut fresh = Dinic::new(4);
            for (&(u, v), &c) in arcs.iter().zip(&caps) {
                fresh.add_edge(u, v, c);
            }
            assert_eq!(reused.max_flow(0, 3), fresh.max_flow(0, 3), "{caps:?}");
            assert_eq!(
                reused.min_cut_source_side(0),
                fresh.min_cut_source_side(0),
                "{caps:?}"
            );
            assert_eq!(
                reused.max_cut_source_side(3),
                fresh.max_cut_source_side(3),
                "{caps:?}"
            );
        }
    }

    #[test]
    fn set_capacity_preserves_flow_and_reports_excess() {
        let mut d = Dinic::new(2);
        let e = d.add_edge(0, 1, 5);
        assert_eq!(d.max_flow(0, 1), 5);
        assert_eq!(d.current_flow(e), 5);
        // raising capacity keeps the flow and exposes new residual
        assert_eq!(d.set_capacity(e, 8), 0);
        assert_eq!(d.current_flow(e), 5);
        assert_eq!(d.residual(e), 3);
        assert_eq!(d.total_capacity(e), 8);
        // a follow-up solve only pushes the difference
        assert_eq!(d.max_flow(0, 1), 3);
        // lowering below the carried flow saturates and reports excess
        assert_eq!(d.set_capacity(e, 2), 6);
        assert_eq!(d.current_flow(e), 2);
        assert_eq!(d.residual(e), 0);
        // reset restores a clean zero-flow network at the new capacity
        d.reset_flow();
        assert_eq!(d.current_flow(e), 0);
        assert_eq!(d.total_capacity(e), 2);
        assert_eq!(d.max_flow(0, 1), 2);
    }

    #[test]
    fn warm_continuation_reaches_the_same_maximum() {
        // solve at small sink capacity, enlarge, re-solve: total flow
        // equals a single fresh solve at the final capacities
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 10);
        let vt = d.add_edge(1, 2, 4);
        let first = d.max_flow(0, 2);
        assert_eq!(first, 4);
        assert_eq!(d.set_capacity(vt, 9), 0);
        let added = d.max_flow(0, 2);
        assert_eq!(first + added, 9);
        assert_eq!(d.min_cut_source_side(0), vec![true, true, false]);
    }

    #[test]
    fn retract_arc_keeps_a_feasible_conserving_flow() {
        // diamond with a cross arc; saturate, then retract one sink arc
        let mut d = Dinic::new(4);
        let _s1 = d.add_edge(0, 1, 10);
        let _s2 = d.add_edge(0, 2, 4);
        d.add_edge(1, 2, 2);
        let e13 = d.add_edge(1, 3, 8);
        let e23 = d.add_edge(2, 3, 10);
        assert_eq!(d.max_flow(0, 3), 14);
        d.retract_arc(e13, 3, 0, 3);
        // conservation restored at the inner nodes, flow within caps
        assert_eq!(d.net_flow_into(1), 0);
        assert_eq!(d.net_flow_into(2), 0);
        assert!(d.current_flow(e13) <= 3);
        assert!(d.current_flow(e23) <= 10);
        // warm continuation reaches the fresh optimum at the new caps
        let warm_total = -d.net_flow_into(0) + d.max_flow(0, 3);
        let mut fresh = Dinic::new(4);
        fresh.add_edge(0, 1, 10);
        fresh.add_edge(0, 2, 4);
        fresh.add_edge(1, 2, 2);
        fresh.add_edge(1, 3, 3);
        fresh.add_edge(2, 3, 10);
        assert_eq!(warm_total, fresh.max_flow(0, 3));
        assert_eq!(d.net_flow_into(3), warm_total);
        assert_eq!(d.min_cut_source_side(0), fresh.min_cut_source_side(0));
        assert_eq!(d.max_cut_source_side(3), fresh.max_cut_source_side(3));
    }

    /// Randomized retraction: after lowering a batch of arcs on a solved
    /// network, conservation holds everywhere, every arc is within its
    /// new capacity, and a warm re-solve matches a fresh network — for
    /// both canonical cut sides.
    #[test]
    fn random_retractions_match_fresh_networks() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n = 9;
            let (s, t) = (0u32, (n - 1) as u32);
            let mut d = Dinic::new(n);
            let mut arcs = Vec::new();
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    // keep s source-only and t sink-only, like the
                    // instance networks retraction is built for
                    if u != v && v != s && u != t && rng() % 3 == 0 {
                        let c = (rng() % 20) as i128;
                        let id = d.add_edge(u, v, c);
                        arcs.push((u, v, c, id));
                    }
                }
            }
            let _ = d.max_flow(s, t);
            // lower a random subset of caps, retracting each in turn
            let mut caps: Vec<i128> = arcs.iter().map(|&(_, _, c, _)| c).collect();
            for (k, &(_, _, c, id)) in arcs.iter().enumerate() {
                if rng() % 2 == 0 {
                    let nc = (rng() as i128).rem_euclid(c + 1);
                    d.retract_arc(id, nc, s, t);
                    caps[k] = nc;
                }
            }
            // conservation + feasibility before re-solving
            for v in 1..(n - 1) as u32 {
                assert_eq!(d.net_flow_into(v), 0, "round {round}");
            }
            for (k, &(_, _, _, id)) in arcs.iter().enumerate() {
                assert!(d.current_flow(id) >= 0 && d.current_flow(id) <= caps[k]);
            }
            // warm re-solve matches a fresh network at the new caps
            let mut fresh = Dinic::new(n);
            for (k, &(u, v, _, _)) in arcs.iter().enumerate() {
                fresh.add_edge(u, v, caps[k]);
            }
            let ff = fresh.max_flow(s, t);
            let _ = d.max_flow(s, t);
            assert_eq!(d.net_flow_into(t), ff, "round {round}");
            assert_eq!(
                d.min_cut_source_side(s),
                fresh.min_cut_source_side(s),
                "round {round}"
            );
            assert_eq!(
                d.max_cut_source_side(t),
                fresh.max_cut_source_side(t),
                "round {round}"
            );
        }
    }

    /// Randomized check: flow conservation at inner nodes.
    #[test]
    fn conservation_on_random_networks() {
        // simple LCG for determinism without external deps
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let n = 8;
            let mut arcs = Vec::new();
            let mut d = Dinic::new(n);
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if u != v && rng() % 3 == 0 {
                        let c = (rng() % 20) as i128;
                        let id = d.add_edge(u, v, c);
                        arcs.push((u, v, c, id));
                    }
                }
            }
            let f = d.max_flow(0, (n - 1) as u32);
            assert!(f >= 0);
            // net outflow per node
            let mut net = vec![0i128; n];
            for &(u, v, c, id) in &arcs {
                let flow = c - d.residual(id);
                net[u as usize] += flow;
                net[v as usize] -= flow;
            }
            assert_eq!(net[0], f);
            assert_eq!(net[n - 1], -f);
            for x in &net[1..n - 1] {
                assert_eq!(*x, 0);
            }
        }
    }
}
