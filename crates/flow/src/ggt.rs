//! Gallo–Grigoriadis–Tarjan divide-and-conquer over the principal
//! partition of a parametric network.
//!
//! ## The parametric family
//!
//! A [`GgtSolver`] owns one [`ParametricNetwork`] whose *ladder nodes*
//! each carry two terminal arcs: a constant-capacity source arc
//! `s → v` (capacity `src_cap`, expressed at the base scale) and a
//! sink arc `v → t` whose capacity grows linearly with the parameter,
//! `λ · slope`. Arbitrary static arcs connect ladder nodes and any
//! auxiliary gadget nodes. This is exactly the shape of the LhCDS
//! instance networks (Figure 6 of the paper): `src_cap` is the
//! clique-degree, `slope = h`, and the gadget nodes are the h-cliques.
//!
//! As λ grows, source capacities are constant and sink capacities
//! non-decreasing, so the canonical *maximal* min-cut source side
//! `S_max(λ)` can only shrink — the GGT monotone regime. Each node `v`
//! therefore has a single breakpoint `λ_v = max { λ : v ∈ S_max(λ) }`,
//! and the nested family of distinct `S_max` values is the network's
//! *principal partition*. For the LhCDS instance network the
//! breakpoints are precisely the marginal densities of the dense
//! decomposition and the partition classes are its levels.
//!
//! ## One flow, never reset
//!
//! [`GgtSolver::principal_partition`] recovers every breakpoint with a
//! divide-and-conquer over λ-intervals `[lo, hi]`:
//!
//! ```text
//! recurse(lo, S_max(lo), hi, S_max(hi)):
//!   stop if the interval's cut lines meet at a single breakpoint
//!   λ* ← crossing of the two cut lines          (exact rational)
//!   pin S_max(hi) → source, V ∖ S_max(lo) → sink   ("contraction")
//!   solve at λ* on the shared network            (retract, not reset)
//!   recurse(λ*, hi) first — λ only grows: warm starts
//!   recurse(lo, λ*) after — λ drops back: flow retraction
//! ```
//!
//! Every solve runs on the *same* [`ParametricNetwork`] under
//! [`ReusePolicy::Retract`], so the flow is never thrown away: λ
//! increases rescale and keep it, λ decreases cancel only the
//! infeasible excess along its own flow paths. Pinning substitutes for
//! GGT's graph contraction: an already-decided side keeps an infinite
//! terminal arc, so the solver never cuts through it again and the
//! remaining work concentrates on the undecided `S_max(lo) ∖ S_max(hi)`
//! strip — which shrinks strictly on every split. A run therefore
//! builds exactly **one** network and performs at most `2·(levels)`
//! cheap incremental solves, versus one full network + solve per probe
//! for the rebuild-per-probe ladder. [`crate::flow_stats`] reports the
//! recursion telemetry (`ggt_*` counters).
//!
//! Correctness is structural, not numeric: pinned solves return the
//! same canonical maximal side the unpinned network would (pinning a
//! subset of `S_max` to the source, or of its complement to the sink,
//! changes no pin-respecting cut value and `S_max` respects the pins),
//! and the interval endpoints' cut lines are exact rationals, so the
//! emitted ladder is bit-identical to the rebuild-per-probe one.
//!
//! ## Parallel recursion
//!
//! After a strict split at λ* the `[λ*, hi]` and `[lo, λ*]` halves are
//! independent subproblems: each solves only inside its own undecided
//! strip (everything else is pinned) and neither reads the other's
//! results. [`GgtSolver::principal_partition_par`] therefore forks the
//! lower half onto a [`std::thread::scope`] worker with a *clone* of
//! the solver — clone-on-fork of the shared never-reset flow, so the
//! spawned branch starts from the exact residual state the serial
//! recursion would have mutated in place — while the current thread
//! continues into the upper half. A shared fork budget caps live
//! workers at the requested thread count and splits whose strips fall
//! below [`GgtSolver::set_fork_threshold`] stay serial. Because every
//! solve returns the canonical maximal side regardless of the retained
//! flow it starts from, and the lower half's breakpoints are appended
//! after the upper half's exactly as in the serial walk, the emitted
//! ladder is byte-identical at every thread count.

use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::parametric::{ParametricNetwork, ReusePolicy};
use crate::rational::Ratio;
use crate::stats;

/// How the verification stack treats flow networks across density
/// probes and candidates — the `IppvConfig::flow_reuse` A/B tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowReuse {
    /// Rebuild a fresh network for every probe (PR 4 behavior; the
    /// baseline the work counters are measured against).
    Scratch,
    /// Build per-instance parametric networks and warm-start monotone
    /// re-solves, resetting on capacity decreases (PR 5 behavior).
    Warm,
    /// Full GGT: never reset a flow — retract on decreases — and drive
    /// the decomposition ladder by principal-partition recursion on one
    /// shared network (the default).
    #[default]
    Ggt,
}

impl FromStr for FlowReuse {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scratch" => Ok(FlowReuse::Scratch),
            "warm" => Ok(FlowReuse::Warm),
            "ggt" => Ok(FlowReuse::Ggt),
            other => Err(format!(
                "unknown flow-reuse tier {other:?} (expected scratch, warm or ggt)"
            )),
        }
    }
}

impl std::fmt::Display for FlowReuse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlowReuse::Scratch => "scratch",
            FlowReuse::Warm => "warm",
            FlowReuse::Ggt => "ggt",
        })
    }
}

/// A ladder node's bookkeeping inside the shared network.
#[derive(Debug, Clone)]
struct LadderNode {
    /// Network node id.
    node: u32,
    /// `add_parametric` index of the `s → node` arc.
    src_idx: usize,
    /// `add_parametric` index of the `node → t` arc.
    sink_idx: usize,
    /// Source capacity at the base scale (constant in λ).
    src_cap: i128,
    /// Sink capacity per unit of λ.
    slope: i128,
}

/// Smallest undecided strip (on both sides of a split) worth forking a
/// worker for: below this, cloning the network costs more than the
/// remaining solves.
const DEFAULT_FORK_MIN_STRIP: usize = 32;

/// GGT principal-partition solver. Build the network with
/// [`GgtSolver::ladder_node`] / [`GgtSolver::add_static`], then call
/// [`GgtSolver::principal_partition`]. See the module docs.
#[derive(Debug, Clone)]
pub struct GgtSolver {
    pn: ParametricNetwork,
    nodes: Vec<LadderNode>,
    /// Σ static base capacities, for the per-solve infinity bound.
    static_base_total: i128,
    /// Arcs in the shared network (ladder + static), for telemetry.
    arcs_total: u64,
    solves: u64,
    /// Minimum strip size for a parallel fork (see module docs).
    fork_min_strip: usize,
}

impl GgtSolver {
    /// Creates a solver over a network with `nodes` nodes, terminals
    /// `s != t`, and the given positive base scale for static and
    /// source capacities.
    pub fn new(nodes: usize, s: u32, t: u32, base_scale: i128) -> Self {
        GgtSolver {
            pn: ParametricNetwork::new(nodes, s, t, base_scale),
            nodes: Vec::new(),
            static_base_total: 0,
            arcs_total: 0,
            solves: 0,
            fork_min_strip: DEFAULT_FORK_MIN_STRIP,
        }
    }

    /// Overrides the minimum undecided-strip size below which
    /// [`GgtSolver::principal_partition_par`] keeps a split serial
    /// instead of forking a worker. Mostly for tests and tuning; the
    /// result never depends on it.
    pub fn set_fork_threshold(&mut self, min_strip: usize) {
        self.fork_min_strip = min_strip.max(1);
    }

    /// Registers network node `node` as a ladder node with the given
    /// source capacity (at the base scale) and sink slope, adding both
    /// terminal arcs. Returns the ladder index used in
    /// [`GgtSolver::principal_partition`] masks.
    ///
    /// # Panics
    /// Panics on a non-positive slope or negative source capacity.
    pub fn ladder_node(&mut self, node: u32, src_cap: i128, slope: i128) -> usize {
        assert!(slope > 0, "ladder slope must be positive");
        assert!(src_cap >= 0, "negative source capacity");
        let (s, t) = self.pn.terminals();
        let src_idx = self.pn.add_parametric(s, node);
        let sink_idx = self.pn.add_parametric(node, t);
        self.arcs_total += 2;
        self.nodes.push(LadderNode {
            node,
            src_idx,
            sink_idx,
            src_cap,
            slope,
        });
        self.nodes.len() - 1
    }

    /// Adds a λ-independent arc with the given capacity at the base
    /// scale (gadget arcs, boundary credits, …).
    pub fn add_static(&mut self, from: u32, to: u32, base_cap: i128) {
        self.pn.add_static(from, to, base_cap);
        self.static_base_total = self.static_base_total.saturating_add(base_cap);
        self.arcs_total += 1;
    }

    /// Number of registered ladder nodes.
    pub fn ladder_len(&self) -> usize {
        self.nodes.len()
    }

    /// Σ slopes over the masked ladder nodes — the λ-coefficient of the
    /// masked side's cut line.
    fn weight(&self, mask: &[bool]) -> i128 {
        self.nodes
            .iter()
            .zip(mask)
            .filter(|&(_, &m)| m)
            .map(|(ln, _)| ln.slope)
            .sum()
    }

    /// Solves the shared network at λ = `lam` with the given ladder
    /// pins and returns the (unscaled, exact) min-cut value plus the
    /// maximal source side restricted to ladder indices.
    fn solve_at(&mut self, lam: Ratio, src_pin: &[bool], sink_pin: &[bool]) -> (Ratio, Vec<bool>) {
        let scale = self.pn.scale_for(lam.den());
        let factor = scale / self.pn.base_scale();
        // A per-solve "infinity": strictly more than every finite cut.
        let mut finite = self.static_base_total.saturating_mul(factor);
        for ln in &self.nodes {
            let tc = (lam * Ratio::from_int(ln.slope)).scale_to_int(scale);
            finite = finite
                .saturating_add(ln.src_cap.saturating_mul(factor))
                .saturating_add(tc);
        }
        let inf = finite.saturating_add(1);
        let mut caps = vec![0i128; self.pn.param_count()];
        let mut pinned = 0u64;
        for (i, ln) in self.nodes.iter().enumerate() {
            debug_assert!(!(src_pin[i] && sink_pin[i]), "node pinned to both sides");
            pinned += (src_pin[i] || sink_pin[i]) as u64;
            caps[ln.src_idx] = if src_pin[i] { inf } else { ln.src_cap * factor };
            caps[ln.sink_idx] = if sink_pin[i] {
                inf
            } else {
                (lam * Ratio::from_int(ln.slope)).scale_to_int(scale)
            };
        }
        self.pn.solve_with(scale, &caps, ReusePolicy::Retract);
        self.solves += 1;
        if self.solves > 1 {
            // what a rebuild-per-probe ladder would have constructed
            stats::GGT_ARCS_SAVED.fetch_add(self.arcs_total, Ordering::Relaxed);
        }
        stats::GGT_CONTRACTED_NODES.fetch_add(pinned, Ordering::Relaxed);
        let full = self.pn.max_cut_source_side();
        let mask = self.nodes.iter().map(|ln| full[ln.node as usize]).collect();
        (Ratio::new(self.pn.flow_value(), scale), mask)
    }

    /// Computes the principal partition: `(λ_v, class)` pairs in
    /// strictly descending breakpoint order, where each class is the
    /// ladder-index mask of the nodes with that exact breakpoint. The
    /// classes are disjoint and their union is `S_max(0)`'s ladder part
    /// (a node outside it — reachable to `t` at λ = 0 — never appears).
    pub fn principal_partition(&mut self) -> Vec<(Ratio, Vec<bool>)> {
        self.principal_partition_par(1)
    }

    /// [`GgtSolver::principal_partition`] with up to `threads` workers
    /// for the divide-and-conquer: after each strict split the lower
    /// λ-interval runs on a scoped worker holding a clone of the solver
    /// (retained flow included) while the current thread descends into
    /// the upper interval. Output is byte-identical at every thread
    /// count; see the module docs for why.
    pub fn principal_partition_par(&mut self, threads: usize) -> Vec<(Ratio, Vec<bool>)> {
        let n = self.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let sp = lhcds_obs::span("flow-ladder");
        let no_pins = vec![false; n];
        // Base of the ladder: the λ = 0 maximal side.
        let (val0, mask0) = self.solve_at(Ratio::zero(), &no_pins, &no_pins);
        // Its complement can be sink-pinned for every λ ≥ 0.
        let sink0: Vec<bool> = mask0.iter().map(|&b| !b).collect();
        // Find the top of the ladder by doubling λ — monotone increases,
        // so each step warm-starts — until the maximal side empties.
        let mut hi = Ratio::from_int(1);
        let (mut val_hi, mut mask_hi) = self.solve_at(hi, &no_pins, &sink0);
        while mask_hi.iter().any(|&b| b) {
            hi = hi * Ratio::from_int(2);
            (val_hi, mask_hi) = self.solve_at(hi, &no_pins, &sink0);
        }
        let (w0, w_hi) = (self.weight(&mask0), self.weight(&mask_hi));
        let c0 = val0; // line value at λ = 0
        let c_hi = val_hi - hi * Ratio::from_int(w_hi);
        let mut out = Vec::new();
        // Fork budget: how many *additional* workers may be live at
        // once. Claimed before each spawn, released after its join, so
        // nested forks across both halves share the same cap.
        let budget = AtomicUsize::new(threads.max(1) - 1);
        self.recurse(
            (Ratio::zero(), mask0, c0, w0),
            (hi, mask_hi, c_hi, w_hi),
            1,
            &mut out,
            &budget,
        );
        sp.counter("breakpoints", out.len() as u64);
        out
    }

    /// Divide and conquer on `[lo, hi]`; each endpoint carries its
    /// maximal side's exact cut line `(λ, mask, c, w)` with cut value
    /// `c + λ'·w`. Appends breakpoints in descending order.
    #[allow(clippy::type_complexity)]
    fn recurse(
        &mut self,
        lo: (Ratio, Vec<bool>, Ratio, i128),
        hi: (Ratio, Vec<bool>, Ratio, i128),
        depth: u64,
        out: &mut Vec<(Ratio, Vec<bool>)>,
        budget: &AtomicUsize,
    ) {
        let (lo_l, mask_lo, c_lo, w_lo) = lo;
        let (hi_l, mask_hi, c_hi, w_hi) = hi;
        if mask_lo == mask_hi {
            return;
        }
        stats::GGT_RECURSIONS.fetch_add(1, Ordering::Relaxed);
        stats::GGT_MAX_DEPTH.fetch_max(depth, Ordering::Relaxed);
        let diff: Vec<bool> = mask_lo
            .iter()
            .zip(&mask_hi)
            .map(|(&a, &b)| a && !b)
            .collect();
        // Where the endpoint cut lines cross. By maximality of the
        // endpoint sides it lies strictly below `hi`; at or below `lo`
        // concavity pins every strip node's breakpoint to exactly `lo`.
        let lam = (c_hi - c_lo) / Ratio::from_int(w_lo - w_hi);
        if lam <= lo_l {
            out.push((lo_l, diff));
            return;
        }
        debug_assert!(lam < hi_l);
        // Contract the decided sides and solve the strip at λ*.
        let sink_pin: Vec<bool> = mask_lo.iter().map(|&b| !b).collect();
        let (val, mask) = self.solve_at(lam, &mask_hi, &sink_pin);
        if val == c_lo + lam * Ratio::from_int(w_lo) {
            // Both endpoint lines are optimal at λ*: the envelope has a
            // single breakpoint here and the whole strip shares it.
            out.push((lam, diff));
            return;
        }
        // Otherwise the λ* side splits the strip strictly (were it
        // equal to either endpoint side, its cheaper line would have
        // beaten that endpoint's min cut at the endpoint's own λ).
        assert!(
            mask != mask_lo && mask != mask_hi,
            "GGT split side must be strictly between its endpoints"
        );
        let w = self.weight(&mask);
        let c = val - lam * Ratio::from_int(w);
        // Fork only when both halves' undecided strips are worth a
        // network clone and a worker slot is free.
        let upper_strip = mask.iter().zip(&mask_hi).filter(|&(&a, &b)| a && !b);
        let lower_strip = mask_lo.iter().zip(&mask).filter(|&(&a, &b)| a && !b);
        let fork = upper_strip.count() >= self.fork_min_strip
            && lower_strip.count() >= self.fork_min_strip
            && claim_fork_slot(budget);
        if fork {
            // Lower half on a worker with a clone of the solver — the
            // clone carries the post-λ* retained flow, exactly the
            // state the serial walk would hand to its lower recursion.
            let mut lower_solver = self.clone();
            let lower_lo = (lo_l, mask_lo, c_lo, w_lo);
            let lower_hi = (lam, mask.clone(), c, w);
            let lower_out = std::thread::scope(|scope| {
                let handle = scope.spawn(move || {
                    let mut acc = Vec::new();
                    lower_solver.recurse(lower_lo, lower_hi, depth + 1, &mut acc, budget);
                    acc
                });
                // Upper half on the current thread: λ keeps growing, so
                // those solves warm-start.
                self.recurse(
                    (lam, mask, c, w),
                    (hi_l, mask_hi, c_hi, w_hi),
                    depth + 1,
                    out,
                    budget,
                );
                handle.join().expect("GGT lower-branch worker panicked")
            });
            budget.fetch_add(1, Ordering::Relaxed);
            // Serial emission order: all upper breakpoints (larger λ)
            // first, then the lower half's.
            out.extend(lower_out);
            return;
        }
        // Upper half first: λ keeps growing, so those solves warm-start;
        // the later drop back below λ* retracts instead of resetting.
        self.recurse(
            (lam, mask.clone(), c, w),
            (hi_l, mask_hi, c_hi, w_hi),
            depth + 1,
            out,
            budget,
        );
        self.recurse(
            (lo_l, mask_lo, c_lo, w_lo),
            (lam, mask, c, w),
            depth + 1,
            out,
            budget,
        );
    }
}

/// Decrements the fork budget if a slot is free; the caller must
/// `fetch_add(1)` it back after joining the spawned worker.
fn claim_fork_slot(budget: &AtomicUsize) -> bool {
    budget
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;
    use crate::rational::lcm;

    #[test]
    fn flow_reuse_parses_and_displays() {
        for (s, v) in [
            ("scratch", FlowReuse::Scratch),
            ("warm", FlowReuse::Warm),
            ("ggt", FlowReuse::Ggt),
        ] {
            assert_eq!(s.parse::<FlowReuse>().unwrap(), v);
            assert_eq!(v.to_string(), s);
        }
        assert!("hot".parse::<FlowReuse>().is_err());
        assert_eq!(FlowReuse::default(), FlowReuse::Ggt);
    }

    /// A hand-buildable spec: ladder nodes are 1.., s = 0, t = last.
    struct Spec {
        src: Vec<i128>,
        slope: Vec<i128>,
        statics: Vec<(usize, usize, i128)>, // ladder-index endpoints
    }

    impl Spec {
        fn solver(&self) -> GgtSolver {
            let n = self.src.len();
            let (s, t) = (0u32, (n + 1) as u32);
            let mut g = GgtSolver::new(n + 2, s, t, 1);
            for i in 0..n {
                let idx = g.ladder_node((i + 1) as u32, self.src[i], self.slope[i]);
                assert_eq!(idx, i);
            }
            for &(a, b, c) in &self.statics {
                g.add_static((a + 1) as u32, (b + 1) as u32, c);
            }
            g
        }

        /// Rebuild-per-probe reference: `S_max(lam)` from a fresh Dinic.
        fn smax_fresh(&self, lam: Ratio) -> Vec<bool> {
            let n = self.src.len();
            let (s, t) = (0u32, (n + 1) as u32);
            let scale = lcm(lam.den(), 1).max(1);
            let mut d = Dinic::new(n + 2);
            for i in 0..n {
                d.add_edge(s, (i + 1) as u32, self.src[i] * scale);
                let tc = (lam * Ratio::from_int(self.slope[i])).scale_to_int(scale);
                d.add_edge((i + 1) as u32, t, tc);
            }
            for &(a, b, c) in &self.statics {
                d.add_edge((a + 1) as u32, (b + 1) as u32, c * scale);
            }
            d.max_flow(s, t);
            let full = d.max_cut_source_side(t);
            (0..n).map(|i| full[i + 1]).collect()
        }

        /// Checks a computed partition against the fresh reference at
        /// every breakpoint (closed side) and between breakpoints.
        fn check(&self, part: &[(Ratio, Vec<bool>)]) {
            let n = self.src.len();
            // strictly descending, disjoint
            for w in part.windows(2) {
                assert!(w[0].0 > w[1].0);
            }
            let mut union = vec![false; n];
            for (_, m) in part {
                for (u, &b) in union.iter_mut().zip(m) {
                    assert!(!(*u && b), "classes overlap");
                    *u = *u || b;
                }
            }
            assert_eq!(union, self.smax_fresh(Ratio::zero()), "union is S_max(0)");
            // at λ_i the maximal side still contains class i and all
            // higher classes (the ε-probe boundary is closed)…
            let mut acc = vec![false; n];
            for (lam, m) in part {
                for (a, &b) in acc.iter_mut().zip(m) {
                    *a = *a || b;
                }
                assert_eq!(&self.smax_fresh(*lam), &acc, "at breakpoint {lam}");
                // …and just above it the class has dropped out
                let above = *lam + Ratio::new(1, 1_000_000);
                let sm = self.smax_fresh(above);
                for (i, &b) in m.iter().enumerate() {
                    assert!(!b || !sm[i], "node {i} survived past {lam}");
                }
            }
        }
    }

    #[test]
    fn single_node_breakpoint_is_exact() {
        let spec = Spec {
            src: vec![5],
            slope: vec![2],
            statics: vec![],
        };
        let part = spec.solver().principal_partition();
        assert_eq!(part, vec![(Ratio::new(5, 2), vec![true])]);
        spec.check(&part);
    }

    #[test]
    fn independent_nodes_get_their_own_levels() {
        let spec = Spec {
            src: vec![6, 2],
            slope: vec![2, 2],
            statics: vec![],
        };
        let part = spec.solver().principal_partition();
        assert_eq!(
            part,
            vec![
                (Ratio::from_int(3), vec![true, false]),
                (Ratio::from_int(1), vec![false, true]),
            ]
        );
        spec.check(&part);
    }

    #[test]
    fn degenerate_ladder_all_equal_is_one_level() {
        let spec = Spec {
            src: vec![4, 4, 4],
            slope: vec![2, 2, 2],
            statics: vec![],
        };
        let part = spec.solver().principal_partition();
        assert_eq!(part, vec![(Ratio::from_int(2), vec![true; 3])]);
        spec.check(&part);
    }

    #[test]
    fn a_heavy_static_arc_merges_levels() {
        // alone, node 0 drops at λ=3 and node 1 at λ=1; the arc between
        // them makes splitting expensive, so they drop together at the
        // average λ=2 — the densest-subgraph peeling effect.
        let spec = Spec {
            src: vec![3, 1],
            slope: vec![1, 1],
            statics: vec![(0, 1, 100)],
        };
        let part = spec.solver().principal_partition();
        assert_eq!(part, vec![(Ratio::from_int(2), vec![true, true])]);
        spec.check(&part);
    }

    #[test]
    fn zero_source_nodes_sit_at_breakpoint_zero() {
        let spec = Spec {
            src: vec![0, 7],
            slope: vec![3, 3],
            statics: vec![],
        };
        let part = spec.solver().principal_partition();
        assert_eq!(
            part,
            vec![
                (Ratio::new(7, 3), vec![false, true]),
                (Ratio::zero(), vec![true, false]),
            ]
        );
        spec.check(&part);
    }

    #[test]
    fn empty_ladder_yields_empty_partition() {
        let mut g = GgtSolver::new(2, 0, 1, 1);
        assert!(g.principal_partition().is_empty());
    }

    #[test]
    fn random_ladders_match_rebuild_per_probe() {
        let mut state = 0xC0FFEE123456789u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..25 {
            let n = 2 + (rng() % 4) as usize;
            let src: Vec<i128> = (0..n).map(|_| (rng() % 12) as i128).collect();
            let slope: Vec<i128> = (0..n).map(|_| 1 + (rng() % 3) as i128).collect();
            let mut statics = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    if a != b && rng() % 3 == 0 {
                        statics.push((a, b, (rng() % 9) as i128));
                    }
                }
            }
            let spec = Spec {
                src,
                slope,
                statics,
            };
            let part = spec.solver().principal_partition();
            spec.check(&part);
        }
    }

    #[test]
    fn parallel_partition_is_byte_identical_to_serial() {
        // Force forking even on tiny strips so the scoped-worker path
        // actually runs: threshold 1 means every strict split with a
        // free slot forks.
        let mut state = 0x5EEDBEEF0DDC0DEu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..10 {
            let n = 4 + (rng() % 6) as usize;
            let src: Vec<i128> = (0..n).map(|_| (rng() % 20) as i128).collect();
            let slope: Vec<i128> = (0..n).map(|_| 1 + (rng() % 3) as i128).collect();
            let mut statics = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    if a != b && rng() % 4 == 0 {
                        statics.push((a, b, (rng() % 7) as i128));
                    }
                }
            }
            let spec = Spec {
                src,
                slope,
                statics,
            };
            let serial = spec.solver().principal_partition();
            spec.check(&serial);
            for threads in [2usize, 4, 8] {
                let mut solver = spec.solver();
                solver.set_fork_threshold(1);
                let par = solver.principal_partition_par(threads);
                assert_eq!(
                    par, serial,
                    "round {round}: {threads}-thread partition diverged"
                );
            }
        }
    }

    #[test]
    fn fork_threshold_keeps_small_strips_serial() {
        // With the default threshold, a tiny ladder never forks, and a
        // 1-thread "parallel" call is the serial walk by construction.
        let spec = Spec {
            src: vec![6, 2, 9, 1],
            slope: vec![2, 2, 3, 1],
            statics: vec![(0, 1, 3), (2, 3, 1)],
        };
        let serial = spec.solver().principal_partition();
        assert_eq!(spec.solver().principal_partition_par(1), serial);
        assert_eq!(spec.solver().principal_partition_par(8), serial);
    }
}
