//! # lhcds-flow
//!
//! Exact max-flow / min-cut substrate for the LhCDS verification
//! algorithms.
//!
//! The paper's flow networks (Figures 6 and 7) carry *rational*
//! capacities: `ρ·h` with `ρ = |Ψh(S)|/|S| − 1/|V|²` and boundary-clique
//! arcs `1 + (h−cnt)/cnt = h/cnt`. Exactness of the whole pipeline
//! (Theorem 7) hinges on deciding these min-cuts without rounding, so:
//!
//! * [`rational::Ratio`] is a tiny exact rational on `i128` used to carry
//!   densities and thresholds around the pipeline, and
//! * [`dinic::Dinic`] runs on `i128` capacities; callers scale all
//!   rational capacities by one exact common denominator (helpers in
//!   [`rational`]) so flows are integers and min-cuts are exact.
//!
//! Both the *minimal* and the *maximal* source-side min-cut are exposed:
//! `DeriveCompact` needs the largest subgraph attaining the optimum
//! (Theorem 5), which is the maximal source side of a minimum cut.

pub mod dinic;
pub mod rational;

pub use dinic::Dinic;
pub use rational::Ratio;
