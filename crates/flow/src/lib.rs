//! # lhcds-flow
//!
//! Exact max-flow / min-cut substrate for the LhCDS verification
//! algorithms.
//!
//! The paper's flow networks (Figures 6 and 7) carry *rational*
//! capacities: `ρ·h` with `ρ = |Ψh(S)|/|S| − 1/|V|²` and boundary-clique
//! arcs `1 + (h−cnt)/cnt = h/cnt`. Exactness of the whole pipeline
//! (Theorem 7) hinges on deciding these min-cuts without rounding, so:
//!
//! * [`rational::Ratio`] is a tiny exact rational on `i128` used to carry
//!   densities and thresholds around the pipeline, and
//! * [`dinic::Dinic`] runs on `i128` capacities; callers scale all
//!   rational capacities by one exact common denominator (helpers in
//!   [`rational`]) so flows are integers and min-cuts are exact.
//!
//! Both the *minimal* and the *maximal* source-side min-cut are exposed:
//! `DeriveCompact` needs the largest subgraph attaining the optimum
//! (Theorem 5), which is the maximal source side of a minimum cut.
//!
//! Because the verification stack re-solves the *same* network at a
//! ladder of thresholds (only the ρ-dependent capacities change),
//! [`parametric::ParametricNetwork`] retains the built network across
//! solves: monotone capacity changes warm-start from the previous
//! residual flow, and under [`parametric::ReusePolicy::Retract`] even
//! capacity *decreases* keep it, cancelling only the infeasible excess
//! along the flow's own paths (`Dinic::retract_arc`) — the
//! Gallo–Grigoriadis–Tarjan never-reset discipline. On top of that,
//! [`ggt::GgtSolver`] recovers the entire principal partition (the
//! LhCDS dense-decomposition ladder) by divide-and-conquer on one
//! shared network, and [`ggt::FlowReuse`] names the three reuse tiers
//! (`scratch | warm | ggt`) the verification stack exposes for A/B.
//! [`stats::flow_stats`] exposes the process-wide work counters
//! (networks/arcs built, flow invocations, warm/retract/cold solves,
//! GGT recursion telemetry) that pin the reuse contracts in tests and
//! benchmarks.
//!
//! In the workspace DAG this crate sits directly above `lhcds-graph`
//! (as `lhcds-clique`'s sibling) and below `lhcds-core`, which builds
//! its verification networks on it and re-exports [`Ratio`] so higher
//! layers never depend on this crate directly.
//!
//! # Example
//!
//! ```
//! use lhcds_flow::{Dinic, Ratio};
//!
//! // s=0 → {1, 2} → t=3, one unit through each middle vertex.
//! let mut d = Dinic::new(4);
//! d.add_edge(0, 1, 1);
//! d.add_edge(0, 2, 1);
//! d.add_edge(1, 3, 1);
//! d.add_edge(2, 3, 1);
//! assert_eq!(d.max_flow(0, 3), 2);
//!
//! // exact rational densities: no rounding anywhere in the pipeline
//! let rho = Ratio::new(13, 6);
//! assert!(rho > Ratio::new(2, 1));
//! assert_eq!((rho - Ratio::new(1, 6)).to_string(), "2");
//! ```

#![warn(missing_docs)]

pub mod dinic;
pub mod ggt;
pub mod parametric;
pub mod rational;
pub mod stats;

pub use dinic::Dinic;
pub use ggt::{FlowReuse, GgtSolver};
pub use parametric::{ParametricNetwork, ReusePolicy, SolveMode};
pub use rational::Ratio;
pub use stats::{flow_stats, max_flow_invocations, FlowStats};
