//! Reusable parametric flow networks: build the arcs once, re-solve at
//! many capacity settings, warm-starting from the retained flow.
//!
//! The LhCDS verification stack solves the *same* Figure-6 network at a
//! ladder of density thresholds ρ: between consecutive `IsDensest` /
//! `DeriveCompact` / marginal-density probes only the ρ-dependent
//! vertex↔terminal capacities change, while the clique/membership
//! gadget arcs — the overwhelming majority — are static. Rebuilding the
//! whole network per probe (nodes, arc pairs, adjacency lists) is pure
//! overhead; this module retains it.
//!
//! ## Model
//!
//! A [`ParametricNetwork`] owns a [`Dinic`] plus an arc classification:
//!
//! * **static arcs** ([`ParametricNetwork::add_static`]) carry a
//!   capacity expressed at a fixed *base scale* `B`; at solve scale `D`
//!   (a multiple of `B`) their capacity is `base_cap · D/B`;
//! * **parametric arcs** ([`ParametricNetwork::add_parametric`]) get an
//!   explicit capacity (already expressed at scale `D`) on every solve.
//!
//! Exactness forces the scale dance: capacities are rationals (`ρ·h`,
//! `h/cnt`) and each threshold `ρ = a/b` needs `b | D` for integer
//! capacities. Because scaling *all* capacities by a common factor
//! permutes neither the set of minimum cuts nor their canonical minimal
//! / maximal source sides, any valid `D` yields identical cut-side
//! answers — which is what makes the reuse path bit-identical to the
//! rebuild-from-scratch path.
//!
//! ## Warm starts and retraction (GGT)
//!
//! [`ParametricNetwork::solve`] keeps the previous residual flow when it
//! remains feasible under the new capacities: the retained flow at
//! scale `D₁` is rescaled by the integer `q = D₂/D₁` (conservation is
//! linear, so `q·f` is again a valid s–t flow) and kept iff every
//! parametric arc still covers its rescaled flow (static arcs scale
//! with `D` and can never under-run). This is precisely the monotone
//! regime of Gallo–Grigoriadis–Tarjan: in the Goldberg ladder ρ only
//! grows, sink capacities only grow, and each probe re-solves in time
//! proportional to the *increment*.
//!
//! Capacity *decreases* have two treatments, chosen by [`ReusePolicy`]:
//!
//! * [`ReusePolicy::Reset`] (the PR 5 behavior, and what plain
//!   [`ParametricNetwork::solve`] does) discards the flow via
//!   [`Dinic::reset_flow`] — zero construction work, but the next
//!   max-flow starts from nothing;
//! * [`ReusePolicy::Retract`] — the true GGT never-reset path — keeps
//!   the rescaled flow and *cancels only the infeasible excess* of each
//!   shrunk arc along the flow's own support paths
//!   (`Dinic::retract_arc`), so the follow-up max-flow starts from a
//!   feasible flow that is near-maximal whenever the schedule is
//!   near-monotone. Work is proportional to the flow cancelled, not the
//!   network size.
//!
//! [`crate::flow_stats`] counts all outcomes, splitting cold solves
//! into the unavoidable first build per network vs genuine resets.

use crate::dinic::{ArcId, Dinic};
use crate::stats;

/// Largest solve scale the warm-start chain may compound to. A chained
/// scale is `lcm` of the previous scale and the new denominator, so it
/// can grow along a ladder; past this bound the solver falls back to a
/// fresh minimal scale (cold solve) to keep every capacity product
/// comfortably inside `i128`.
const SCALE_LIMIT: i128 = 1 << 80;

/// `lcm(a, b)` for positive operands, `None` on overflow.
fn checked_lcm(a: i128, b: i128) -> Option<i128> {
    debug_assert!(a > 0 && b > 0);
    (a / crate::rational::gcd(a, b)).checked_mul(b)
}

/// How a [`ParametricNetwork::solve`] call treated the retained flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// The previous residual flow was rescaled and kept; max-flow only
    /// pushed the increment.
    Warm,
    /// A capacity decrease made the rescaled flow infeasible, but under
    /// [`ReusePolicy::Retract`] only the excess was cancelled along its
    /// own flow paths; max-flow continued from the retracted flow.
    Retract,
    /// The previous flow was discarded (first solve, incompatible
    /// scale, or — under [`ReusePolicy::Reset`] — a capacity decrease
    /// below carried flow) and max-flow ran from zero, but on the
    /// already-built network.
    Cold,
}

/// What [`ParametricNetwork::solve_with`] may do when a capacity
/// decrease makes the retained flow infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReusePolicy {
    /// Discard the retained flow and re-solve from zero (PR 5 warm-only
    /// behavior; what [`ParametricNetwork::solve`] uses).
    Reset,
    /// Cancel only the infeasible excess along the flow's own support
    /// paths and continue — the GGT never-reset discipline.
    Retract,
}

/// A flow network whose arcs are built once and re-solved at many
/// capacity settings. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct ParametricNetwork {
    net: Dinic,
    s: u32,
    t: u32,
    base_scale: i128,
    /// `(arc, capacity at base scale)` for every static arc.
    static_arcs: Vec<(ArcId, i128)>,
    /// Parametric arcs, in `add_parametric` order.
    param_arcs: Vec<ArcId>,
    /// Scale of the currently retained flow/capacities; 0 until the
    /// first solve.
    cur_scale: i128,
}

impl ParametricNetwork {
    /// Creates a network with `nodes` nodes, terminals `s != t`, and
    /// the given positive base scale.
    pub fn new(nodes: usize, s: u32, t: u32, base_scale: i128) -> Self {
        assert!(base_scale > 0, "base scale must be positive");
        assert!(s != t && (s as usize) < nodes && (t as usize) < nodes);
        ParametricNetwork {
            net: Dinic::new(nodes),
            s,
            t,
            base_scale,
            static_arcs: Vec::new(),
            param_arcs: Vec::new(),
            cur_scale: 0,
        }
    }

    /// Adds a static arc whose capacity at solve scale `D` is
    /// `base_cap · D / base_scale`.
    pub fn add_static(&mut self, from: u32, to: u32, base_cap: i128) -> ArcId {
        assert!(self.cur_scale == 0, "arcs must be added before solving");
        assert!(base_cap >= 0, "negative capacity");
        let arc = self.net.add_edge(from, to, 0);
        self.static_arcs.push((arc, base_cap));
        arc
    }

    /// Adds a parametric arc; its capacity is supplied to every
    /// [`ParametricNetwork::solve`] call at the entry with the returned
    /// index.
    pub fn add_parametric(&mut self, from: u32, to: u32) -> usize {
        assert!(self.cur_scale == 0, "arcs must be added before solving");
        let arc = self.net.add_edge(from, to, 0);
        self.param_arcs.push(arc);
        self.param_arcs.len() - 1
    }

    /// Number of parametric arcs (the length `solve` expects of its
    /// capacity slice).
    pub fn param_count(&self) -> usize {
        self.param_arcs.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.net.node_count()
    }

    /// The base scale static capacities are expressed at.
    pub fn base_scale(&self) -> i128 {
        self.base_scale
    }

    /// The `(s, t)` terminals.
    pub fn terminals(&self) -> (u32, u32) {
        (self.s, self.t)
    }

    /// Chooses the solve scale for a threshold with denominator `den`:
    /// a multiple of both `den` and the base scale, preferring one that
    /// is also a multiple of the retained flow's scale (so the next
    /// solve *can* warm-start) as long as that stays under the overflow
    /// guard.
    pub fn scale_for(&self, den: i128) -> i128 {
        assert!(den > 0, "denominator must be positive");
        if self.cur_scale > 0 {
            if let Some(chained) = checked_lcm(den, self.cur_scale) {
                if chained <= SCALE_LIMIT {
                    return chained;
                }
            }
            // The chain would overflow: restart from the minimal scale,
            // forfeiting the retained flow. Previously silent; counted
            // so warm-hit regressions are diagnosable from stats alone.
            stats::SCALE_FALLBACKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        checked_lcm(den, self.base_scale).expect("minimal solve scale overflows i128")
    }

    /// Re-tunes every capacity to scale `scale` (a positive multiple of
    /// the base scale; use [`ParametricNetwork::scale_for`]), installs
    /// `param_caps` on the parametric arcs, warm-starts from the
    /// retained flow when it remains feasible, and runs max-flow.
    /// Capacity decreases discard the flow ([`ReusePolicy::Reset`]);
    /// use [`ParametricNetwork::solve_with`] for the GGT retract path.
    pub fn solve(&mut self, scale: i128, param_caps: &[i128]) -> SolveMode {
        self.solve_with(scale, param_caps, ReusePolicy::Reset)
    }

    /// [`ParametricNetwork::solve`] with an explicit capacity-decrease
    /// policy.
    pub fn solve_with(
        &mut self,
        scale: i128,
        param_caps: &[i128],
        policy: ReusePolicy,
    ) -> SolveMode {
        assert!(scale > 0 && scale % self.base_scale == 0, "invalid scale");
        assert_eq!(param_caps.len(), self.param_arcs.len(), "capacity slice");
        let factor = scale / self.base_scale;

        // The retained flow is reusable iff the scale ratio q is a
        // positive integer and the rescale overflows nowhere.
        // Mathematically static arcs scale with the network and can
        // never under-run, but both arc classes still get the checked-
        // multiply guard: a caller with extreme base capacities must
        // fall back to a cold solve, never install a wrapped flow.
        let q = if self.cur_scale > 0 && scale % self.cur_scale == 0 {
            scale / self.cur_scale
        } else {
            0
        };
        // (arc, new total capacity, rescaled flow) for every arc, or
        // None when q = 0 / any product overflows.
        let rescaled: Option<Vec<(ArcId, i128, i128)>> = if q > 0 {
            (|| {
                let mut v = Vec::with_capacity(self.static_arcs.len() + self.param_arcs.len());
                for &(arc, base_cap) in &self.static_arcs {
                    let cap = base_cap.checked_mul(factor)?;
                    let flow = self.net.current_flow(arc).checked_mul(q)?;
                    v.push((arc, cap, flow));
                }
                for (&arc, &cap) in self.param_arcs.iter().zip(param_caps) {
                    let flow = self.net.current_flow(arc).checked_mul(q)?;
                    v.push((arc, cap, flow));
                }
                Some(v)
            })()
        } else {
            None
        };

        let mode = match rescaled {
            Some(arcs) if arcs.iter().all(|&(_, cap, flow)| flow <= cap) => {
                // Fully feasible: install the rescaled flow as-is.
                for &(arc, cap, flow) in &arcs {
                    self.net.set_state(arc, cap, flow);
                }
                stats::WARM_SOLVES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                SolveMode::Warm
            }
            Some(arcs) if policy == ReusePolicy::Retract => {
                // Keep the rescaled flow under temporarily inflated
                // capacities (still a conserving flow), then retract
                // each oversubscribed arc: the retraction cancels its
                // excess along the flow's own support paths and snaps
                // the inflated capacity down.
                for &(arc, cap, flow) in &arcs {
                    self.net.set_state(arc, cap.max(flow), flow);
                }
                for &(arc, cap, flow) in &arcs {
                    if flow > cap {
                        self.net.retract_arc(arc, cap, self.s, self.t);
                    }
                }
                stats::RETRACT_SOLVES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                SolveMode::Retract
            }
            _ => {
                for &(arc, base_cap) in &self.static_arcs {
                    self.net.set_state(arc, base_cap * factor, 0);
                }
                for (&arc, &cap) in self.param_arcs.iter().zip(param_caps) {
                    self.net.set_state(arc, cap, 0);
                }
                let counter = if self.cur_scale == 0 {
                    &stats::FIRST_BUILD
                } else {
                    &stats::INFEASIBLE_RESET
                };
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                SolveMode::Cold
            }
        };
        self.net.max_flow(self.s, self.t);
        self.cur_scale = scale;
        mode
    }

    /// Value of the flow found by the last solve, in units of that
    /// solve's scale.
    pub fn flow_value(&self) -> i128 {
        debug_assert!(self.cur_scale > 0, "no solve yet");
        self.net.net_flow_into(self.t)
    }

    /// Minimal source side of a minimum cut of the last solve.
    pub fn min_cut_source_side(&self) -> Vec<bool> {
        debug_assert!(self.cur_scale > 0, "no solve yet");
        self.net.min_cut_source_side(self.s)
    }

    /// Maximal source side of a minimum cut of the last solve.
    pub fn max_cut_source_side(&self) -> Vec<bool> {
        debug_assert!(self.cur_scale > 0, "no solve yet");
        self.net.max_cut_source_side(self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-6 shape in miniature: s=0, two "vertices" 1 and 2, a
    /// gadget node 3, t=4. Static gadget arcs at base scale 2;
    /// parametric s→v and v→t arcs.
    fn tiny() -> (ParametricNetwork, [usize; 4]) {
        let mut pn = ParametricNetwork::new(5, 0, 4, 2);
        pn.add_static(1, 3, 2);
        pn.add_static(3, 2, 4);
        let s1 = pn.add_parametric(0, 1);
        let s2 = pn.add_parametric(0, 2);
        let t1 = pn.add_parametric(1, 4);
        let t2 = pn.add_parametric(2, 4);
        (pn, [s1, s2, t1, t2])
    }

    /// A fresh plain Dinic with the same topology at the given scale and
    /// parametric caps, for ground truth.
    fn fresh(scale: i128, caps: &[i128; 4]) -> Dinic {
        let f = scale / 2;
        let mut d = Dinic::new(5);
        d.add_edge(1, 3, 2 * f);
        d.add_edge(3, 2, 4 * f);
        d.add_edge(0, 1, caps[0]);
        d.add_edge(0, 2, caps[1]);
        d.add_edge(1, 4, caps[2]);
        d.add_edge(2, 4, caps[3]);
        d
    }

    #[test]
    fn warm_chain_matches_fresh_solves() {
        let (mut pn, _) = tiny();
        // monotone sink ladder at a fixed scale: first solve cold, the
        // rest warm; every cut side must equal a fresh network's
        let schedule: [[i128; 4]; 4] = [[6, 6, 1, 1], [6, 6, 2, 2], [6, 6, 4, 3], [6, 6, 9, 9]];
        for (i, caps) in schedule.iter().enumerate() {
            let scale = pn.scale_for(1);
            assert_eq!(scale % 2, 0);
            let mode = pn.solve(scale, caps);
            assert_eq!(
                mode,
                if i == 0 {
                    SolveMode::Cold
                } else {
                    SolveMode::Warm
                },
                "step {i}"
            );
            let mut d = fresh(scale, caps);
            d.max_flow(0, 4);
            assert_eq!(pn.min_cut_source_side(), d.min_cut_source_side(0));
            assert_eq!(pn.max_cut_source_side(), d.max_cut_source_side(4));
        }
    }

    #[test]
    fn capacity_decrease_falls_back_to_cold() {
        let (mut pn, _) = tiny();
        let scale = pn.scale_for(1);
        pn.solve(scale, &[6, 6, 5, 5]);
        // shrinking a sink arc below its carried flow cannot keep the
        // retained residual
        let mode = pn.solve(scale, &[6, 6, 1, 1]);
        assert_eq!(mode, SolveMode::Cold);
        let mut d = fresh(scale, &[6, 6, 1, 1]);
        d.max_flow(0, 4);
        assert_eq!(pn.min_cut_source_side(), d.min_cut_source_side(0));
    }

    #[test]
    fn scale_changes_rescale_the_retained_flow() {
        let (mut pn, _) = tiny();
        // denominator 3 → scale 6; then denominator 1 keeps 6 (warm
        // compatible); then denominator 5 → lcm 30, q = 5
        let s1 = pn.scale_for(3);
        assert_eq!(s1, 6);
        pn.solve(s1, &[9, 9, 2, 2]);
        let s2 = pn.scale_for(1);
        assert_eq!(s2, 6, "retained scale already covers den 1");
        assert_eq!(pn.solve(s2, &[9, 9, 3, 3]), SolveMode::Warm);
        let s3 = pn.scale_for(5);
        assert_eq!(s3, 30);
        let mode = pn.solve(s3, &[45, 45, 20, 20]);
        assert_eq!(mode, SolveMode::Warm);
        let mut d = fresh(30, &[45, 45, 20, 20]);
        d.max_flow(0, 4);
        assert_eq!(pn.min_cut_source_side(), d.min_cut_source_side(0));
        assert_eq!(pn.max_cut_source_side(), d.max_cut_source_side(4));
    }

    #[test]
    fn solve_modes_follow_monotonicity() {
        // (exact work-counter assertions live in tests/telemetry.rs,
        // which owns its process so the global counters are quiet)
        let (mut pn, _) = tiny();
        let scale = pn.scale_for(1);
        assert_eq!(pn.solve(scale, &[6, 6, 1, 1]), SolveMode::Cold);
        assert_eq!(pn.solve(scale, &[6, 6, 2, 2]), SolveMode::Warm);
        assert_eq!(pn.solve(scale, &[6, 6, 0, 0]), SolveMode::Cold); // decrease
    }

    #[test]
    fn retract_policy_survives_capacity_decreases() {
        let (mut pn, _) = tiny();
        let scale = pn.scale_for(1);
        pn.solve(scale, &[6, 6, 5, 5]);
        // shrinking the sink arcs below their carried flow retracts
        // instead of resetting — and still matches a fresh solve
        let mode = pn.solve_with(scale, &[6, 6, 1, 1], ReusePolicy::Retract);
        assert_eq!(mode, SolveMode::Retract);
        let mut d = fresh(scale, &[6, 6, 1, 1]);
        let f = d.max_flow(0, 4);
        assert_eq!(pn.flow_value(), f);
        assert_eq!(pn.min_cut_source_side(), d.min_cut_source_side(0));
        assert_eq!(pn.max_cut_source_side(), d.max_cut_source_side(4));
    }

    #[test]
    fn retract_policy_matches_fresh_on_non_monotone_schedules() {
        // zig-zag thresholds with scale changes: every step must agree
        // with a fresh network, whatever mode the solver picked
        let (mut pn, _) = tiny();
        let schedule: [(i128, [i128; 4]); 6] = [
            (1, [6, 6, 2, 2]),
            (3, [18, 18, 12, 12]), // scale 6, growth: warm
            (3, [18, 18, 3, 3]),   // shrink: retract
            (1, [18, 18, 0, 0]),   // shrink to zero
            (5, [90, 90, 60, 45]), // scale 30, growth again
            (2, [90, 90, 10, 80]), // mixed shrink/growth
        ];
        for (i, (den, caps)) in schedule.iter().enumerate() {
            let scale = pn.scale_for(*den);
            pn.solve_with(scale, caps, ReusePolicy::Retract);
            let mut d = fresh(scale, caps);
            let f = d.max_flow(0, 4);
            assert_eq!(pn.flow_value(), f, "step {i}");
            assert_eq!(
                pn.min_cut_source_side(),
                d.min_cut_source_side(0),
                "step {i}"
            );
            assert_eq!(
                pn.max_cut_source_side(),
                d.max_cut_source_side(4),
                "step {i}"
            );
        }
    }

    #[test]
    fn first_solve_is_cold_even_under_retract() {
        let (mut pn, _) = tiny();
        let scale = pn.scale_for(1);
        assert_eq!(
            pn.solve_with(scale, &[6, 6, 2, 2], ReusePolicy::Retract),
            SolveMode::Cold
        );
        assert_eq!(
            pn.solve_with(scale, &[6, 6, 1, 1], ReusePolicy::Retract),
            SolveMode::Retract
        );
        assert_eq!(
            pn.solve_with(scale, &[6, 6, 3, 3], ReusePolicy::Retract),
            SolveMode::Warm
        );
    }

    #[test]
    fn scale_limit_forces_a_fresh_minimal_scale() {
        let (mut pn, _) = tiny();
        pn.cur_scale = SCALE_LIMIT / 2; // pretend a huge retained chain
                                        // a coprime denominator would chain past the limit → minimal
        let s = pn.scale_for(3);
        assert_eq!(s, 6);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn non_multiple_scale_is_rejected() {
        let (mut pn, _) = tiny();
        pn.solve(3, &[1, 1, 1, 1]);
    }
}
