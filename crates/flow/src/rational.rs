//! Exact rational arithmetic on `i128`.
//!
//! Densities (`|Ψh(S)| / |S|`), compact-number bounds and flow
//! thresholds are ratios of modest integers; `i128` with eager gcd
//! reduction keeps every quantity in this workspace exact. The type is
//! deliberately minimal — just what the pipeline needs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative; `gcd(0, 0) = 0`).
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow in debug builds.
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)) * b
}

/// `lcm(1..=h)` — the common denominator of the paper's boundary-clique
/// capacities `h / cnt` for `cnt ∈ 1..=h`.
pub fn lcm_up_to(h: u32) -> i128 {
    (1..=h as i128).fold(1, lcm)
}

impl Ratio {
    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Ratio { num: 0, den: 1 };
        }
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `i` as a ratio.
    pub const fn from_int(i: i128) -> Self {
        Ratio { num: i, den: 1 }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Ratio { num: 0, den: 1 }
    }

    /// Numerator (lowest terms, sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (lowest terms, always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Approximate `f64` value, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact scaling: `self * scale`, asserting the result is integral.
    /// Used to turn rational capacities into integer flow capacities.
    pub fn scale_to_int(&self, scale: i128) -> i128 {
        let g = gcd(self.den, scale);
        assert!(
            g == self.den,
            "scale {scale} is not a multiple of denominator {}",
            self.den
        );
        self.num * (scale / self.den)
    }

    /// Whether the ratio is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_frac(self.num, self.den, other.num, other.den)
    }
}

/// Exact overflow-free comparison of `a/b` vs `c/d` (`b, d > 0`) by
/// comparing continued-fraction expansions: equal integer parts recurse
/// on the flipped fractional remainders, so operands shrink like the
/// Euclidean algorithm and no multiplication is needed.
fn cmp_frac(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    debug_assert!(b > 0 && d > 0);
    let (ia, ic) = (a.div_euclid(b), c.div_euclid(d));
    match ia.cmp(&ic) {
        Ordering::Equal => {}
        other => return other,
    }
    let (ra, rc) = (a - ia * b, c - ic * d); // 0 ≤ ra < b, 0 ≤ rc < d
    match (ra == 0, rc == 0) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        // ra/b vs rc/d ⟺ reverse(b/ra vs d/rc)
        (false, false) => cmp_frac(d, rc, b, ra),
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Reduce cross terms first to limit growth.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Ratio::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero ratio");
        self * Ratio::new(rhs.den, rhs.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, -7), Ratio::zero());
        assert_eq!(Ratio::new(6, 3), Ratio::from_int(2));
        assert!(Ratio::from_int(2).is_integer());
        assert!(!Ratio::new(1, 2).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(13, 6);
        let b = Ratio::new(1, 2);
        assert_eq!(a + b, Ratio::new(8, 3));
        assert_eq!(a - b, Ratio::new(5, 3));
        assert_eq!(a * b, Ratio::new(13, 12));
        assert_eq!(a / b, Ratio::new(13, 3));
        assert_eq!(-a, Ratio::new(-13, 6));
    }

    #[test]
    fn ordering_matches_reals() {
        let vals = [
            Ratio::new(-1, 2),
            Ratio::zero(),
            Ratio::new(1, 3),
            Ratio::new(1, 2),
            Ratio::new(13, 6),
            Ratio::from_int(3),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(Ratio::new(2, 4).cmp(&Ratio::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm_up_to(1), 1);
        assert_eq!(lcm_up_to(5), 60);
        assert_eq!(lcm_up_to(10), 2520);
    }

    #[test]
    fn scale_to_int_is_exact() {
        let rho = Ratio::new(13, 6);
        assert_eq!(rho.scale_to_int(6), 13);
        assert_eq!(rho.scale_to_int(12), 26);
        assert_eq!(Ratio::from_int(5).scale_to_int(7), 35);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn scale_to_int_rejects_inexact_scale() {
        Ratio::new(1, 3).scale_to_int(4);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(13, 6).to_string(), "13/6");
        assert_eq!(Ratio::from_int(4).to_string(), "4");
    }

    #[test]
    fn paper_density_example() {
        // Figure 2: thirteen 3-cliques over six vertices → ρ = 13/6;
        // the verification threshold ρ − 1/|V|² with |V| = 20.
        let rho = Ratio::new(13, 6);
        let eps = Ratio::new(1, 400);
        let thr = rho - eps;
        assert_eq!(thr, Ratio::new(13 * 400 - 6, 2400));
        assert!(thr < rho);
        assert!(thr > Ratio::from_int(2));
    }
}
