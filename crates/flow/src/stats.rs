//! Process-wide flow-layer work counters.
//!
//! The verification stack's dominant cost is max-flow, and the PR-level
//! acceptance contracts of this repository are phrased over *work
//! counters*, not wall time: "the read path runs zero flow", "the reuse
//! path builds one network per candidate instance, not one per density
//! probe". This module is the single source of truth for those
//! counters:
//!
//! * `networks_built` — [`crate::Dinic::new`] calls (every flow network
//!   ever constructed, parametric or not);
//! * `arcs_built` — [`crate::Dinic::add_edge`] calls (arc *pairs*; the
//!   implicit reverse arc is not counted separately);
//! * `max_flow_invocations` — [`crate::Dinic::max_flow`] calls;
//! * `warm_solves` / `cold_solves` — [`crate::ParametricNetwork::solve`]
//!   outcomes: whether the retained residual flow could be kept
//!   (rescaled) or had to be discarded before augmenting.
//!
//! All counters are monotone process-wide atomics with relaxed
//! ordering: they are observability, never control flow. Callers that
//! want per-run numbers snapshot [`flow_stats`] before and after the
//! region of interest and subtract with [`FlowStats::since`] — tests
//! only compare values taken on the asserting thread around
//! fully-joined work.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static NETWORKS_BUILT: AtomicU64 = AtomicU64::new(0);
pub(crate) static ARCS_BUILT: AtomicU64 = AtomicU64::new(0);
pub(crate) static MAX_FLOW_CALLS: AtomicU64 = AtomicU64::new(0);
pub(crate) static WARM_SOLVES: AtomicU64 = AtomicU64::new(0);
pub(crate) static COLD_SOLVES: AtomicU64 = AtomicU64::new(0);

/// A snapshot (or a difference of two snapshots) of the flow-layer work
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Flow networks constructed ([`crate::Dinic::new`]).
    pub networks_built: u64,
    /// Arcs added across all networks ([`crate::Dinic::add_edge`]).
    pub arcs_built: u64,
    /// Max-flow solves ([`crate::Dinic::max_flow`]).
    pub max_flow_invocations: u64,
    /// Parametric solves that kept (rescaled) the retained flow.
    pub warm_solves: u64,
    /// Parametric solves that discarded the retained flow first.
    pub cold_solves: u64,
}

impl FlowStats {
    /// Component-wise difference against an earlier snapshot
    /// (saturating, so a stale snapshot can never underflow).
    pub fn since(&self, earlier: &FlowStats) -> FlowStats {
        FlowStats {
            networks_built: self.networks_built.saturating_sub(earlier.networks_built),
            arcs_built: self.arcs_built.saturating_sub(earlier.arcs_built),
            max_flow_invocations: self
                .max_flow_invocations
                .saturating_sub(earlier.max_flow_invocations),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            cold_solves: self.cold_solves.saturating_sub(earlier.cold_solves),
        }
    }

    /// Total parametric solves (warm + cold).
    pub fn parametric_solves(&self) -> u64 {
        self.warm_solves + self.cold_solves
    }

    /// Fraction of parametric solves that warm-started (0 when none
    /// ran). For reports only — exact counts are the contract.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.parametric_solves();
        if total == 0 {
            0.0
        } else {
            self.warm_solves as f64 / total as f64
        }
    }
}

/// Current process-wide counter values.
///
/// ```
/// use lhcds_flow::{flow_stats, Dinic};
///
/// let before = flow_stats();
/// let mut net = Dinic::new(2);
/// net.add_edge(0, 1, 3);
/// net.max_flow(0, 1);
/// let delta = flow_stats().since(&before);
/// assert_eq!(delta.networks_built, 1);
/// assert_eq!(delta.arcs_built, 1);
/// assert_eq!(delta.max_flow_invocations, 1);
/// ```
pub fn flow_stats() -> FlowStats {
    FlowStats {
        networks_built: NETWORKS_BUILT.load(Ordering::Relaxed),
        arcs_built: ARCS_BUILT.load(Ordering::Relaxed),
        max_flow_invocations: MAX_FLOW_CALLS.load(Ordering::Relaxed),
        warm_solves: WARM_SOLVES.load(Ordering::Relaxed),
        cold_solves: COLD_SOLVES.load(Ordering::Relaxed),
    }
}

/// Total number of max-flow solves this process has run so far.
///
/// This is observability, not control flow: callers that promise a
/// *flow-free* path (the query side of `lhcds-core`'s decomposition
/// index, served by `lhcds-service`) prove the promise in tests by
/// snapshotting this counter around the queried region and asserting it
/// never moved.
///
/// ```
/// use lhcds_flow::{max_flow_invocations, Dinic};
///
/// let before = max_flow_invocations();
/// let mut net = Dinic::new(2);
/// net.add_edge(0, 1, 3);
/// net.max_flow(0, 1);
/// assert!(max_flow_invocations() > before);
/// ```
pub fn max_flow_invocations() -> u64 {
    MAX_FLOW_CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_and_componentwise() {
        let a = FlowStats {
            networks_built: 5,
            arcs_built: 100,
            max_flow_invocations: 9,
            warm_solves: 3,
            cold_solves: 4,
        };
        let b = FlowStats {
            networks_built: 2,
            arcs_built: 40,
            max_flow_invocations: 10, // "later" snapshot is behind: saturate
            warm_solves: 1,
            cold_solves: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.networks_built, 3);
        assert_eq!(d.arcs_built, 60);
        assert_eq!(d.max_flow_invocations, 0);
        assert_eq!(d.warm_solves, 2);
        assert_eq!(d.cold_solves, 3);
        assert_eq!(d.parametric_solves(), 5);
        assert!((d.warm_hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(FlowStats::default().warm_hit_rate(), 0.0);
    }
}
