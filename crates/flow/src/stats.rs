//! Process-wide flow-layer work counters.
//!
//! The verification stack's dominant cost is max-flow, and the PR-level
//! acceptance contracts of this repository are phrased over *work
//! counters*, not wall time: "the read path runs zero flow", "the reuse
//! path builds one network per candidate instance, not one per density
//! probe". This module is the single source of truth for those
//! counters:
//!
//! * `networks_built` — [`crate::Dinic::new`] calls (every flow network
//!   ever constructed, parametric or not);
//! * `arcs_built` — [`crate::Dinic::add_edge`] calls (arc *pairs*; the
//!   implicit reverse arc is not counted separately);
//! * `max_flow_invocations` — [`crate::Dinic::max_flow`] calls;
//! * `warm_solves` / `retract_solves` / `first_build` /
//!   `infeasible_reset` — [`crate::ParametricNetwork`] solve outcomes:
//!   whether the retained residual flow could be kept as-is (rescaled),
//!   kept after cancelling the infeasible excess (the GGT never-reset
//!   path), or discarded — and, for discards, whether that was the
//!   unavoidable first solve on a fresh network or a genuine reset.
//!   [`FlowStats::cold_solves`] derives the historical cold total.
//! * `scale_fallbacks` — [`crate::ParametricNetwork::scale_for`] calls
//!   whose chained-lcm scale would have overflowed and restarted from
//!   the base scale (each one forfeits warm starts; previously silent).
//! * `ggt_*` — [`crate::GgtSolver`] divide-and-conquer telemetry:
//!   recursive interval splits, the deepest recursion reached
//!   (process-wide high-water mark), nodes carried through a recursive
//!   solve as contracted (pinned) material, and arcs a
//!   rebuild-per-probe cost model would have constructed for those
//!   solves but the shared network did not.
//!
//! All counters are monotone process-wide atomics with relaxed
//! ordering: they are observability, never control flow. Callers that
//! want per-run numbers snapshot [`flow_stats`] before and after the
//! region of interest and subtract with [`FlowStats::since`] — tests
//! only compare values taken on the asserting thread around
//! fully-joined work.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static NETWORKS_BUILT: AtomicU64 = AtomicU64::new(0);
pub(crate) static ARCS_BUILT: AtomicU64 = AtomicU64::new(0);
pub(crate) static MAX_FLOW_CALLS: AtomicU64 = AtomicU64::new(0);
pub(crate) static WARM_SOLVES: AtomicU64 = AtomicU64::new(0);
pub(crate) static RETRACT_SOLVES: AtomicU64 = AtomicU64::new(0);
pub(crate) static FIRST_BUILD: AtomicU64 = AtomicU64::new(0);
pub(crate) static INFEASIBLE_RESET: AtomicU64 = AtomicU64::new(0);
pub(crate) static SCALE_FALLBACKS: AtomicU64 = AtomicU64::new(0);
pub(crate) static GGT_RECURSIONS: AtomicU64 = AtomicU64::new(0);
pub(crate) static GGT_MAX_DEPTH: AtomicU64 = AtomicU64::new(0);
pub(crate) static GGT_CONTRACTED_NODES: AtomicU64 = AtomicU64::new(0);
pub(crate) static GGT_ARCS_SAVED: AtomicU64 = AtomicU64::new(0);

/// A snapshot (or a difference of two snapshots) of the flow-layer work
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Flow networks constructed ([`crate::Dinic::new`]).
    pub networks_built: u64,
    /// Arcs added across all networks ([`crate::Dinic::add_edge`]).
    pub arcs_built: u64,
    /// Max-flow solves ([`crate::Dinic::max_flow`]).
    pub max_flow_invocations: u64,
    /// Parametric solves that kept (rescaled) the retained flow as-is.
    pub warm_solves: u64,
    /// Parametric solves that kept the retained flow by cancelling the
    /// capacity-decrease excess along its own flow paths instead of
    /// resetting (the GGT never-reset path).
    pub retract_solves: u64,
    /// Cold solves that were the first on a freshly built network — the
    /// one discard per network no reuse scheme can avoid.
    pub first_build: u64,
    /// Cold solves that discarded a previously retained flow because a
    /// capacity decrease (or a non-multiple scale change) made it
    /// infeasible — the reuse losses `retract_solves` exists to remove.
    pub infeasible_reset: u64,
    /// `scale_for` calls that fell back to a fresh minimal scale because
    /// the chained lcm would have overflowed the scale limit; each one
    /// forfeits the warm/retract start for that solve.
    pub scale_fallbacks: u64,
    /// GGT divide-and-conquer recursion steps (interval splits probed).
    pub ggt_recursions: u64,
    /// Deepest GGT recursion reached. A process-wide high-water mark,
    /// not an additive count: [`FlowStats::since`] carries the later
    /// snapshot's value through unchanged.
    pub ggt_max_depth: u64,
    /// Ladder nodes carried through GGT recursive solves as contracted
    /// (source/sink-pinned) material instead of being re-materialized.
    pub ggt_contracted_nodes: u64,
    /// Arcs that a rebuild-per-probe cost model would have constructed
    /// for GGT recursive solves but the shared network did not.
    pub ggt_arcs_saved: u64,
}

impl FlowStats {
    /// Component-wise difference against an earlier snapshot
    /// (saturating, so a stale snapshot can never underflow).
    /// `ggt_max_depth` is a gauge, not a count: the later snapshot's
    /// high-water mark is carried through as-is.
    pub fn since(&self, earlier: &FlowStats) -> FlowStats {
        FlowStats {
            networks_built: self.networks_built.saturating_sub(earlier.networks_built),
            arcs_built: self.arcs_built.saturating_sub(earlier.arcs_built),
            max_flow_invocations: self
                .max_flow_invocations
                .saturating_sub(earlier.max_flow_invocations),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            retract_solves: self.retract_solves.saturating_sub(earlier.retract_solves),
            first_build: self.first_build.saturating_sub(earlier.first_build),
            infeasible_reset: self
                .infeasible_reset
                .saturating_sub(earlier.infeasible_reset),
            scale_fallbacks: self.scale_fallbacks.saturating_sub(earlier.scale_fallbacks),
            ggt_recursions: self.ggt_recursions.saturating_sub(earlier.ggt_recursions),
            ggt_max_depth: self.ggt_max_depth,
            ggt_contracted_nodes: self
                .ggt_contracted_nodes
                .saturating_sub(earlier.ggt_contracted_nodes),
            ggt_arcs_saved: self.ggt_arcs_saved.saturating_sub(earlier.ggt_arcs_saved),
        }
    }

    /// Parametric solves that discarded the retained flow (the
    /// historical "cold" total): unavoidable first builds plus genuine
    /// infeasibility resets.
    pub fn cold_solves(&self) -> u64 {
        self.first_build + self.infeasible_reset
    }

    /// Total parametric solves (warm + retract + cold).
    pub fn parametric_solves(&self) -> u64 {
        self.warm_solves + self.retract_solves + self.cold_solves()
    }

    /// Fraction of parametric solves that kept the retained flow —
    /// warm starts plus retractions — out of all parametric solves
    /// (0 when none ran). For reports only — exact counts are the
    /// contract.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.parametric_solves();
        if total == 0 {
            0.0
        } else {
            (self.warm_solves + self.retract_solves) as f64 / total as f64
        }
    }
}

/// Current process-wide counter values.
///
/// ```
/// use lhcds_flow::{flow_stats, Dinic};
///
/// let before = flow_stats();
/// let mut net = Dinic::new(2);
/// net.add_edge(0, 1, 3);
/// net.max_flow(0, 1);
/// let delta = flow_stats().since(&before);
/// assert_eq!(delta.networks_built, 1);
/// assert_eq!(delta.arcs_built, 1);
/// assert_eq!(delta.max_flow_invocations, 1);
/// ```
pub fn flow_stats() -> FlowStats {
    FlowStats {
        networks_built: NETWORKS_BUILT.load(Ordering::Relaxed),
        arcs_built: ARCS_BUILT.load(Ordering::Relaxed),
        max_flow_invocations: MAX_FLOW_CALLS.load(Ordering::Relaxed),
        warm_solves: WARM_SOLVES.load(Ordering::Relaxed),
        retract_solves: RETRACT_SOLVES.load(Ordering::Relaxed),
        first_build: FIRST_BUILD.load(Ordering::Relaxed),
        infeasible_reset: INFEASIBLE_RESET.load(Ordering::Relaxed),
        scale_fallbacks: SCALE_FALLBACKS.load(Ordering::Relaxed),
        ggt_recursions: GGT_RECURSIONS.load(Ordering::Relaxed),
        ggt_max_depth: GGT_MAX_DEPTH.load(Ordering::Relaxed),
        ggt_contracted_nodes: GGT_CONTRACTED_NODES.load(Ordering::Relaxed),
        ggt_arcs_saved: GGT_ARCS_SAVED.load(Ordering::Relaxed),
    }
}

/// Total number of max-flow solves this process has run so far.
///
/// This is observability, not control flow: callers that promise a
/// *flow-free* path (the query side of `lhcds-core`'s decomposition
/// index, served by `lhcds-service`) prove the promise in tests by
/// snapshotting this counter around the queried region and asserting it
/// never moved.
///
/// ```
/// use lhcds_flow::{max_flow_invocations, Dinic};
///
/// let before = max_flow_invocations();
/// let mut net = Dinic::new(2);
/// net.add_edge(0, 1, 3);
/// net.max_flow(0, 1);
/// assert!(max_flow_invocations() > before);
/// ```
pub fn max_flow_invocations() -> u64 {
    MAX_FLOW_CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_and_componentwise() {
        let a = FlowStats {
            networks_built: 5,
            arcs_built: 100,
            max_flow_invocations: 9,
            warm_solves: 3,
            retract_solves: 2,
            first_build: 1,
            infeasible_reset: 3,
            scale_fallbacks: 1,
            ggt_recursions: 6,
            ggt_max_depth: 4,
            ggt_contracted_nodes: 17,
            ggt_arcs_saved: 220,
        };
        let b = FlowStats {
            networks_built: 2,
            arcs_built: 40,
            max_flow_invocations: 10, // "later" snapshot is behind: saturate
            warm_solves: 1,
            retract_solves: 1,
            first_build: 1,
            infeasible_reset: 1,
            scale_fallbacks: 0,
            ggt_recursions: 2,
            ggt_max_depth: 3,
            ggt_contracted_nodes: 5,
            ggt_arcs_saved: 100,
        };
        let d = a.since(&b);
        assert_eq!(d.networks_built, 3);
        assert_eq!(d.arcs_built, 60);
        assert_eq!(d.max_flow_invocations, 0);
        assert_eq!(d.warm_solves, 2);
        assert_eq!(d.retract_solves, 1);
        assert_eq!(d.first_build, 0);
        assert_eq!(d.infeasible_reset, 2);
        assert_eq!(d.scale_fallbacks, 1);
        assert_eq!(d.ggt_recursions, 4);
        assert_eq!(d.ggt_max_depth, 4, "high-water mark carries through");
        assert_eq!(d.ggt_contracted_nodes, 12);
        assert_eq!(d.ggt_arcs_saved, 120);
        assert_eq!(d.cold_solves(), 2);
        assert_eq!(d.parametric_solves(), 5);
        assert!((d.warm_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(FlowStats::default().warm_hit_rate(), 0.0);
    }
}
