//! Property-based tests: max-flow/min-cut duality on random networks,
//! parametric-reuse equivalence, and exactness of the rational
//! arithmetic.

use lhcds_flow::{rational, Dinic, ParametricNetwork, Ratio};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Net {
    n: usize,
    arcs: Vec<(u32, u32, i128)>,
}

fn arb_net() -> impl Strategy<Value = Net> {
    (3usize..10).prop_flat_map(|n| {
        prop::collection::vec((0..n as u32, 0..n as u32, 0i128..50), 1..(n * n).min(40)).prop_map(
            move |raw| Net {
                n,
                arcs: raw.into_iter().filter(|&(u, v, _)| u != v).collect(),
            },
        )
    })
}

proptest! {
    /// Max-flow equals the capacity of the minimal source-side cut and
    /// of the maximal source-side cut, and the two sides are nested.
    #[test]
    fn maxflow_mincut_duality(net in arb_net()) {
        let (s, t) = (0u32, (net.n - 1) as u32);
        let mut d = Dinic::new(net.n);
        for &(u, v, c) in &net.arcs {
            d.add_edge(u, v, c);
        }
        let flow = d.max_flow(s, t);
        prop_assert!(flow >= 0);

        let lo = d.min_cut_source_side(s);
        let hi = d.max_cut_source_side(t);
        prop_assert!(lo[s as usize] && !lo[t as usize]);
        prop_assert!(hi[s as usize] && !hi[t as usize]);
        // nested
        for i in 0..net.n {
            prop_assert!(!lo[i] || hi[i]);
        }
        // both cuts have capacity exactly `flow`
        for side in [&lo, &hi] {
            let cut: i128 = net
                .arcs
                .iter()
                .filter(|&&(u, v, _)| side[u as usize] && !side[v as usize])
                .map(|&(_, _, c)| c)
                .sum();
            prop_assert_eq!(cut, flow);
        }
    }

    /// Flow conservation at interior nodes.
    #[test]
    fn conservation(net in arb_net()) {
        let (s, t) = (0u32, (net.n - 1) as u32);
        let mut d = Dinic::new(net.n);
        let ids: Vec<_> = net.arcs.iter().map(|&(u, v, c)| (u, v, c, d.add_edge(u, v, c))).collect();
        let flow = d.max_flow(s, t);
        let mut net_out = vec![0i128; net.n];
        for (u, v, c, id) in ids {
            let f = c - d.residual(id);
            prop_assert!(f >= 0 && f <= c);
            net_out[u as usize] += f;
            net_out[v as usize] -= f;
        }
        prop_assert_eq!(net_out[s as usize], flow);
        prop_assert_eq!(net_out[t as usize], -flow);
        for &x in &net_out[1..net.n - 1] {
            prop_assert_eq!(x, 0);
        }
    }

    /// A reused ParametricNetwork, driven through an arbitrary schedule
    /// of parametric capacities (monotone or not) and scale
    /// denominators, answers every solve with exactly the cut sides of
    /// a freshly built Dinic at the same capacities.
    #[test]
    fn parametric_reuse_equals_fresh_networks(
        net in arb_net(),
        schedule in prop::collection::vec(
            (prop::collection::vec(0i128..40, 8), 1i128..7),
            1..6,
        ),
    ) {
        let (s, t) = (0u32, (net.n - 1) as u32);
        const BASE: i128 = 2;
        let mut pn = ParametricNetwork::new(net.n, s, t, BASE);
        // static arcs: the random net's arcs at base scale
        for &(u, v, c) in &net.arcs {
            pn.add_static(u, v, c);
        }
        // parametric arcs: s→v and v→t for every interior node
        let mut param_ends: Vec<(u32, u32)> = Vec::new();
        for v in 1..(net.n as u32 - 1) {
            pn.add_parametric(s, v);
            param_ends.push((s, v));
            pn.add_parametric(v, t);
            param_ends.push((v, t));
        }
        for (caps_raw, den) in schedule {
            let scale = pn.scale_for(den);
            prop_assert_eq!(scale % BASE, 0);
            prop_assert_eq!(scale % den, 0);
            let caps: Vec<i128> = (0..pn.param_count())
                .map(|i| caps_raw[i % caps_raw.len()] * (scale / BASE))
                .collect();
            pn.solve(scale, &caps);

            let mut d = Dinic::new(net.n);
            for &(u, v, c) in &net.arcs {
                d.add_edge(u, v, c * (scale / BASE));
            }
            for (i, &(u, v)) in param_ends.iter().enumerate() {
                d.add_edge(u, v, caps[i]);
            }
            d.max_flow(s, t);
            prop_assert_eq!(pn.min_cut_source_side(), d.min_cut_source_side(s));
            prop_assert_eq!(pn.max_cut_source_side(), d.max_cut_source_side(t));
        }
    }

    /// Ratio ordering agrees with exact cross-multiplication computed
    /// in i128 on small operands.
    #[test]
    fn ratio_order_matches_reference(a in -500i128..500, b in 1i128..500, c in -500i128..500, d in 1i128..500) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        let reference = (a * d).cmp(&(c * b));
        prop_assert_eq!(x.cmp(&y), reference);
    }

    /// Field laws on small rationals (exact arithmetic).
    #[test]
    fn ratio_field_laws(a in -40i128..40, b in 1i128..20, c in -40i128..40, d in 1i128..20) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x - x, Ratio::zero());
        if c != 0 {
            prop_assert_eq!((x / y) * y, x);
        }
        // distributivity
        let z = Ratio::new(d, b);
        prop_assert_eq!(x * (y + z), x * y + x * z);
    }

    /// Huge-magnitude comparisons do not overflow (the continued-
    /// fraction path).
    #[test]
    fn ratio_order_no_overflow(a in 0i128..1_000_000_000_000_000_000, b in 1i128..1_000_000_000) {
        let big = Ratio::new(a.max(1) * 1_000_000_000, b);
        let small = Ratio::new(1, b);
        prop_assert!(big >= small);
        let sentinel = Ratio::new(i128::MAX / 2, 1);
        prop_assert!(sentinel > big);
        prop_assert!(-sentinel < small);
    }

    /// scale_to_int round-trips through exact division.
    #[test]
    fn scale_to_int_round_trip(num in -1000i128..1000, den in 1i128..60, mult in 1i128..50) {
        let r = Ratio::new(num, den);
        let scale = r.den() * mult;
        let scaled = r.scale_to_int(scale);
        prop_assert_eq!(Ratio::new(scaled, scale), r);
    }

    /// lcm_up_to is divisible by every value in range.
    #[test]
    fn lcm_up_to_divisibility(h in 1u32..14) {
        let l = rational::lcm_up_to(h);
        for k in 1..=h as i128 {
            prop_assert_eq!(l % k, 0);
        }
    }
}
