//! Exact work-counter contracts of the flow layer.
//!
//! The counters in [`lhcds_flow::stats`] are process-wide, so tests
//! asserting exact deltas must own their process: this file is a
//! dedicated integration-test binary, and its tests additionally
//! serialize through one mutex so the counters are quiet during every
//! measured region.

use std::sync::Mutex;

use lhcds_flow::parametric::ReusePolicy;
use lhcds_flow::{flow_stats, Dinic, GgtSolver, ParametricNetwork, SolveMode};

static COUNTERS: Mutex<()> = Mutex::new(());

#[test]
fn dinic_counts_networks_arcs_and_invocations() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    let mut d = Dinic::new(3);
    d.add_edge(0, 1, 4);
    d.add_edge(1, 2, 4);
    d.max_flow(0, 2);
    d.reset_flow();
    d.max_flow(0, 2);
    let delta = flow_stats().since(&before);
    assert_eq!(delta.networks_built, 1);
    assert_eq!(delta.arcs_built, 2);
    assert_eq!(delta.max_flow_invocations, 2);
    assert_eq!(delta.warm_solves, 0, "plain Dinic is not parametric");
    assert_eq!(delta.retract_solves, 0);
    assert_eq!(delta.cold_solves(), 0);
}

#[test]
fn parametric_counts_builds_and_solve_modes() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    // s=0, vertices {1, 2}, gadget node 3, t=4 — the Figure 6 shape in
    // miniature
    let mut pn = ParametricNetwork::new(5, 0, 4, 2);
    pn.add_static(1, 3, 2);
    pn.add_static(3, 2, 4);
    for (from, to) in [(0u32, 1u32), (0, 2), (1, 4), (2, 4)] {
        pn.add_parametric(from, to);
    }
    let scale = pn.scale_for(1);
    assert_eq!(pn.solve(scale, &[6, 6, 1, 1]), SolveMode::Cold);
    assert_eq!(pn.solve(scale, &[6, 6, 2, 2]), SolveMode::Warm);
    assert_eq!(pn.solve(scale, &[6, 6, 0, 0]), SolveMode::Cold); // decrease
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 1, "one Dinic for three solves");
    assert_eq!(d.arcs_built, 6);
    assert_eq!(d.max_flow_invocations, 3);
    assert_eq!(d.warm_solves, 1);
    assert_eq!(d.cold_solves(), 2);
    // the satellite split: the first discard is the unavoidable build,
    // the decrease under Reset policy is a genuine reset
    assert_eq!(d.first_build, 1);
    assert_eq!(d.infeasible_reset, 1);
    assert_eq!(d.retract_solves, 0);
}

#[test]
fn retract_policy_turns_resets_into_retractions() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    let mut pn = ParametricNetwork::new(5, 0, 4, 2);
    pn.add_static(1, 3, 2);
    pn.add_static(3, 2, 4);
    for (from, to) in [(0u32, 1u32), (0, 2), (1, 4), (2, 4)] {
        pn.add_parametric(from, to);
    }
    let scale = pn.scale_for(1);
    let p = ReusePolicy::Retract;
    assert_eq!(pn.solve_with(scale, &[6, 6, 1, 1], p), SolveMode::Cold);
    assert_eq!(pn.solve_with(scale, &[6, 6, 2, 2], p), SolveMode::Warm);
    assert_eq!(pn.solve_with(scale, &[6, 6, 0, 0], p), SolveMode::Retract);
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 1);
    assert_eq!(d.max_flow_invocations, 3);
    assert_eq!(d.warm_solves, 1);
    assert_eq!(d.retract_solves, 1);
    assert_eq!(d.first_build, 1);
    assert_eq!(d.infeasible_reset, 0, "retract replaces every reset");
    assert!((d.warm_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
}

/// `ggt_max_depth` is a high-water gauge, not a monotone counter:
/// `since()` must carry the current mark through instead of subtracting
/// the snapshot (a delta of a deep pre-snapshot run minus itself would
/// report garbage — typically 0 — for any warm process).
#[test]
fn since_reports_ggt_depth_as_gauge_not_delta() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    // deep run first: four distinct levels force nested interval splits
    let mut deep = GgtSolver::new(6, 0, 5, 1);
    deep.ladder_node(1, 24, 2);
    deep.ladder_node(2, 12, 2);
    deep.ladder_node(3, 6, 2);
    deep.ladder_node(4, 2, 2);
    assert_eq!(deep.principal_partition().len(), 4);
    let high_water = flow_stats().ggt_max_depth;
    assert!(high_water >= 2, "deep ladder should recurse: {high_water}");

    // snapshot, then strictly shallower work
    let before = flow_stats();
    let mut shallow = GgtSolver::new(4, 0, 3, 1);
    shallow.ladder_node(1, 4, 2);
    shallow.ladder_node(2, 4, 2); // same level → no split at all
    assert_eq!(shallow.principal_partition().len(), 1);

    let d = flow_stats().since(&before);
    assert_eq!(
        d.ggt_max_depth, high_water,
        "since() must report the process high-water mark, not a subtraction"
    );
    // while genuine counters in the same interval still delta normally
    assert_eq!(d.networks_built, 1);
    assert_eq!(
        d.max_flow_invocations,
        d.warm_solves + d.retract_solves + d.cold_solves()
    );
}

/// Satellite contract: every `FlowStats` update site is a `fetch_*`
/// atomic RMW, so the accounting invariant `invocations = warm +
/// retract + cold` holds exactly even with solvers racing on the
/// process-wide counters — no lost updates.
#[test]
fn counters_hold_under_four_concurrent_ladders() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    std::thread::scope(|scope| {
        for w in 0..4u32 {
            scope.spawn(move || {
                // each worker owns a solver; only the global counters
                // are shared
                let mut g = GgtSolver::new(5, 0, 4, 1);
                g.ladder_node(1, 12 + i128::from(w), 2);
                g.ladder_node(2, 6, 2);
                g.ladder_node(3, 2, 2);
                let part = g.principal_partition();
                assert!(!part.is_empty());

                let mut pn = ParametricNetwork::new(4, 0, 3, 2);
                pn.add_static(1, 2, 3);
                for (from, to) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
                    pn.add_parametric(from, to);
                }
                let scale = pn.scale_for(1);
                pn.solve(scale, &[4, 4, 1, 1]);
                pn.solve(scale, &[4, 4, 2, 2]);
                pn.solve_with(scale, &[4, 4, 1, 1], ReusePolicy::Retract);
            });
        }
    });
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 8, "one GGT + one parametric per worker");
    assert_eq!(d.first_build, 8);
    assert!(d.max_flow_invocations >= 8 + 4 * 3);
    assert!(d.warm_solves >= 4, "each worker warm-solves at least once");
    assert!(d.retract_solves >= 4);
    assert_eq!(
        d.max_flow_invocations,
        d.warm_solves + d.retract_solves + d.cold_solves(),
        "the accounting invariant must survive 4 concurrent solvers"
    );
}

#[test]
fn ggt_partition_builds_one_network_and_counts_recursions() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    // two independent levels → at least one interval split
    let mut g = GgtSolver::new(4, 0, 3, 1);
    g.ladder_node(1, 6, 2);
    g.ladder_node(2, 2, 2);
    let part = g.principal_partition();
    assert_eq!(part.len(), 2);
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 1, "the whole ladder shares one network");
    assert_eq!(d.first_build, 1);
    assert_eq!(d.infeasible_reset, 0, "GGT never resets");
    assert!(d.ggt_recursions >= 1);
    assert!(d.ggt_max_depth >= 1);
    assert!(
        d.ggt_arcs_saved >= d.arcs_built,
        "every re-solve after the first saves a rebuild"
    );
    assert_eq!(
        d.max_flow_invocations,
        d.warm_solves + d.retract_solves + d.cold_solves(),
        "every parametric solve is classified"
    );
}
