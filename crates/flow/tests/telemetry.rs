//! Exact work-counter contracts of the flow layer.
//!
//! The counters in [`lhcds_flow::stats`] are process-wide, so tests
//! asserting exact deltas must own their process: this file is a
//! dedicated integration-test binary, and its tests additionally
//! serialize through one mutex so the counters are quiet during every
//! measured region.

use std::sync::Mutex;

use lhcds_flow::parametric::ReusePolicy;
use lhcds_flow::{flow_stats, Dinic, GgtSolver, ParametricNetwork, SolveMode};

static COUNTERS: Mutex<()> = Mutex::new(());

#[test]
fn dinic_counts_networks_arcs_and_invocations() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    let mut d = Dinic::new(3);
    d.add_edge(0, 1, 4);
    d.add_edge(1, 2, 4);
    d.max_flow(0, 2);
    d.reset_flow();
    d.max_flow(0, 2);
    let delta = flow_stats().since(&before);
    assert_eq!(delta.networks_built, 1);
    assert_eq!(delta.arcs_built, 2);
    assert_eq!(delta.max_flow_invocations, 2);
    assert_eq!(delta.warm_solves, 0, "plain Dinic is not parametric");
    assert_eq!(delta.retract_solves, 0);
    assert_eq!(delta.cold_solves(), 0);
}

#[test]
fn parametric_counts_builds_and_solve_modes() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    // s=0, vertices {1, 2}, gadget node 3, t=4 — the Figure 6 shape in
    // miniature
    let mut pn = ParametricNetwork::new(5, 0, 4, 2);
    pn.add_static(1, 3, 2);
    pn.add_static(3, 2, 4);
    for (from, to) in [(0u32, 1u32), (0, 2), (1, 4), (2, 4)] {
        pn.add_parametric(from, to);
    }
    let scale = pn.scale_for(1);
    assert_eq!(pn.solve(scale, &[6, 6, 1, 1]), SolveMode::Cold);
    assert_eq!(pn.solve(scale, &[6, 6, 2, 2]), SolveMode::Warm);
    assert_eq!(pn.solve(scale, &[6, 6, 0, 0]), SolveMode::Cold); // decrease
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 1, "one Dinic for three solves");
    assert_eq!(d.arcs_built, 6);
    assert_eq!(d.max_flow_invocations, 3);
    assert_eq!(d.warm_solves, 1);
    assert_eq!(d.cold_solves(), 2);
    // the satellite split: the first discard is the unavoidable build,
    // the decrease under Reset policy is a genuine reset
    assert_eq!(d.first_build, 1);
    assert_eq!(d.infeasible_reset, 1);
    assert_eq!(d.retract_solves, 0);
}

#[test]
fn retract_policy_turns_resets_into_retractions() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    let mut pn = ParametricNetwork::new(5, 0, 4, 2);
    pn.add_static(1, 3, 2);
    pn.add_static(3, 2, 4);
    for (from, to) in [(0u32, 1u32), (0, 2), (1, 4), (2, 4)] {
        pn.add_parametric(from, to);
    }
    let scale = pn.scale_for(1);
    let p = ReusePolicy::Retract;
    assert_eq!(pn.solve_with(scale, &[6, 6, 1, 1], p), SolveMode::Cold);
    assert_eq!(pn.solve_with(scale, &[6, 6, 2, 2], p), SolveMode::Warm);
    assert_eq!(pn.solve_with(scale, &[6, 6, 0, 0], p), SolveMode::Retract);
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 1);
    assert_eq!(d.max_flow_invocations, 3);
    assert_eq!(d.warm_solves, 1);
    assert_eq!(d.retract_solves, 1);
    assert_eq!(d.first_build, 1);
    assert_eq!(d.infeasible_reset, 0, "retract replaces every reset");
    assert!((d.warm_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn ggt_partition_builds_one_network_and_counts_recursions() {
    let _quiet = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let before = flow_stats();
    // two independent levels → at least one interval split
    let mut g = GgtSolver::new(4, 0, 3, 1);
    g.ladder_node(1, 6, 2);
    g.ladder_node(2, 2, 2);
    let part = g.principal_partition();
    assert_eq!(part.len(), 2);
    let d = flow_stats().since(&before);
    assert_eq!(d.networks_built, 1, "the whole ladder shares one network");
    assert_eq!(d.first_build, 1);
    assert_eq!(d.infeasible_reset, 0, "GGT never resets");
    assert!(d.ggt_recursions >= 1);
    assert!(d.ggt_max_depth >= 1);
    assert!(
        d.ggt_arcs_saved >= d.arcs_built,
        "every re-solve after the first saves a rebuild"
    );
    assert_eq!(
        d.max_flow_invocations,
        d.warm_solves + d.retract_solves + d.cold_solves(),
        "every parametric solve is classified"
    );
}
