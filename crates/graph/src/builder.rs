//! Mutable accumulation of edges into a normalized [`CsrGraph`].

use crate::{CsrGraph, VertexId};

/// Accumulates undirected edges and produces a normalized [`CsrGraph`].
///
/// Normalization performed by [`GraphBuilder::build`]:
///
/// * self-loops are dropped (an h-clique is a set of *distinct* vertices);
/// * parallel edges are deduplicated;
/// * neighbor lists are sorted ascending.
///
/// The number of vertices is `max(explicit n, largest endpoint + 1)`, so
/// isolated trailing vertices can be kept by calling
/// [`GraphBuilder::ensure_vertex`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    n: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with `n` vertices pre-declared and capacity for
    /// `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            n,
        }
    }

    /// Declares that vertex `v` exists even if no edge touches it.
    pub fn ensure_vertex(&mut self, v: VertexId) -> &mut Self {
        self.n = self.n.max(v as usize + 1);
        self
    }

    /// Adds an undirected edge `{u, v}`. Self-loops are ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.n = self.n.max(u.max(v) as usize + 1);
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
        }
        self
    }

    /// Adds every edge from an iterator of pairs.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        iter: I,
    ) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of distinct vertices declared so far.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Finalizes the builder into an immutable [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were processed in sorted (u, v) order with u < v, so each
        // vertex's forward neighbors arrive sorted, but back-edges (v -> u)
        // interleave; a per-vertex sort restores the invariant cheaply.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(0, 1)
            .add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 0)
            .add_edge(5, 3)
            .add_edge(5, 1)
            .add_edge(2, 5);
        let g = b.build();
        assert_eq!(g.neighbors(5), &[0, 1, 2, 3]);
    }

    #[test]
    fn ensure_vertex_keeps_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(9);
        let g = b.build();
        assert_eq!(g.n(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn extend_edges_matches_individual_adds() {
        let mut a = GraphBuilder::new();
        a.extend_edges([(0, 1), (1, 2), (2, 0)]);
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        let (ga, gb) = (a.build(), b.build());
        assert_eq!(ga.n(), gb.n());
        assert_eq!(
            ga.edges().collect::<Vec<_>>(),
            gb.edges().collect::<Vec<_>>()
        );
    }
}
