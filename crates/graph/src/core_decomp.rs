//! Edge k-core decomposition and degeneracy orderings.
//!
//! The degeneracy order is the backbone of kClist-style clique
//! enumeration (`lhcds-clique`): orienting each edge from earlier to
//! later peel position yields a DAG whose out-neighborhoods have size at
//! most the degeneracy, bounding enumeration work.

use crate::{CsrGraph, VertexId};

/// Result of a degeneracy (min-degree) peeling sweep.
#[derive(Debug, Clone)]
pub struct Degeneracy {
    /// Peeling order: `order[i]` is the i-th removed vertex.
    pub order: Vec<VertexId>,
    /// Inverse permutation: `position[v]` = index of `v` in `order`.
    pub position: Vec<u32>,
    /// Core number of each vertex.
    pub core: Vec<u32>,
    /// The graph degeneracy (max core number; 0 for edgeless graphs).
    pub degeneracy: u32,
}

/// Computes core numbers and a degeneracy ordering with the classic
/// linear-time bucket peeling algorithm (Matula–Beck / Batagelj–Zaveršnik).
pub fn degeneracy_order(g: &CsrGraph) -> Degeneracy {
    let n = g.n();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // bucket[d] = list of vertices with current degree d (lazy).
    let mut bucket: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        bucket[degree[v]].push(v as VertexId);
    }

    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut position = vec![0u32; n];
    let mut core = vec![0u32; n];
    let mut cur = 0usize; // current peel level (monotone up to re-checks)
    let mut k = 0u32; // running max peel level = core number

    for step in 0..n {
        // Find the lowest non-empty bucket holding a live vertex with an
        // up-to-date degree (entries are lazily invalidated).
        let v = loop {
            while cur <= max_deg && bucket[cur].is_empty() {
                cur += 1;
            }
            debug_assert!(cur <= max_deg, "ran out of vertices during peeling");
            let v = bucket[cur].pop().expect("non-empty bucket");
            if !removed[v as usize] && degree[v as usize] == cur {
                break v;
            }
        };
        removed[v as usize] = true;
        k = k.max(cur as u32);
        core[v as usize] = k;
        position[v as usize] = step as u32;
        order.push(v);
        for &w in g.neighbors(v) {
            let wi = w as usize;
            if !removed[wi] {
                degree[wi] -= 1;
                bucket[degree[wi]].push(w);
                if degree[wi] < cur {
                    cur = degree[wi];
                }
            }
        }
    }

    let degeneracy = core.iter().copied().max().unwrap_or(0);
    Degeneracy {
        order,
        position,
        core,
        degeneracy,
    }
}

/// Vertices of the (edge) k-core: the maximal subgraph where every vertex
/// has degree ≥ `k` — equivalently, vertices with core number ≥ `k`.
pub fn k_core_vertices(g: &CsrGraph, k: u32) -> Vec<VertexId> {
    let d = degeneracy_order(g);
    g.vertices().filter(|&v| d.core[v as usize] >= k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// K4 attached to a path: core numbers 3 inside the clique, then 1s.
    fn k4_with_tail() -> CsrGraph {
        CsrGraph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn core_numbers_of_k4_with_tail() {
        let d = degeneracy_order(&k4_with_tail());
        assert_eq!(&d.core[0..4], &[3, 3, 3, 3]);
        assert_eq!(d.core[4], 1);
        assert_eq!(d.core[5], 1);
        assert_eq!(d.degeneracy, 3);
    }

    #[test]
    fn order_is_a_permutation_consistent_with_position() {
        let g = k4_with_tail();
        let d = degeneracy_order(&g);
        let mut seen = vec![false; g.n()];
        for (i, &v) in d.order.iter().enumerate() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
            assert_eq!(d.position[v as usize] as usize, i);
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn out_degree_in_order_bounded_by_degeneracy() {
        let g = k4_with_tail();
        let d = degeneracy_order(&g);
        for v in g.vertices() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&w| d.position[w as usize] > d.position[v as usize])
                .count();
            assert!(later as u32 <= d.degeneracy);
        }
    }

    #[test]
    fn k_core_extraction() {
        let g = k4_with_tail();
        assert_eq!(k_core_vertices(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core_vertices(&g, 1).len(), 6);
        assert!(k_core_vertices(&g, 4).is_empty());
    }

    #[test]
    fn handles_edgeless_and_empty_graphs() {
        let g = CsrGraph::from_edges(3, []);
        let d = degeneracy_order(&g);
        assert_eq!(d.core, vec![0, 0, 0]);
        assert_eq!(d.degeneracy, 0);
        let g = CsrGraph::from_edges(0, []);
        let d = degeneracy_order(&g);
        assert!(d.order.is_empty());
    }

    #[test]
    fn cycle_has_core_two() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let d = degeneracy_order(&g);
        assert!(d.core.iter().all(|&c| c == 2));
    }
}
