//! Immutable compressed-sparse-row graph storage.

use crate::{GraphBuilder, GraphError, VertexId};

/// An immutable, undirected simple graph in compressed-sparse-row form.
///
/// Neighbor lists are sorted ascending, enabling `O(log deg)` adjacency
/// queries ([`CsrGraph::has_edge`]) and linear-time sorted intersection
/// of neighborhoods — the inner loop of clique enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph from raw CSR parts. `offsets` must have length
    /// `n + 1` with `offsets[0] == 0`, be non-decreasing, and every
    /// neighbor slice must be sorted and free of duplicates/self-loops.
    ///
    /// This is intended for [`GraphBuilder`], which guarantees the
    /// invariants; they are checked in debug builds.
    pub(crate) fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        #[cfg(debug_assertions)]
        for v in 0..offsets.len() - 1 {
            let ns = &neighbors[offsets[v]..offsets[v + 1]];
            debug_assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted/dup neighbors");
            debug_assert!(ns.iter().all(|&u| u as usize != v), "self-loop");
        }
        CsrGraph { offsets, neighbors }
    }

    /// Rebuilds a graph from raw CSR parts originating *outside* this
    /// process (e.g. the on-disk cache in `lhcds-data`), with every
    /// structural invariant checked in release builds too:
    ///
    /// * `offsets` is non-empty, starts at 0, is non-decreasing, and
    ///   ends at `neighbors.len()`;
    /// * every neighbor list is strictly ascending (sorted, duplicate-free)
    ///   with all entries in `0..n` and no self-loops;
    /// * adjacency is symmetric (`u ∈ N(v)` ⇔ `v ∈ N(u)`).
    ///
    /// A checksum can prove a file was not corrupted in transit; only
    /// this validation proves the bytes describe a simple undirected
    /// graph.
    pub fn try_from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
    ) -> Result<Self, GraphError> {
        let invalid = |message: &str| GraphError::InvalidCsr(message.to_string());
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(invalid("offsets must be non-empty and start at 0"));
        }
        if *offsets.last().unwrap() != neighbors.len() {
            return Err(invalid("final offset must equal the neighbor count"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("offsets must be non-decreasing"));
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            let ns = &neighbors[offsets[v]..offsets[v + 1]];
            if ns.windows(2).any(|w| w[0] >= w[1]) {
                return Err(invalid("neighbor lists must be strictly ascending"));
            }
            if ns.iter().any(|&u| u as usize >= n) {
                return Err(invalid("neighbor id out of range"));
            }
            if ns.iter().any(|&u| u as usize == v) {
                return Err(invalid("self-loop"));
            }
        }
        let g = CsrGraph { offsets, neighbors };
        for v in 0..n as VertexId {
            for &u in g.neighbors(v) {
                if g.neighbors(u).binary_search(&v).is_err() {
                    return Err(invalid("adjacency must be symmetric"));
                }
            }
        }
        Ok(g)
    }

    /// Raw CSR parts `(offsets, neighbors)` — the exact arrays the
    /// on-disk cache serializes. `offsets` has length `n + 1`;
    /// `neighbors` concatenates the sorted neighbor lists.
    pub fn as_parts(&self) -> (&[usize], &[VertexId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Convenience constructor: `n` vertices and an edge iterator.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::with_capacity(n, 0);
        if n > 0 {
            b.ensure_vertex((n - 1) as VertexId);
        }
        b.extend_edges(edges);
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n() as VertexId
    }

    /// Iterates each undirected edge once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Size of the sorted intersection of the neighborhoods of `u` and
    /// `v` — the number of triangles through edge `{u, v}`.
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        let mut c = 0usize;
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_pendant();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_plus_pendant();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn common_neighbors_counts_triangles_through_edge() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_neighbor_count(0, 1), 1); // vertex 2
        assert_eq!(g.common_neighbor_count(2, 3), 0);
    }

    #[test]
    fn from_edges_respects_explicit_vertex_count() {
        let g = CsrGraph::from_edges(6, [(0, 1)]);
        assert_eq!(g.n(), 6);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn as_parts_round_trips_through_try_from_parts() {
        let g = triangle_plus_pendant();
        let (offsets, neighbors) = g.as_parts();
        let g2 = CsrGraph::try_from_parts(offsets.to_vec(), neighbors.to_vec()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn try_from_parts_rejects_invalid_structures() {
        // final offset disagrees with the neighbor count
        assert!(CsrGraph::try_from_parts(vec![0, 2], vec![1]).is_err());
        // empty offsets
        assert!(CsrGraph::try_from_parts(vec![], vec![]).is_err());
        // decreasing offsets
        assert!(CsrGraph::try_from_parts(vec![0, 2, 1, 2], vec![1, 2]).is_err());
        // unsorted neighbor list
        assert!(CsrGraph::try_from_parts(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).is_err());
        // self-loop
        assert!(CsrGraph::try_from_parts(vec![0, 1, 2], vec![0, 0]).is_err());
        // neighbor out of range
        assert!(CsrGraph::try_from_parts(vec![0, 1, 2], vec![1, 5]).is_err());
        // asymmetric adjacency: 0 lists 1 but 1 lists 2
        assert!(CsrGraph::try_from_parts(vec![0, 1, 2, 3], vec![1, 2, 1]).is_err());
        // valid single edge passes
        assert!(CsrGraph::try_from_parts(vec![0, 1, 2], vec![1, 0]).is_ok());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, []);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
