//! Graphviz DOT export for case-study visualization (paper Figures 13
//! and 17 are rendered this way).

use std::io::Write;

use crate::{CsrGraph, GraphError, VertexId};

/// Styling callback output for one vertex.
#[derive(Debug, Clone, Default)]
pub struct DotVertexStyle {
    /// Fill color (Graphviz color name or `#rrggbb`); `None` = default.
    pub fill: Option<String>,
    /// Display label; `None` = no label.
    pub label: Option<String>,
}

/// Writes `g` in DOT format. `style` decides per-vertex fill/label —
/// the typical use is coloring the top-k LhCDS memberships.
pub fn write_dot<W: Write>(
    g: &CsrGraph,
    mut writer: W,
    name: &str,
    mut style: impl FnMut(VertexId) -> DotVertexStyle,
) -> Result<(), GraphError> {
    writeln!(writer, "graph {name} {{")?;
    writeln!(
        writer,
        "  node [style=filled, shape=circle, width=0.15, label=\"\"];"
    )?;
    for v in g.vertices() {
        let s = style(v);
        let mut attrs = Vec::new();
        if let Some(fill) = s.fill {
            attrs.push(format!("fillcolor=\"{fill}\""));
        }
        if let Some(label) = s.label {
            attrs.push(format!("label=\"{}\"", label.replace('"', "\\\"")));
        }
        if attrs.is_empty() {
            writeln!(writer, "  v{v};")?;
        } else {
            writeln!(writer, "  v{v} [{}];", attrs.join(", "))?;
        }
    }
    for (u, v) in g.edges() {
        writeln!(writer, "  v{u} -- v{v};")?;
    }
    writeln!(writer, "}}")?;
    Ok(())
}

/// Convenience: DOT with a highlight palette over vertex groups — group
/// `i` gets `palette[i % palette.len()]`, everything else stays gray.
pub fn dot_with_groups(
    g: &CsrGraph,
    name: &str,
    groups: &[Vec<VertexId>],
    palette: &[&str],
) -> String {
    let mut color: Vec<Option<&str>> = vec![None; g.n()];
    for (i, group) in groups.iter().enumerate() {
        let c = palette[i % palette.len().max(1)];
        for &v in group {
            color[v as usize] = Some(c);
        }
    }
    let mut buf = Vec::new();
    write_dot(g, &mut buf, name, |v| DotVertexStyle {
        fill: Some(color[v as usize].unwrap_or("gray90").to_string()),
        label: None,
    })
    .expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("DOT output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let out = dot_with_groups(&g, "t", &[vec![0, 1]], &["steelblue"]);
        assert!(out.starts_with("graph t {"));
        assert!(out.contains("v0 [fillcolor=\"steelblue\"]"));
        assert!(out.contains("v2 [fillcolor=\"gray90\"]"));
        assert!(out.contains("v0 -- v1;"));
        assert!(out.contains("v1 -- v2;"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped() {
        let g = CsrGraph::from_edges(1, []);
        let mut buf = Vec::new();
        write_dot(&g, &mut buf, "q", |_| DotVertexStyle {
            fill: None,
            label: Some("say \"hi\"".into()),
        })
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("label=\"say \\\"hi\\\"\""));
    }

    #[test]
    fn empty_palette_groups_are_safe() {
        let g = CsrGraph::from_edges(2, [(0, 1)]);
        let out = dot_with_groups(&g, "e", &[], &["red"]);
        assert!(out.contains("v0 [fillcolor=\"gray90\"]"));
    }
}
