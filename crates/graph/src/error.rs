//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced while building or parsing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An I/O error while reading or writing an edge list.
    Io(std::io::Error),
    /// A line of an edge list could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A vertex identifier exceeded the supported range (`u32`).
    VertexOutOfRange(u64),
    /// An edge stream contained more distinct endpoints than `u32` ranks.
    TooManyVertices(usize),
    /// Raw CSR parts (e.g. from an on-disk cache) violated a structural
    /// invariant of a simple undirected graph.
    InvalidCsr(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::VertexOutOfRange(v) => {
                write!(f, "vertex id {v} exceeds the supported u32 range")
            }
            GraphError::TooManyVertices(n) => {
                write!(
                    f,
                    "{n} distinct vertices exceed the supported u32 rank space"
                )
            }
            GraphError::InvalidCsr(message) => {
                write!(f, "invalid CSR structure: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GraphError::Parse {
            line: 3,
            message: "expected two tokens".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::VertexOutOfRange(1 << 40);
        assert!(e.to_string().contains("u32"));
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_error_exposes_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
        let e = GraphError::VertexOutOfRange(0);
        assert!(e.source().is_none());
    }
}
