//! Edge-list I/O in the whitespace-separated SNAP format.
//!
//! Lines starting with `#` or `%` are comments; each remaining line holds
//! two integer vertex ids. Buffered readers/writers are used throughout
//! (edge lists in the paper's datasets reach millions of lines).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{CsrGraph, GraphBuilder, GraphError, VertexId};

/// Reads a graph from any buffered reader in edge-list format.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut b = GraphBuilder::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b_tok) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("expected two vertex ids, got '{t}'"),
                })
            }
        };
        let u = parse_vertex(a, lineno)?;
        let v = parse_vertex(b_tok, lineno)?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn parse_vertex(tok: &str, line: usize) -> Result<VertexId, GraphError> {
    let raw: u64 = tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid vertex id '{tok}'"),
    })?;
    VertexId::try_from(raw).map_err(|_| GraphError::VertexOutOfRange(raw))
}

/// Reads a graph from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Writes a graph as an edge list, one `u v` pair per line with `u < v`.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# n={} m={}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_edge_list_with_comments() {
        let input = "# a comment\n% another\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn tolerates_tabs_and_extra_whitespace() {
        let input = "0\t1\n  1   2  \n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list(Cursor::new("0 1\nnope\n")).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_vertex_ids() {
        let input = format!("0 {}\n", u64::from(u32::MAX) + 1);
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange(_)));
    }

    #[test]
    fn round_trips_through_write_and_read() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lhcds_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = CsrGraph::from_edges(4, [(0, 1), (2, 3)]);
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
