//! # lhcds-graph
//!
//! Compact undirected-graph substrate used by every other crate in the
//! `lhcds` workspace.
//!
//! The central type is [`CsrGraph`], an immutable compressed-sparse-row
//! adjacency structure with sorted neighbor lists (so adjacency tests are
//! `O(log deg)` and neighborhood intersections are linear merges). Graphs
//! are constructed through [`GraphBuilder`], which normalizes input
//! (drops self-loops, deduplicates parallel edges) so the rest of the
//! workspace can assume a simple graph — the setting of the LhCDS paper.
//!
//! Additional modules provide the graph-level machinery the IPPV pipeline
//! and the experiment harness need:
//!
//! * [`traversal`] — BFS, connected components, connectivity checks
//!   restricted to vertex subsets (LhCDSes must be connected).
//! * [`core_decomp`] — classic edge k-core decomposition and degeneracy
//!   orders (the backbone of kClist-style clique enumeration).
//! * [`properties`] — edge density, diameter, clustering coefficients
//!   (quality measures of §6.4/§6.5 of the paper).
//! * [`io`] — whitespace-separated edge-list reading/writing (SNAP
//!   format).
//! * [`dot`] — Graphviz export for the case-study visualizations.

pub mod builder;
pub mod core_decomp;
pub mod csr;
pub mod dot;
pub mod error;
pub mod io;
pub mod properties;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use subgraph::InducedSubgraph;

/// Vertex identifier. `u32` keeps hot structures (clique stores, flow
/// arcs) small; graphs with more than 4 billion vertices are out of scope.
pub type VertexId = u32;
