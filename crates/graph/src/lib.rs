//! # lhcds-graph
//!
//! Compact undirected-graph substrate used by every other crate in the
//! `lhcds` workspace.
//!
//! The central type is [`CsrGraph`], an immutable compressed-sparse-row
//! adjacency structure with sorted neighbor lists (so adjacency tests are
//! `O(log deg)` and neighborhood intersections are linear merges). Graphs
//! are constructed through [`GraphBuilder`], which normalizes input
//! (drops self-loops, deduplicates parallel edges) so the rest of the
//! workspace can assume a simple graph — the setting of the LhCDS paper.
//!
//! Additional modules provide the graph-level machinery the IPPV pipeline
//! and the experiment harness need:
//!
//! * [`traversal`] — BFS, connected components, connectivity checks
//!   restricted to vertex subsets (LhCDSes must be connected).
//! * [`core_decomp`] — classic edge k-core decomposition and degeneracy
//!   orders (the backbone of kClist-style clique enumeration).
//! * [`properties`] — edge density, diameter, clustering coefficients
//!   (quality measures of §6.4/§6.5 of the paper).
//! * [`io`] — whitespace-separated edge-list reading/writing (SNAP
//!   format).
//! * [`stream`] — bulk construction from raw edge streams with
//!   arbitrary (non-contiguous, 64-bit) external ids remapped to
//!   compact ranks; the substrate of `lhcds-data`'s real-dataset
//!   ingest path.
//! * [`dot`] — Graphviz export for the case-study visualizations.
//!
//! # Example
//!
//! ```
//! use lhcds_graph::{CsrGraph, GraphBuilder};
//!
//! // A triangle with a pendant vertex, built two ways.
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).add_edge(2, 3);
//! let g = b.build();
//! assert_eq!(g, CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]));
//!
//! assert_eq!(g.n(), 4);
//! assert_eq!(g.m(), 4);
//! assert_eq!(g.neighbors(2), &[0, 1, 3]);
//! assert!(g.has_edge(0, 2) && !g.has_edge(0, 3));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod core_decomp;
pub mod csr;
pub mod dot;
pub mod error;
pub mod io;
pub mod properties;
pub mod stream;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use stream::RemappedGraph;
pub use subgraph::InducedSubgraph;

/// Vertex identifier. `u32` keeps hot structures (clique stores, flow
/// arcs) small; graphs with more than 4 billion vertices are out of scope.
pub type VertexId = u32;
