//! Structural quality measures used in the paper's evaluation
//! (edge density, diameter, clustering coefficient — §6.4 and §6.5).

use crate::traversal::bfs_distances;
use crate::{CsrGraph, VertexId};

/// Edge density `2m / (n (n - 1))` — 1.0 for cliques, 0 for edgeless
/// graphs; defined as 0 for graphs with fewer than two vertices.
pub fn edge_density(g: &CsrGraph) -> f64 {
    let n = g.n();
    if n < 2 {
        return 0.0;
    }
    (2 * g.m()) as f64 / (n * (n - 1)) as f64
}

/// Exact diameter via all-pairs BFS (`O(n·m)`), intended for the small
/// subgraphs the quality experiments inspect. Returns `None` if the
/// graph is disconnected or empty.
pub fn diameter(g: &CsrGraph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0u32;
    for v in g.vertices() {
        let d = bfs_distances(g, v);
        let mut ecc = 0u32;
        for &x in &d {
            if x == u32::MAX {
                return None;
            }
            ecc = ecc.max(x);
        }
        best = best.max(ecc);
    }
    Some(best)
}

/// Local clustering coefficient of `v`:
/// `C_v = 2·|{edges between neighbors}| / (deg(v)·(deg(v)−1))`;
/// 0 by convention when `deg(v) < 2`.
pub fn clustering_coefficient(g: &CsrGraph, v: VertexId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let ns = g.neighbors(v);
    let mut links = 0usize;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Average of local clustering coefficients over all vertices
/// (Watts–Strogatz definition). 0 for the empty graph.
pub fn average_clustering(g: &CsrGraph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    let sum: f64 = g.vertices().map(|v| clustering_coefficient(g, v)).sum();
    sum / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> CsrGraph {
        CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn density_of_clique_is_one() {
        assert!((edge_density(&k4()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_small_graphs_is_zero() {
        assert_eq!(edge_density(&CsrGraph::from_edges(1, [])), 0.0);
        assert_eq!(edge_density(&CsrGraph::from_edges(0, [])), 0.0);
    }

    #[test]
    fn diameter_of_path_and_clique() {
        let path = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(diameter(&path), Some(3));
        assert_eq!(diameter(&k4()), Some(1));
        let single = CsrGraph::from_edges(1, []);
        assert_eq!(diameter(&single), Some(0));
    }

    #[test]
    fn diameter_of_disconnected_is_none() {
        let g = CsrGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn clustering_of_clique_is_one() {
        let g = k4();
        for v in g.vertices() {
            assert!((clustering_coefficient(&g, v) - 1.0).abs() < 1e-12);
        }
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let star = CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(clustering_coefficient(&star, 0), 0.0);
        assert_eq!(clustering_coefficient(&star, 1), 0.0);
        assert_eq!(average_clustering(&star), 0.0);
    }

    #[test]
    fn clustering_of_triangle_with_pendant() {
        // vertex 2 has neighbors {0, 1, 3}; only (0,1) is an edge: C = 1/3.
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert!((clustering_coefficient(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
    }
}
