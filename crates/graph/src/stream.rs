//! Bulk construction from streams of raw (possibly non-contiguous) edges.
//!
//! Real-world edge lists (SNAP, Network Repository) identify vertices by
//! arbitrary 64-bit integers — sparse id spaces, gaps, ids larger than
//! `u32`. [`CsrGraph::from_edge_stream`] consumes such a stream once,
//! remaps the distinct ids that actually occur to compact `u32` ranks
//! (preserving numeric order), and builds the normalized CSR directly —
//! no intermediate [`crate::GraphBuilder`], one sort over the edge set.
//!
//! ```
//! use lhcds_graph::CsrGraph;
//!
//! // Ids far apart (one beyond u32) collapse to ranks 0, 1, 2.
//! let edges = [(7u64, 1_000_000_007u64), (1 << 40, 7)].map(Ok);
//! let remapped = CsrGraph::from_edge_stream(edges).unwrap();
//! assert_eq!(remapped.graph.n(), 3);
//! assert_eq!(remapped.original_ids, vec![7, 1_000_000_007, 1 << 40]);
//! assert_eq!(remapped.rank_of(1 << 40), Some(2));
//! ```

use crate::{CsrGraph, GraphError, VertexId};

/// A graph built from raw external ids, together with the id remapping.
///
/// `original_ids[rank]` is the external id of internal vertex `rank`;
/// the table is strictly ascending, so ranks preserve the numeric order
/// of the external ids and [`RemappedGraph::rank_of`] is a binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemappedGraph {
    /// The compact graph over ranks `0..n`.
    pub graph: CsrGraph,
    /// Rank → external id (strictly ascending).
    pub original_ids: Vec<u64>,
}

impl RemappedGraph {
    /// Internal rank of an external id, if it occurred in the stream.
    pub fn rank_of(&self, original: u64) -> Option<VertexId> {
        self.original_ids
            .binary_search(&original)
            .ok()
            .map(|r| r as VertexId)
    }

    /// External id of internal vertex `rank`.
    pub fn original_of(&self, rank: VertexId) -> u64 {
        self.original_ids[rank as usize]
    }

    /// Whether the remapping is the identity (`original_ids == 0..n`) —
    /// true for edge lists that already use every id in `0..n`.
    pub fn is_identity(&self) -> bool {
        self.original_ids
            .iter()
            .enumerate()
            .all(|(rank, &id)| id == rank as u64)
    }
}

impl CsrGraph {
    /// Builds a graph from a fallible stream of raw `(u64, u64)` edges.
    ///
    /// This is the bulk-ingest counterpart of [`CsrGraph::from_edges`]:
    /// input ids may be arbitrary 64-bit integers with gaps. The stream
    /// is consumed once; self-loops are dropped, duplicate and reversed
    /// edges are deduplicated, and the distinct endpoint ids are
    /// remapped to compact ranks `0..n` in ascending numeric order.
    ///
    /// Errors from the stream itself (e.g. parse failures from a file
    /// reader) are propagated unchanged; streams with more than `u32`
    /// distinct endpoints are rejected with
    /// [`GraphError::TooManyVertices`].
    pub fn from_edge_stream<I>(edges: I) -> Result<RemappedGraph, GraphError>
    where
        I: IntoIterator<Item = Result<(u64, u64), GraphError>>,
    {
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        for edge in edges {
            let (a, b) = edge?;
            if a != b {
                pairs.push(if a < b { (a, b) } else { (b, a) });
            }
        }

        // Distinct endpoint ids, ascending: the rank table.
        let mut ids: Vec<u64> = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in &pairs {
            ids.push(a);
            ids.push(b);
        }
        ids.sort_unstable();
        ids.dedup();
        if ids.len() > u32::MAX as usize {
            return Err(GraphError::TooManyVertices(ids.len()));
        }
        let n = ids.len();

        let rank = |id: u64| ids.binary_search(&id).expect("endpoint in table") as VertexId;
        let mut edges: Vec<(VertexId, VertexId)> =
            pairs.iter().map(|&(a, b)| (rank(a), rank(b))).collect();
        edges.sort_unstable();
        edges.dedup();

        // Direct CSR assembly (same normalization as GraphBuilder::build,
        // without re-buffering through a builder).
        let mut degrees = vec![0usize; n];
        for &(u, v) in &edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        Ok(RemappedGraph {
            graph: CsrGraph::from_parts(offsets, neighbors),
            original_ids: ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_edges(pairs: &[(u64, u64)]) -> Vec<Result<(u64, u64), GraphError>> {
        pairs.iter().copied().map(Ok).collect()
    }

    #[test]
    fn compact_ids_build_identically_to_from_edges() {
        let pairs = [(0u64, 1), (1, 2), (2, 0), (2, 3)];
        let r = CsrGraph::from_edge_stream(ok_edges(&pairs)).unwrap();
        let direct = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(r.graph, direct);
        assert!(r.is_identity());
    }

    #[test]
    fn gaps_and_64bit_ids_are_remapped_in_order() {
        let big = u64::from(u32::MAX) + 10;
        let r = CsrGraph::from_edge_stream(ok_edges(&[(100, 5), (big, 100)])).unwrap();
        assert_eq!(r.original_ids, vec![5, 100, big]);
        assert_eq!(r.graph.n(), 3);
        assert_eq!(r.graph.m(), 2);
        assert!(r.graph.has_edge(0, 1)); // 5 — 100
        assert!(r.graph.has_edge(1, 2)); // 100 — big
        assert!(!r.graph.has_edge(0, 2));
        assert_eq!(r.rank_of(big), Some(2));
        assert_eq!(r.rank_of(6), None);
        assert_eq!(r.original_of(1), 100);
        assert!(!r.is_identity());
    }

    #[test]
    fn self_loops_and_duplicates_are_normalized() {
        let r = CsrGraph::from_edge_stream(ok_edges(&[(3, 3), (1, 2), (2, 1), (1, 2), (9, 9)]))
            .unwrap();
        // pure self-loop endpoints never materialize: ids 3 and 9 carry no edge
        assert_eq!(r.original_ids, vec![1, 2]);
        assert_eq!(r.graph.m(), 1);
    }

    #[test]
    fn stream_errors_propagate() {
        let edges = vec![
            Ok((0u64, 1u64)),
            Err(GraphError::Parse {
                line: 7,
                message: "bad".into(),
            }),
        ];
        let err = CsrGraph::from_edge_stream(edges).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 7, .. }));
    }

    #[test]
    fn empty_stream_builds_empty_graph() {
        let r = CsrGraph::from_edge_stream(std::iter::empty()).unwrap();
        assert_eq!(r.graph.n(), 0);
        assert!(r.original_ids.is_empty());
        assert!(r.is_identity());
    }
}
