//! Induced subgraphs with vertex-id translation.

use crate::{CsrGraph, GraphBuilder, VertexId};

/// A subgraph induced by a vertex subset, stored as its own compact
/// [`CsrGraph`] together with the mapping back to the parent graph.
///
/// The IPPV pipeline repeatedly restricts attention to candidate regions
/// (`G' ← G[S]` in Algorithm 6); keeping subgraphs compact keeps clique
/// re-enumeration and flow networks small.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph with vertices relabelled to `0..k`.
    pub graph: CsrGraph,
    /// `to_parent[local] = parent vertex id`, ascending.
    pub to_parent: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `parent` induced by `vertices`.
    ///
    /// `vertices` may be unsorted and may contain duplicates; both are
    /// normalized. Vertices outside `parent` are ignored.
    pub fn new(parent: &CsrGraph, vertices: &[VertexId]) -> Self {
        let mut verts: Vec<VertexId> = vertices
            .iter()
            .copied()
            .filter(|&v| (v as usize) < parent.n())
            .collect();
        verts.sort_unstable();
        verts.dedup();

        // parent id -> local id, only defined for members.
        let mut local = vec![VertexId::MAX; parent.n()];
        for (i, &v) in verts.iter().enumerate() {
            local[v as usize] = i as VertexId;
        }

        let mut b = GraphBuilder::with_capacity(verts.len(), 0);
        if let Some(&last) = verts.last() {
            let _ = last;
            b.ensure_vertex((verts.len() - 1) as VertexId);
        }
        for (i, &v) in verts.iter().enumerate() {
            for &w in parent.neighbors(v) {
                let lw = local[w as usize];
                if lw != VertexId::MAX && (i as VertexId) < lw {
                    b.add_edge(i as VertexId, lw);
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            to_parent: verts,
        }
    }

    /// Translates a local vertex id to the parent graph.
    #[inline]
    pub fn parent_of(&self, local: VertexId) -> VertexId {
        self.to_parent[local as usize]
    }

    /// Translates a set of local vertex ids to parent ids.
    pub fn parents_of(&self, locals: &[VertexId]) -> Vec<VertexId> {
        locals.iter().map(|&v| self.parent_of(v)).collect()
    }

    /// Local id of a parent vertex, if it is part of the subgraph.
    /// `O(log k)` via binary search over the sorted mapping.
    pub fn local_of(&self, parent: VertexId) -> Option<VertexId> {
        self.to_parent
            .binary_search(&parent)
            .ok()
            .map(|i| i as VertexId)
    }

    /// Number of vertices in the subgraph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_bridge() -> CsrGraph {
        // 0-1-2 triangle, 3-4-5 triangle, bridge 2-3.
        CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn induces_edges_only_inside_subset() {
        let g = two_triangles_bridge();
        let sg = InducedSubgraph::new(&g, &[0, 1, 2, 3]);
        assert_eq!(sg.n(), 4);
        // triangle 0-1-2 plus bridge 2-3 survive; edges into {4,5} do not.
        assert_eq!(sg.graph.m(), 4);
        assert!(sg.graph.has_edge(2, 3));
        assert_eq!(sg.graph.degree(3), 1);
    }

    #[test]
    fn mapping_round_trips() {
        let g = two_triangles_bridge();
        let sg = InducedSubgraph::new(&g, &[5, 3, 1]);
        assert_eq!(sg.to_parent, vec![1, 3, 5]);
        for local in 0..sg.n() as VertexId {
            let p = sg.parent_of(local);
            assert_eq!(sg.local_of(p), Some(local));
        }
        assert_eq!(sg.local_of(0), None);
        assert_eq!(sg.parents_of(&[0, 2]), vec![1, 5]);
    }

    #[test]
    fn duplicates_and_out_of_range_ignored() {
        let g = two_triangles_bridge();
        let sg = InducedSubgraph::new(&g, &[2, 2, 3, 99]);
        assert_eq!(sg.to_parent, vec![2, 3]);
        assert_eq!(sg.graph.m(), 1);
    }

    #[test]
    fn empty_subset() {
        let g = two_triangles_bridge();
        let sg = InducedSubgraph::new(&g, &[]);
        assert_eq!(sg.n(), 0);
        assert_eq!(sg.graph.m(), 0);
    }

    #[test]
    fn full_subset_reproduces_graph() {
        let g = two_triangles_bridge();
        let all: Vec<VertexId> = g.vertices().collect();
        let sg = InducedSubgraph::new(&g, &all);
        assert_eq!(sg.graph, g);
    }
}
