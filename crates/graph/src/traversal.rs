//! Breadth-first traversal, connected components and subset connectivity.

use std::collections::VecDeque;

use crate::{CsrGraph, VertexId};

/// Connected-component labelling of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// `label[v]` = component id in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Groups vertices by component, preserving ascending order inside
    /// each group.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.label.iter().enumerate() {
            groups[c as usize].push(v as VertexId);
        }
        groups
    }
}

/// Labels the connected components of `g` with a BFS sweep.
pub fn connected_components(g: &CsrGraph) -> Components {
    let mut label = vec![u32::MAX; g.n()];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in g.vertices() {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components {
        label,
        count: count as usize,
    }
}

/// Whether the whole graph is connected (the empty graph counts as
/// connected, a convention convenient for vacuous candidate sets).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.n() == 0 || connected_components(g).count == 1
}

/// Connected components of the subgraph induced by `set`, returned as
/// vertex groups in the *parent* graph's ids.
///
/// Runs in `O(Σ_{v∈set} deg(v))` using a membership bitmap — no subgraph
/// materialization, which matters inside the verification hot loop.
pub fn components_within(g: &CsrGraph, set: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut member = vec![false; g.n()];
    for &v in set {
        member[v as usize] = true;
    }
    let mut seen = vec![false; g.n()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    for &s in set {
        if seen[s as usize] || !member[s as usize] {
            continue;
        }
        let mut comp = Vec::new();
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for &w in g.neighbors(v) {
                if member[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Whether `set` induces a connected subgraph of `g`.
pub fn is_connected_within(g: &CsrGraph, set: &[VertexId]) -> bool {
    if set.is_empty() {
        return true;
    }
    components_within(g, set).len() == 1
}

/// Single-source BFS distances (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disjoint_path_and_triangle() -> CsrGraph {
        // path 0-1-2, triangle 3-4-5, isolated 6
        CsrGraph::from_edges(7, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn component_count_and_groups() {
        let g = disjoint_path_and_triangle();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        let groups = c.groups();
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3, 4, 5]);
        assert_eq!(groups[2], vec![6]);
    }

    #[test]
    fn connectivity_predicates() {
        let g = disjoint_path_and_triangle();
        assert!(!is_connected(&g));
        assert!(is_connected(&CsrGraph::from_edges(3, [(0, 1), (1, 2)])));
        assert!(is_connected(&CsrGraph::from_edges(0, [])));
        assert!(is_connected(&CsrGraph::from_edges(1, [])));
    }

    #[test]
    fn subset_components_respect_membership() {
        let g = disjoint_path_and_triangle();
        // {0, 2} in the path are not adjacent once 1 is excluded.
        let comps = components_within(&g, &[0, 2]);
        assert_eq!(comps, vec![vec![0], vec![2]]);
        assert!(!is_connected_within(&g, &[0, 2]));
        assert!(is_connected_within(&g, &[0, 1, 2]));
        assert!(is_connected_within(&g, &[3, 4]));
        assert!(is_connected_within(&g, &[]));
        assert!(is_connected_within(&g, &[6]));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = disjoint_path_and_triangle();
        let d = bfs_distances(&g, 0);
        assert_eq!(&d[0..3], &[0, 1, 2]);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[6], u32::MAX);
    }
}
