//! Property-based tests of the graph substrate.

use lhcds_graph::core_decomp::{degeneracy_order, k_core_vertices};
use lhcds_graph::properties::{clustering_coefficient, edge_density};
use lhcds_graph::traversal::{bfs_distances, components_within, connected_components};
use lhcds_graph::{CsrGraph, GraphBuilder, InducedSubgraph, VertexId};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        prop::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as VertexId);
            let mut idx = 0;
            for u in 0..n as VertexId {
                for v in u + 1..n as VertexId {
                    if bits[idx] {
                        b.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

proptest! {
    /// CSR invariants: handshake lemma, sorted unique neighbors,
    /// symmetric adjacency.
    #[test]
    fn csr_invariants(g in arb_graph(24)) {
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        for v in g.vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &w in ns {
                prop_assert!(g.has_edge(w, v));
                prop_assert_ne!(w, v);
            }
        }
        prop_assert_eq!(g.edges().count(), g.m());
    }

    /// Components partition vertices, and adjacency never crosses
    /// component boundaries.
    #[test]
    fn components_partition(g in arb_graph(24)) {
        let c = connected_components(&g);
        prop_assert!(c.label.iter().all(|&l| (l as usize) < c.count));
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        let total: usize = c.groups().iter().map(|grp| grp.len()).sum();
        prop_assert_eq!(total, g.n());
    }

    /// `components_within` on the full vertex set matches the global
    /// component structure.
    #[test]
    fn subset_components_match_global(g in arb_graph(20)) {
        let all: Vec<VertexId> = g.vertices().collect();
        let within = components_within(&g, &all);
        let global = connected_components(&g).groups();
        prop_assert_eq!(within, global);
    }

    /// Core numbers: every vertex of the k-core has ≥ k neighbors
    /// inside the k-core, and core numbers are ≤ degree.
    #[test]
    fn core_number_soundness(g in arb_graph(20)) {
        let d = degeneracy_order(&g);
        for v in g.vertices() {
            prop_assert!(d.core[v as usize] as usize <= g.degree(v));
        }
        let kmax = d.degeneracy;
        for k in [1u32, kmax.max(1)] {
            let core = k_core_vertices(&g, k);
            let mut inside = vec![false; g.n()];
            for &v in &core {
                inside[v as usize] = true;
            }
            for &v in &core {
                let deg_in = g.neighbors(v).iter().filter(|&&w| inside[w as usize]).count();
                prop_assert!(deg_in >= k as usize, "core {k} vertex {v} has {deg_in}");
            }
        }
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distance_consistency(g in arb_graph(20)) {
        let d = bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    /// Induced subgraphs preserve adjacency exactly.
    #[test]
    fn induced_subgraph_adjacency(g in arb_graph(18), pick in prop::collection::vec(any::<bool>(), 18)) {
        let verts: Vec<VertexId> = g
            .vertices()
            .filter(|&v| pick.get(v as usize).copied().unwrap_or(false))
            .collect();
        let sub = InducedSubgraph::new(&g, &verts);
        for a in 0..sub.n() as VertexId {
            for b in 0..sub.n() as VertexId {
                if a != b {
                    prop_assert_eq!(
                        sub.graph.has_edge(a, b),
                        g.has_edge(sub.parent_of(a), sub.parent_of(b))
                    );
                }
            }
        }
    }

    /// Quality measures stay in range.
    #[test]
    fn quality_measures_in_range(g in arb_graph(16)) {
        let d = edge_density(&g);
        prop_assert!((0.0..=1.0).contains(&d));
        for v in g.vertices() {
            let c = clustering_coefficient(&g, v);
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    /// Edge-list round trip through the text format is lossless.
    #[test]
    fn io_round_trip(g in arb_graph(16)) {
        let mut buf = Vec::new();
        lhcds_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = lhcds_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        // isolated trailing vertices are not representable in the format
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }
}
